//! Quickstart: track one person through the office and ask where they are.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --metrics-json metrics.json
//! ```
//!
//! Builds the paper's 30-room office, walks one tagged person past two
//! RFID readers, and evaluates a probabilistic range query and a kNN query
//! against the particle-filter index. With `--metrics-json <path>` the
//! run enables the observability layer and writes the pipeline metrics
//! snapshot to `<path>`.

use ripq::core::{IndoorQuerySystem, SystemConfig};
use ripq::floorplan::{office_building, OfficeParams};
use ripq::geom::Rect;
use ripq::rfid::ObjectId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_json = args
        .iter()
        .position(|a| a == "--metrics-json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // 1. The world: the paper's office (30 rooms, 4 hallways) with 19
    //    readers at 2 m activation range (Table 2 defaults).
    let plan = office_building(&OfficeParams::default()).expect("valid plan");
    let mut config = SystemConfig {
        observability: metrics_json.is_some(),
        ..SystemConfig::default()
    };
    // Table 2's 64 particles are tuned for accuracy *averaged* over many
    // objects and queries; this demo tracks a single person across an
    // 8-second unobserved stretch between two readers, where a 64-particle
    // cloud can lose the correct hypothesis to sampling noise. A few
    // hundred particles make the single-run outcome robust for any seed.
    config.preprocess.num_particles = 512;
    let mut system = IndoorQuerySystem::new(plan, config, 42);

    // 2. One tagged person (object o0) walks down hallway H0 at ~1 m/s,
    //    passing reader d0 and then reader d1. We feed the per-second
    //    detections the readers would produce.
    let alice = ObjectId::new(0);
    let (d0, d1) = (system.readers()[0], system.readers()[1]);
    println!(
        "readers: {} at {}, {} at {} (range {} m)",
        d0.id(),
        d0.position(),
        d1.id(),
        d1.position(),
        d0.activation_range()
    );
    let gap = d0.position().distance(d1.position());
    let total = gap.ceil() as u64 + 6;
    for second in 0..=total {
        // True x position: starts 2 m before d0, walks right at 1 m/s.
        let x = d0.position().x - 2.0 + second as f64;
        let p = ripq::geom::Point2::new(x, d0.position().y);
        let detections: Vec<_> = [d0, d1]
            .iter()
            .filter(|r| r.covers(p))
            .map(|r| (alice, r.id()))
            .collect();
        system.ingest_detections(second, &detections);
    }

    // 3. Register queries: "who is in the 12 m stretch just past d1?" and
    //    "who are the 2 nearest people to d1?".
    let window = Rect::new(d1.position().x, d1.position().y - 3.0, 12.0, 6.0);
    let range_q = system.register_range(window).expect("valid window");
    let knn_q = system.register_knn(d1.position(), 2).expect("valid k");

    // 4. Evaluate now. The particle filter has seen d0 → d1, so it knows
    //    Alice moves left-to-right and projects her past d1.
    let report = system.evaluate(total);
    println!(
        "\n{} candidates preprocessed out of {} known objects",
        report.candidates_processed, report.objects_known
    );

    let range_result = &report.range_results[&range_q];
    println!("\nRange query over {window}:");
    for r in range_result.sorted() {
        println!("  {}: p = {:.3}", r.object, r.probability);
    }

    let knn_result = &report.knn_results[&knn_q];
    println!("\n2NN query at {}:", d1.position());
    for r in knn_result.sorted() {
        println!("  {}: p = {:.3}", r.object, r.probability);
    }

    // 5. Optionally dump the pipeline metrics snapshot (before the sanity
    //    assert below, so diagnostics survive a failing run).
    if let Some(path) = metrics_json {
        let snapshot = report.metrics.as_ref().expect("observability was enabled");
        std::fs::write(&path, snapshot.to_json()).expect("write metrics JSON");
        println!("wrote pipeline metrics to {path}");
    }

    let p_alice = range_result.probability(alice);
    assert!(
        p_alice > 0.3,
        "the filter should place Alice ahead of d1 (got {p_alice})"
    );
    println!("\nAlice is in the window with probability {p_alice:.3} — as expected.");
}
