//! Bring your own building: RIPQ on a hand-built floor plan.
//!
//! ```text
//! cargo run --release --example custom_floorplan
//! ```
//!
//! Builds a small L-shaped clinic with the [`FloorPlanBuilder`], deploys
//! readers, and runs the full pipeline — demonstrating that nothing in the
//! system is specific to the paper's generated office.

use ripq::core::{IndoorQuerySystem, SystemConfig};
use ripq::floorplan::FloorPlanBuilder;
use ripq::geom::{Point2, Rect};
use ripq::rfid::ObjectId;

fn main() {
    // An L-shaped clinic: a horizontal corridor with four exam rooms, and
    // a vertical corridor with a lab and a waiting room.
    let mut b = FloorPlanBuilder::new();
    let corridor_h = b.add_hallway(Rect::new(0.0, 10.0, 30.0, 2.0), "corridor-A");
    let corridor_v = b.add_hallway(Rect::new(28.0, 10.0, 2.0, 20.0), "corridor-B");

    let exam: Vec<_> = (0..4)
        .map(|i| {
            let x = 1.0 + i as f64 * 6.5;
            let room = b.add_room(Rect::new(x, 2.0, 6.0, 8.0), format!("exam-{i}"));
            b.add_door(Point2::new(x + 3.0, 10.0), room, corridor_h);
            room
        })
        .collect();
    let lab = b.add_room(Rect::new(20.0, 14.0, 8.0, 6.0), "lab");
    b.add_door(Point2::new(28.0, 17.0), lab, corridor_v);
    let waiting = b.add_room(Rect::new(20.0, 22.0, 8.0, 7.0), "waiting");
    b.add_door(Point2::new(28.0, 25.0), waiting, corridor_v);

    let plan = b.build().expect("clinic plan is valid");
    println!(
        "clinic: {} rooms, {} hallways, bounds {}",
        plan.rooms().len(),
        plan.hallways().len(),
        plan.bounds()
    );

    // Smaller deployment: 5 readers on the two corridors.
    let config = SystemConfig {
        reader_count: 5,
        ..Default::default()
    };
    let mut system = IndoorQuerySystem::new(plan, config, 99);
    for r in system.readers() {
        println!("  reader {} at {}", r.id(), r.position());
    }

    // A patient walks from the entrance (west end of corridor A) toward
    // the waiting room.
    let patient = ObjectId::new(0);
    let readers: Vec<_> = system.readers().to_vec();
    for second in 0..=40u64 {
        // Walk east along corridor A (y=11), then north up corridor B.
        let walked = second as f64; // 1 m/s
        let p = if walked <= 28.0 {
            Point2::new(1.0 + walked, 11.0)
        } else {
            Point2::new(29.0, 11.0 + (walked - 28.0))
        };
        let det: Vec<_> = readers
            .iter()
            .filter(|r| r.covers(p))
            .map(|r| (patient, r.id()))
            .collect();
        system.ingest_detections(second, &det);
    }

    // Where is the patient? Ask a range query over the waiting room and a
    // 1NN query from the lab door.
    let waiting_fp = *system.plan().room(waiting).footprint();
    let rq = system.register_range(waiting_fp).expect("valid window");
    let kq = system
        .register_knn(system.plan().room(lab).center(), 1)
        .expect("valid k");
    let report = system.evaluate(40);

    println!(
        "\np(patient in waiting room) = {:.3}",
        report.range_results[&rq].probability(patient)
    );
    println!(
        "1NN from the lab: {:?}",
        report.knn_results[&kq]
            .sorted()
            .iter()
            .map(|r| format!("{} p={:.2}", r.object, r.probability))
            .collect::<Vec<_>>()
    );

    // The patient's exam rooms stayed empty.
    let exam_fp = *system.plan().room(exam[0]).footprint();
    let rq2 = system.register_range(exam_fp).expect("valid window");
    let report = system.evaluate(40);
    println!(
        "p(patient in exam-0)       = {:.3}",
        report.range_results[&rq2].probability(patient)
    );
}
