//! Friend finder: "who are the k people nearest to me right now?" — the
//! paper's motivating kNN application (§1), with accuracy scored against
//! ground truth.
//!
//! ```text
//! cargo run --release --example friend_finder
//! ```
//!
//! Runs the simulator, evaluates the particle-filter kNN (Algorithm 4)
//! and the symbolic-model baseline at a sequence of timestamps, and
//! prints both answers next to the true k nearest neighbors by indoor
//! walking distance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::{evaluate_knn, KnnQuery, QueryId};
use ripq::pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::DataCollector;
use ripq::sim::metrics;
use ripq::sim::{ExperimentParams, GroundTruth, ReadingGenerator, SimWorld, TraceGenerator};

fn main() {
    let params = ExperimentParams {
        num_objects: 60,
        duration: 200,
        k: 3,
        ..Default::default()
    };
    let world = SimWorld::build(&params);

    // "Me": standing at the central junction of the building.
    let me = world.plan.hallways()[1].footprint().center();
    let query = KnnQuery::new(QueryId::new(0), me, params.k).expect("k >= 1");
    println!("finding my {} nearest friends from {me}", params.k);

    let mut rng_trace = StdRng::seed_from_u64(11);
    let mut rng_sense = StdRng::seed_from_u64(12);
    let mut rng_pf = StdRng::seed_from_u64(13);
    let traces = TraceGenerator::new(params.room_dwell_mean).generate(
        &mut rng_trace,
        &world.graph,
        world.plan.rooms().len(),
        params.num_objects,
        params.duration,
    );
    let readings = ReadingGenerator::new(&world.graph, &world.readers, params.sensing);
    let ground_truth = GroundTruth::new(&world.graph, &traces);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let preprocessor = ParticlePreprocessor::new(
        &world.graph,
        &world.anchors,
        &world.readers,
        PreprocessorConfig::default(),
    );
    let mut collector = DataCollector::new();
    let mut cache = ParticleCache::new();

    let mut pf_hits = metrics::Mean::default();
    let mut sm_hits = metrics::Mean::default();
    for second in 0..=params.duration {
        let detections = readings.detections_at(&mut rng_sense, &traces, second);
        collector.ingest_second(second, &detections);
        if second % 25 != 0 || second < 50 {
            continue;
        }

        let pf_index =
            preprocessor.process(&mut rng_pf, &collector, &objects, second, Some(&mut cache));
        let sm_index = world.symbolic.build_index(&collector, &objects, second);

        let truth = ground_truth.knn(me, params.k, second);
        let pf = evaluate_knn(&world.graph, &world.anchors, &pf_index, &query);
        let sm = evaluate_knn(&world.graph, &world.anchors, &sm_index, &query);
        let sm_top = metrics::top_k_objects(&sm, params.k);

        let pf_hit = metrics::knn_hit_rate(pf.objects(), &truth, params.k);
        let sm_hit = metrics::knn_hit_rate(sm_top.iter().copied(), &truth, params.k);
        pf_hits.push(pf_hit);
        sm_hits.push(sm_hit);

        let mut truth_sorted: Vec<String> = truth.iter().map(|o| o.to_string()).collect();
        truth_sorted.sort();
        println!("\nt={second}s  true {}NN: {:?}", params.k, truth_sorted);
        println!(
            "  particle filter ({} objects, hit {:.2}): {:?}",
            pf.len(),
            pf_hit,
            pf.top(params.k)
                .iter()
                .map(|r| format!("{} p={:.2}", r.object, r.probability))
                .collect::<Vec<_>>()
        );
        println!(
            "  symbolic model  (hit {:.2}): {:?}",
            sm_hit,
            sm_top.iter().map(|o| o.to_string()).collect::<Vec<_>>()
        );
    }
    println!(
        "\naverage hit rate over {} checks: particle filter {:.2}, symbolic {:.2}",
        pf_hits.count(),
        pf_hits.value(),
        sm_hits.value()
    );
    assert!(
        pf_hits.value() >= sm_hits.value(),
        "the particle filter should not lose to the baseline on average"
    );
}
