//! Mall analytics: PTkNN and closest-pairs queries in a shopping mall —
//! the §1 venue, exercising the Yang-et-al.-compatible PTkNN query type
//! and the §6 closest-pairs extension on a non-office topology.
//!
//! ```text
//! cargo run --release --example mall_marketing
//! ```
//!
//! A marketing kiosk wants (a) the shoppers probably among the 3 nearest
//! to the kiosk (with confidence ≥ 0.4), and (b) pairs of shoppers
//! walking together (candidates for a "bring a friend" coupon).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::{evaluate_closest_pairs, evaluate_ptknn, ClosestPairsQuery, PtknnQuery};
use ripq::floorplan::{shopping_mall, MallParams};
use ripq::pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::DataCollector;
use ripq::sim::{ExperimentParams, ReadingGenerator, SimWorld, TraceGenerator};

fn main() {
    let params = ExperimentParams {
        num_objects: 35,
        duration: 240,
        reader_count: 16,
        ..Default::default()
    };
    let plan = shopping_mall(&MallParams::default()).expect("valid mall");
    let world = SimWorld::build_with_plan(plan, &params);
    println!(
        "mall: {} stores, {} corridors, {} readers",
        world.plan.rooms().len(),
        world.plan.hallways().len(),
        world.readers.len()
    );

    // Shoppers wander; readings stream in.
    let mut rng_trace = StdRng::seed_from_u64(81);
    let mut rng_sense = StdRng::seed_from_u64(82);
    let mut rng_pf = StdRng::seed_from_u64(83);
    let traces = TraceGenerator::new(params.room_dwell_mean).generate(
        &mut rng_trace,
        &world.graph,
        world.plan.rooms().len(),
        params.num_objects,
        params.duration,
    );
    let readings = ReadingGenerator::new(&world.graph, &world.readers, params.sensing);
    let preprocessor = ParticlePreprocessor::new(
        &world.graph,
        &world.anchors,
        &world.readers,
        PreprocessorConfig::default(),
    );
    let mut collector = DataCollector::new();
    let mut cache = ParticleCache::new();

    // The kiosk sits mid-promenade.
    let kiosk = world.plan.hallways()[0].footprint().center();
    let ptknn = PtknnQuery::new(kiosk, 3, 0.4).expect("valid query");
    let pairs_query = ClosestPairsQuery {
        m: 2,
        contact_radius: 3.0,
    };

    for second in 0..=params.duration {
        let det = readings.detections_at(&mut rng_sense, &traces, second);
        collector.ingest_second(second, &det);
        if second % 60 != 0 || second == 0 {
            continue;
        }
        let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
        let index =
            preprocessor.process(&mut rng_pf, &collector, &objects, second, Some(&mut cache));

        let nearby = evaluate_ptknn(
            &mut rng_pf,
            &world.graph,
            &world.anchors,
            &index,
            &ptknn,
            300,
        );
        println!("\nt={second:>3}s  probably among the kiosk's 3 nearest (p >= 0.4):");
        for r in nearby.sorted() {
            println!(
                "    {} with membership probability {:.2}",
                r.object, r.probability
            );
        }

        let together = evaluate_closest_pairs(&world.graph, &world.anchors, &index, &pairs_query);
        for p in &together {
            if p.within_radius >= 0.5 {
                println!(
                    "    coupon pair: {} & {} (p(within 3 m) = {:.2})",
                    p.a, p.b, p.within_radius
                );
            }
        }
    }
    println!("\nmall analytics pass complete");
}
