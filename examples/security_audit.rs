//! Security audit: historical queries over a full day of readings.
//!
//! ```text
//! cargo run --release --example security_audit
//! ```
//!
//! The building logs every reading into a [`HistoryCollector`]. After the
//! fact, an auditor asks "who was near the server room at minute 2?" and
//! "which two people were closest together at minute 3?" — time-travel
//! variants of the paper's queries, built on §4.1's noted
//! longer-reading-history extension.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::{evaluate_closest_pairs, evaluate_range, ClosestPairsQuery};
use ripq::pf::{ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::{HistoryCollector, ReadingStore};
use ripq::sim::{ExperimentParams, ReadingGenerator, SimWorld, TraceGenerator};

fn main() {
    let params = ExperimentParams {
        num_objects: 25,
        duration: 300,
        ..Default::default()
    };
    let world = SimWorld::build(&params);

    // Record the whole day.
    let mut rng_trace = StdRng::seed_from_u64(61);
    let mut rng_sense = StdRng::seed_from_u64(62);
    let traces = TraceGenerator::new(params.room_dwell_mean).generate(
        &mut rng_trace,
        &world.graph,
        world.plan.rooms().len(),
        params.num_objects,
        params.duration,
    );
    let readings = ReadingGenerator::new(&world.graph, &world.readers, params.sensing);
    let mut log = HistoryCollector::new();
    for second in 0..=params.duration {
        let det = readings.detections_at(&mut rng_sense, &traces, second);
        log.ingest_second(second, &det);
    }
    println!(
        "recorded {} aggregated entries for {} tags over {} s",
        log.total_entries(),
        traces.len(),
        params.duration
    );

    let preprocessor = ParticlePreprocessor::new(
        &world.graph,
        &world.anchors,
        &world.readers,
        PreprocessorConfig::default(),
    );
    // Treat room 0 as the "server room".
    let server_room = &world.plan.rooms()[0];
    println!(
        "server room: {} at {}",
        server_room.name(),
        server_room.footprint()
    );

    for &t in &[120u64, 180, 240] {
        let view = log.view_at(t);
        let objects = view.object_ids();
        let mut rng = StdRng::seed_from_u64(63 ^ t);
        let index = preprocessor.process(&mut rng, &view, &objects, t, None);

        // Who was (probably) in or near the server room at time t?
        let window = server_room.footprint().inflate(3.0);
        let rs = evaluate_range(&world.plan, &world.anchors, &index, &window);
        let suspects: Vec<String> = rs
            .sorted()
            .into_iter()
            .filter(|r| r.probability >= 0.2)
            .map(|r| format!("{} (p={:.2})", r.object, r.probability))
            .collect();
        println!("\nt={t:>3}s  near the server room: {suspects:?}");

        // Which two people were closest together?
        let pairs = evaluate_closest_pairs(
            &world.graph,
            &world.anchors,
            &index,
            &ClosestPairsQuery {
                m: 1,
                contact_radius: 3.0,
            },
        );
        if let Some(p) = pairs.first() {
            println!(
                "        closest pair: {} & {} (E[dist] = {:.1} m, p(within 3 m) = {:.2})",
                p.a, p.b, p.expected_distance, p.within_radius
            );
        }
    }
    println!("\naudit complete — all answers derived from the recorded log only");
}
