//! Continuous monitoring of a meeting room — the paper's motivating
//! office scenario, driven end-to-end through the simulator.
//!
//! ```text
//! cargo run --release --example office_tracking
//! ```
//!
//! Forty tagged employees walk the building (destination-driven traces);
//! noisy RFID readings stream into the system; a *continuous range query*
//! watches one meeting room and reports arrivals/departures as deltas —
//! the §6 "continuous range" extension in action.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq::core::continuous::ContinuousRangeQuery;
use ripq::core::{QueryId, RangeQuery};
use ripq::pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig};
use ripq::rfid::DataCollector;
use ripq::sim::{ExperimentParams, ReadingGenerator, SimWorld, TraceGenerator};

fn main() {
    let params = ExperimentParams {
        num_objects: 40,
        duration: 240,
        ..Default::default()
    };
    let world = SimWorld::build(&params);

    // Watch room R12 (a meeting room in the middle band of the building).
    let room = &world.plan.rooms()[12];
    println!(
        "monitoring room {} ({}) with footprint {}",
        room.id(),
        room.name(),
        room.footprint()
    );
    let query = RangeQuery::new(QueryId::new(0), *room.footprint()).expect("non-empty room");
    let mut monitor = ContinuousRangeQuery::new(query);

    // Simulation state.
    let mut rng_trace = StdRng::seed_from_u64(7);
    let mut rng_sense = StdRng::seed_from_u64(8);
    let mut rng_pf = StdRng::seed_from_u64(9);
    let traces = TraceGenerator::new(params.room_dwell_mean).generate(
        &mut rng_trace,
        &world.graph,
        world.plan.rooms().len(),
        params.num_objects,
        params.duration,
    );
    let readings = ReadingGenerator::new(&world.graph, &world.readers, params.sensing);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let preprocessor = ParticlePreprocessor::new(
        &world.graph,
        &world.anchors,
        &world.readers,
        PreprocessorConfig::default(),
    );
    let mut collector = DataCollector::new();
    let mut cache = ParticleCache::new();

    // Stream the day; refresh the monitor every 20 simulated seconds.
    let mut events = 0u32;
    for second in 0..=params.duration {
        let detections = readings.detections_at(&mut rng_sense, &traces, second);
        collector.ingest_second(second, &detections);
        if second % 20 != 0 || second < 40 {
            continue;
        }
        let index =
            preprocessor.process(&mut rng_pf, &collector, &objects, second, Some(&mut cache));
        let delta = monitor.update(&world.plan, &world.anchors, &index);
        for (o, p) in &delta.appeared {
            println!("t={second:>3}s  {o} likely entered the room (p = {p:.2})");
            events += 1;
        }
        for o in &delta.disappeared {
            println!("t={second:>3}s  {o} left the room");
            events += 1;
        }
        // Probability drift above 0.25 is worth reporting too.
        for (o, old, new) in &delta.changed {
            if (new - old).abs() > 0.25 {
                println!("t={second:>3}s  {o} presence changed: {old:.2} -> {new:.2}");
                events += 1;
            }
        }
    }
    println!(
        "\nfinal occupants (p >= 0.3): {:?}",
        monitor
            .current()
            .sorted()
            .iter()
            .filter(|r| r.probability >= 0.3)
            .map(|r| r.object.to_string())
            .collect::<Vec<_>>()
    );
    println!("cache stats: {:?}", cache.stats());
    assert!(events > 0, "240 s of 40 walkers produces room traffic");
}
