//! End-to-end fixture coverage for the lint gate: every rule must FIRE
//! on the `ws_fire` fixture workspace and stay QUIET on `ws_quiet`,
//! including the suppression mechanics (a reasoned suppression silences,
//! a reasonless one does not).

use std::collections::BTreeMap;
use std::path::PathBuf;
use xtask::lint::{self, DiagStatus};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn every_rule_fires_on_the_fire_workspace() {
    let report = lint::run(&fixture_root("ws_fire")).expect("lint pass runs");
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for d in report.active() {
        *by_rule.entry(d.rule_id).or_insert(0) += 1;
    }
    // R1: thread_rng + Instant::now (core) + Instant::now in the
    // obs-style span recorder + the ambient-RNG draw in the sim-style
    // fault injector. R2: for-loop over a HashMap field + .keys() +
    // the hash-ordered landmark-selection loop in the graph-style
    // oracle fixture. R3: reasonless-suppressed unwrap + expect +
    // panic!. R4: virtual root manifest (2 problems) + core crate
    // manifest (2); the obs, sim, ckpt and graph fixture crates carry
    // their hygiene attrs so they add none. R5: exact == against a
    // literal + lossy `as f32` cast. R6: raw `fs::write` +
    // `File::create` in the ckpt-style snapshot writer.
    assert_eq!(by_rule.get("R1"), Some(&4), "{by_rule:?}");
    assert_eq!(by_rule.get("R2"), Some(&3), "{by_rule:?}");
    assert_eq!(by_rule.get("R3"), Some(&3), "{by_rule:?}");
    assert_eq!(by_rule.get("R4"), Some(&4), "{by_rule:?}");
    assert_eq!(by_rule.get("R5"), Some(&2), "{by_rule:?}");
    assert_eq!(by_rule.get("R6"), Some(&2), "{by_rule:?}");
    // The raw wall-clock read inside recorder code is caught where it
    // happens: metrics snapshots are deterministic artifacts, so obs-layer
    // code gets no clock-access pass.
    assert!(
        report
            .active()
            .any(|d| d.rule_id == "R1" && d.file.contains("crates/obs/")),
        "Instant::now() in an obs-style recorder must fire R1"
    );
    // Fault injection is result-producing too: a faulted run must replay
    // bit-for-bit, so an ambient-RNG draw in the injector fires R1.
    assert!(
        report
            .active()
            .any(|d| d.rule_id == "R1" && d.file.contains("crates/sim/")),
        "an ambient-RNG draw in a fault-injection site must fire R1"
    );
    // Landmark selection pins the oracle's distance tables for the
    // lifetime of a floorplan, so a hash-ordered argmax there would make
    // every downstream ALT search irreproducible: R2 must catch it in
    // graph-style oracle code.
    assert!(
        report
            .active()
            .any(|d| d.rule_id == "R2" && d.file.contains("crates/graph/")),
        "a hash-ordered landmark loop in oracle-style code must fire R2"
    );
    // A checkpoint writer that overwrites its snapshot in place (raw
    // `std::fs::write`) tears on crash — the new atomic-persistence rule
    // must catch it where it happens.
    assert!(
        report
            .active()
            .any(|d| d.rule_id == "R6" && d.file.contains("crates/ckpt/")),
        "a non-atomic snapshot write in checkpoint-style code must fire R6"
    );
    // A suppression without ` -- reason` does not suppress, and the
    // diagnostic explains why.
    assert!(
        report
            .active()
            .any(|d| d.message.contains("lacks the required")),
        "reasonless suppression must stay active with an explanatory note"
    );
    // Nothing in the fixture is suppressed or allowlisted.
    let (_, suppressed, allowed) = report.counts();
    assert_eq!((suppressed, allowed), (0, 0));
}

#[test]
fn quiet_workspace_passes_with_reasoned_suppressions() {
    let report = lint::run(&fixture_root("ws_quiet")).expect("lint pass runs");
    let active: Vec<String> = report
        .active()
        .map(|d| format!("{}:{} [{}] {}", d.file, d.line, d.rule_id, d.message))
        .collect();
    assert!(
        active.is_empty(),
        "unexpected active diagnostics:\n{active:#?}"
    );
    // The three reasoned suppressions (R1 wall-clock, R3 expect, R6 raw
    // marker write) are recorded — not dropped — and carry their reasons
    // through.
    let reasons: Vec<&String> = report
        .diags
        .iter()
        .filter_map(|d| match &d.status {
            DiagStatus::Suppressed(r) => Some(r),
            _ => None,
        })
        .collect();
    assert_eq!(reasons.len(), 3, "{reasons:?}");
    assert!(reasons.iter().all(|r| r.contains("fixture")));
}

#[test]
fn text_and_json_renderings_carry_the_diagnostics() {
    let report = lint::run(&fixture_root("ws_fire")).expect("lint pass runs");
    let text = report.render_text();
    assert!(text.contains("error[R1/no-nondeterminism]"), "{text}");
    assert!(text.contains("crates/core/src/lib.rs:"), "{text}");
    assert!(text.contains("files scanned"), "{text}");
    let json = report.render_json();
    assert!(json.contains("\"diagnostics\""), "{json}");
    assert!(json.contains("\"rule\": \"R5\""), "{json}");
    assert!(json.contains("\"status\": \"active\""), "{json}");
    assert!(json.contains("\"files_scanned\""), "{json}");
}
