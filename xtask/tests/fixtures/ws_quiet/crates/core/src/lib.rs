//! Quiet fixture: no rule may produce an active diagnostic here, even
//! though the file exercises RNG, timing, hash containers, fallible
//! accessors, probability comparisons and file writes. Expected: 3
//! suppressed diagnostics (one R1, one R3, one R6), zero active.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Deterministic RNG from an explicit seed: R1 quiet.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Ordered container iteration: R2 quiet.
pub fn ordered_sum(map: &BTreeMap<u32, f64>) -> f64 {
    map.values().sum()
}

/// Hash iteration is fine when the collected output is sorted right after.
pub fn sorted_keys() -> Vec<u32> {
    let mut scratch = HashMap::new();
    scratch.insert(1u32, 2u64);
    let mut keys: Vec<u32> = scratch.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// A suppressed wall-clock read with a written reason.
pub fn sanctioned_now() -> std::time::Instant {
    // ripq-lint: allow(no-nondeterminism) -- fixture: documents the suppression syntax with a reason
    std::time::Instant::now()
}

/// `unwrap_or` is panic-free and does not trip R3.
pub fn fallback(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

/// A suppressed expect with a written invariant.
pub fn head(v: &[u32]) -> u32 {
    // ripq-lint: allow(no-panic-paths) -- fixture: callers guarantee non-empty input
    *v.first().expect("non-empty")
}

/// Epsilon comparison keeps R5 quiet.
pub fn is_certain(prob: f64) -> bool {
    (prob - 1.0).abs() < 1e-9
}

/// A suppressed raw write with a written reason: the payload here is a
/// throwaway marker, not recovery-critical state.
pub fn touch_marker(path: &std::path::Path) -> std::io::Result<()> {
    // ripq-lint: allow(atomic-persistence) -- fixture: content-free marker file, no state to tear
    std::fs::write(path, b"")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_and_timing_in_tests_are_exempt() {
        assert_eq!(Some(3).unwrap(), 3);
        let _ = std::time::Instant::now();
    }
}
