//! Quiet fixture workspace root: nothing to flag.
