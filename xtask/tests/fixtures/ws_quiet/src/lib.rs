//! Quiet fixture workspace root: nothing active to flag. The file
//! exercises the audit's quiet paths — a registered instrument recorded
//! under its registered family (A2), and a seeded hash walk sanctioned
//! with a reasoned suppression (A3 suppressed, not dropped).

use std::collections::HashMap;

/// Minimal recorder facade mirroring the real obs API shape.
pub struct Recorder;

impl Recorder {
    /// Registers a counter by name.
    pub fn counter(&self, _name: &str) {}
}

/// Records the one instrument the fixture registry documents: A2 quiet.
pub fn record_pass(rec: &Recorder) {
    rec.counter("pipeline.ticks");
}

/// A hash-order walk inside seeded code, sanctioned with a written
/// reason: the determinism-taint analysis records the suppression
/// instead of firing.
pub fn jitter_total(seed: u64) -> u64 {
    let jitter: HashMap<u32, u64> = HashMap::new();
    let mut total = seed;
    // ripq-lint: allow(determinism-taint) -- fixture: diagnostic-only tally, order-independent integer sum
    for j in jitter.values() {
        total += j;
    }
    total
}
