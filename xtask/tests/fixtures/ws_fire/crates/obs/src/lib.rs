//! Fire fixture: an obs-style span recorder that reads the wall clock
//! directly instead of taking a caller-measured `Duration`. Metrics code
//! is result-producing here (snapshots must be bit-identical under
//! logical timing), so the raw `Instant::now()` must trip R1. The crate
//! also hosts the metrics-registry drift cases (A2): a typo'd instrument
//! name, an undocumented one, and a kind mismatch against the fixture
//! registry in `xtask/metrics_registry.toml`. Expected: R1 ×1, A2
//! undocumented ×2 / kind-mismatch ×1 (plus the dead entries those
//! imply in the registry file).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Accumulated timing for one span label.
#[derive(Default)]
pub struct SpanStat {
    /// Number of recorded executions.
    pub count: u64,
    /// Total micros across executions.
    pub total_micros: u64,
}

impl SpanStat {
    /// Times `body` with the wall clock — the exact pattern the
    /// observability layer must NOT use (callers pass durations measured
    /// on the pipeline's own clock abstraction instead).
    pub fn record<T>(&mut self, body: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = body();
        self.count += 1;
        self.total_micros += start.elapsed().as_micros() as u64;
        out
    }
}

/// Minimal recorder facade so the fixture can exercise instrument-name
/// extraction without depending on the real obs crate.
pub struct Recorder;

impl Recorder {
    /// Registers a counter by name.
    pub fn counter(&self, _name: &str) {}
    /// Records one histogram observation by name.
    pub fn observe(&self, _name: &str, _value: u64) {}
}

/// Every A2 drift class in three calls: `colector.detections` is one
/// edit from the registered `collector.detections` (typo → undocumented
/// with a did-you-mean, and the intended entry goes dead);
/// `pf.unlisted_metric` is undocumented outright; `cache.entries` is
/// registered as a gauge but recorded here through the histogram family.
pub fn record_pass(rec: &Recorder) {
    rec.counter("colector.detections");
    rec.counter("pf.unlisted_metric");
    rec.observe("cache.entries", 7);
}
