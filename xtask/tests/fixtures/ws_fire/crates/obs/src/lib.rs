//! Fire fixture: an obs-style span recorder that reads the wall clock
//! directly instead of taking a caller-measured `Duration`. Metrics code
//! is result-producing here (snapshots must be bit-identical under
//! logical timing), so the raw `Instant::now()` must trip R1. Expected:
//! R1 ×1, nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Accumulated timing for one span label.
#[derive(Default)]
pub struct SpanStat {
    /// Number of recorded executions.
    pub count: u64,
    /// Total micros across executions.
    pub total_micros: u64,
}

impl SpanStat {
    /// Times `body` with the wall clock — the exact pattern the
    /// observability layer must NOT use (callers pass durations measured
    /// on the pipeline's own clock abstraction instead).
    pub fn record<T>(&mut self, body: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = body();
        self.count += 1;
        self.total_micros += start.elapsed().as_micros() as u64;
        out
    }
}
