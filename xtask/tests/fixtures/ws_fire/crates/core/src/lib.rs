//! Fire fixture: every line rule must produce at least one ACTIVE
//! diagnostic in this file. Expected: R1 ×2, R2 ×2, R3 ×3, R5 ×2.

use std::collections::HashMap;

pub struct Tally {
    counts: HashMap<u32, u64>,
}

impl Tally {
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for (_, v) in &self.counts {
            sum += v;
        }
        sum
    }

    pub fn keys_unsorted(&self) -> Vec<u32> {
        self.counts.keys().copied().collect()
    }
}

pub fn seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn elapsed_secs() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs()
}

pub fn risky(v: Option<u32>) -> u32 {
    // ripq-lint: allow(no-panic-paths)
    v.unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn boom() {
    panic!("nope");
}

pub fn is_certain(prob: f64) -> bool {
    prob == 1.0
}

pub fn quantize(prob: f64) -> f32 {
    prob as f32
}
