//! Fire fixture: a graph-style landmark selector that iterates its
//! `HashMap` distance table directly. Farthest-point selection breaks
//! argmax ties by visit order, so hash-ordered iteration would pick
//! different landmarks run to run — the oracle's distance tables (and
//! with them every ALT search) would stop being reproducible. Expected:
//! R2 ×1, nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Per-candidate distance rows keyed by node id.
pub struct LandmarkTables {
    tables: HashMap<u32, Vec<f64>>,
}

impl LandmarkTables {
    /// Farthest-point step: returns the node whose minimum distance to
    /// the already-chosen landmarks is largest. Iterating the hash map
    /// makes the tie-break nondeterministic — the exact pattern R2 must
    /// catch (the real oracle walks node ids in index order instead).
    pub fn next_landmark(&self) -> Option<u32> {
        let mut best: Option<(u32, f64)> = None;
        for (&node, row) in self.tables.iter() {
            let score = row.iter().copied().fold(f64::INFINITY, f64::min);
            match best {
                Some((_, s)) if s >= score => {}
                _ => best = Some((node, score)),
            }
        }
        best.map(|(node, _)| node)
    }
}
