//! Fire fixture: a checkpoint writer that persists recovery state with
//! raw, non-atomic file writes. A crash mid-write leaves a torn
//! snapshot that a recovering process must then quarantine — the whole
//! point of the persistence layer is to stage to a temp file and
//! rename, so both raw forms must trip R6. Expected: R6 ×2, nothing
//! else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::Path;

/// Overwrites the snapshot in place: a crash mid-call tears the file.
pub fn save_snapshot(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

/// Truncates the destination before writing: a crash after the create
/// loses the previous snapshot AND the new one.
pub fn save_snapshot_streamed(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(bytes)
}

#[cfg(test)]
mod tests {
    /// Test code plants fixtures and corruption with raw writes freely.
    #[test]
    fn raw_writes_in_tests_are_exempt() {
        let path = std::env::temp_dir().join("fixture-ckpt-probe");
        std::fs::write(&path, b"fixture").unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
