//! Fire fixture: a fault-injection site that draws its drop decision
//! from the ambient OS-entropy generator instead of a seed-derived
//! stream. Chaos runs must be bit-for-bit replayable, so every fault
//! decision has to come from `derive_fault_seed`-style streams; the
//! ambient draw must trip R1. The crate also carries the audit fire
//! cases that need a non-result-producing home: an undeclared
//! `ripq_graph` reference (A1) and a seeded function that walks a hash
//! map (A3). Expected: R1 ×1, A1 undeclared-edge ×1, A3 ×1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// Decides whether to drop one reading.
///
/// The ambient generator is reseeded by the OS per process, so two runs
/// of the same fault plan disagree — exactly the nondeterminism the
/// lint exists to keep out of the injection path.
pub fn drop_reading(probability: f64) -> bool {
    let mut rng = rand::thread_rng();
    rng.random::<f64>() < probability
}

/// References the graph crate without a manifest dependency: the audit's
/// layering analysis must flag the undeclared edge.
pub fn plan_length() -> usize {
    ripq_graph::route_len()
}

/// Seed-derived state consumed while iterating a hash-ordered map: the
/// iteration order decides how the "stream" advances, so two runs fork —
/// the exact conjunction the determinism-taint analysis must catch (and
/// the float accumulation makes the ordering damage visible even without
/// an RNG draw per element).
pub fn jitter_total(seed: u64) -> f64 {
    let jitter: HashMap<u32, f64> = HashMap::new();
    let mut total = seed as f64;
    for (_, j) in jitter.iter() {
        total += j;
    }
    total
}
