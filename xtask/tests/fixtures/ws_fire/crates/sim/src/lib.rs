//! Fire fixture: a fault-injection site that draws its drop decision
//! from the ambient OS-entropy generator instead of a seed-derived
//! stream. Chaos runs must be bit-for-bit replayable, so every fault
//! decision has to come from `derive_fault_seed`-style streams; the
//! ambient draw must trip R1. Expected: R1 ×1, nothing else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Decides whether to drop one reading.
///
/// The ambient generator is reseeded by the OS per process, so two runs
/// of the same fault plan disagree — exactly the nondeterminism the
/// lint exists to keep out of the injection path.
pub fn drop_reading(probability: f64) -> bool {
    let mut rng = rand::thread_rng();
    rng.random::<f64>() < probability
}
