//! End-to-end fixture coverage for the audit gate: every analysis must
//! FIRE on the `ws_fire` fixture workspace and stay QUIET on `ws_quiet`
//! (with the one reasoned A3 suppression recorded, not dropped), and all
//! renderings must be byte-deterministic.

use std::collections::BTreeMap;
use std::path::PathBuf;
use xtask::audit::{self, AuditOptions, FindingStatus, Severity};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> audit::AuditReport {
    audit::run(&fixture_root(name), AuditOptions::default()).expect("audit pass runs")
}

#[test]
fn every_analysis_fires_on_the_fire_workspace() {
    let report = run("ws_fire");
    let mut by_analysis: BTreeMap<&str, usize> = BTreeMap::new();
    for f in report.gate_failures() {
        *by_analysis.entry(f.analysis.id()).or_insert(0) += 1;
    }
    // A1: unknown crate (ckpt) + core→sim→core cycle + forbidden
    // manifest edge core→sim + undeclared ripq_graph reference in sim.
    assert_eq!(by_analysis.get("A1"), Some(&4), "{by_analysis:?}");
    // A2: typo'd `colector.detections` + undocumented `pf.unlisted_metric`
    // + kind-mismatched `cache.entries` + ghost fixture pin + two dead
    // registry entries.
    assert_eq!(by_analysis.get("A2"), Some(&6), "{by_analysis:?}");
    // A3: the seeded hash walk in the sim fixture.
    assert_eq!(by_analysis.get("A3"), Some(&1), "{by_analysis:?}");
    // A4: core regression + stale `legacy` entry (the ckpt shrink is a
    // note, not an error).
    assert_eq!(by_analysis.get("A4"), Some(&2), "{by_analysis:?}");

    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    let has = |needle: &str| messages.iter().any(|m| m.contains(needle));

    // A1 specifics: the cycle path is canonical, the forbidden edge names
    // the engine/simulator invariant, the undeclared edge points at the
    // manifest fix.
    assert!(has("dependency cycle: core → sim → core"), "{messages:#?}");
    assert!(has("must never depend on the simulator"), "{messages:#?}");
    assert!(
        has("references `ripq_graph` but the manifest declares no such dependency"),
        "{messages:#?}"
    );
    assert!(
        has("crate `ckpt` is not in the layering spec"),
        "{messages:#?}"
    );

    // A2 specifics: the typo gets a did-you-mean, the dead entries anchor
    // in the registry file, the fixture ghost is called out.
    assert!(has("did you mean `collector.detections`?"), "{messages:#?}");
    assert!(
        has("registered as a gauge but recorded here as a histogram"),
        "{messages:#?}"
    );
    assert!(
        has("dead registry entry `sim.dead_metric`"),
        "{messages:#?}"
    );
    assert!(
        has("golden fixture pins instrument `oracle.ghost`"),
        "{messages:#?}"
    );

    // A3 names the tainted function and the float-accumulation hazard.
    assert!(
        has("fn `jitter_total` touches RNG/seed state"),
        "{messages:#?}"
    );
    assert!(has("float-accumulates"), "{messages:#?}");

    // A4: regression is an error, shrink is a note, stale entry named.
    assert!(
        has("ratchet regression in `core`: unwrap 0 → 1"),
        "{messages:#?}"
    );
    assert!(
        has("stale ratchet baseline entry `legacy`"),
        "{messages:#?}"
    );
    assert!(
        report
            .notes()
            .any(|f| f.message.contains("panic surface of `ckpt` shrank (1 → 0)")),
        "shrink must be a note inviting a ratchet tightening"
    );
    // Missing docs/METRICS.md is drift — a note outside --check mode.
    assert!(
        report
            .notes()
            .any(|f| f.message.contains("docs/METRICS.md has drifted")),
        "doc drift note expected"
    );

    // Nothing in the fire fixture is suppressed.
    let (_, _, suppressed) = report.counts();
    assert_eq!(suppressed, 0);
}

#[test]
fn check_mode_escalates_doc_drift_to_error() {
    let report = audit::run(&fixture_root("ws_fire"), AuditOptions { check: true })
        .expect("audit pass runs");
    assert!(
        report
            .gate_failures()
            .any(|f| f.message.contains("docs/METRICS.md has drifted")),
        "--check must turn doc drift into a gate failure"
    );
}

#[test]
fn quiet_workspace_passes_with_the_reasoned_suppression_recorded() {
    let report = run("ws_quiet");
    let active: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.status == FindingStatus::Active)
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.analysis.id(), f.message))
        .collect();
    assert!(
        active.is_empty(),
        "unexpected active findings:\n{active:#?}"
    );
    let suppressed: Vec<&audit::Finding> = report
        .findings
        .iter()
        .filter(|f| matches!(f.status, FindingStatus::Suppressed(_)))
        .collect();
    assert_eq!(suppressed.len(), 1, "exactly the sanctioned A3 walk");
    assert_eq!(suppressed[0].analysis.id(), "A3");
    assert_eq!(suppressed[0].severity, Severity::Error);
    match &suppressed[0].status {
        FindingStatus::Suppressed(reason) => {
            assert!(reason.contains("fixture"), "{reason}");
        }
        other => panic!("expected suppressed, got {other:?}"),
    }
}

#[test]
fn renderings_are_deterministic_and_carry_the_findings() {
    let a = run("ws_fire");
    let b = run("ws_fire");
    assert_eq!(a.render_text(), b.render_text());
    assert_eq!(a.render_json(), b.render_json());
    assert_eq!(a.render_sarif(), b.render_sarif());

    let text = a.render_text();
    assert!(text.contains("error[A1/layering]"), "{text}");
    assert!(text.contains("error[A4/panic-ratchet]"), "{text}");
    assert!(text.contains("files scanned"), "{text}");

    let json = a.render_json();
    assert!(json.contains("\"findings\""), "{json}");
    assert!(json.contains("\"analysis\": \"A2\""), "{json}");
    assert!(json.contains("\"errors\": 13"), "{json}");
    xtask::audit::json::parse(&json).expect("report JSON parses");

    let sarif = a.render_sarif();
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"A3\""), "{sarif}");
    assert!(sarif.contains("ripq-audit"), "{sarif}");
    xtask::audit::json::parse(&sarif).expect("SARIF parses as JSON");
}
