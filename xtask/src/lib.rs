//! # xtask — workspace automation for RIPQ
//!
//! This crate hosts `cargo xtask <task>` commands, following the
//! [cargo-xtask](https://github.com/matklad/cargo-xtask) convention: plain
//! Rust programs instead of shell scripts, wired up through a `.cargo/config.toml`
//! alias so no extra tooling has to be installed.
//!
//! The only task today is [`lint`] — a repo-specific static-analysis gate
//! that machine-enforces the invariants RIPQ's determinism and robustness
//! guarantees rest on (no ambient randomness or wall clocks in library
//! code, no unordered hash iteration in result paths, no panic paths, crate
//! hygiene, probability hygiene). See `DESIGN.md` for the rule catalogue
//! and the rationale behind each rule.
//!
//! The crate is deliberately dependency-free (the build is hermetic and
//! vendored) and exposes its whole engine as a library so the tier-1 test
//! suite can run the gate in-process (`tests/lint_gate.rs` at the
//! workspace root) without shelling out to cargo.

pub mod lint;
