//! # xtask — workspace automation for RIPQ
//!
//! This crate hosts `cargo xtask <task>` commands, following the
//! [cargo-xtask](https://github.com/matklad/cargo-xtask) convention: plain
//! Rust programs instead of shell scripts, wired up through a `.cargo/config.toml`
//! alias so no extra tooling has to be installed.
//!
//! Two static-analysis gates live here:
//!
//! * [`lint`] — per-file token-level rules (R1–R6) that machine-enforce
//!   the invariants RIPQ's determinism and robustness guarantees rest on
//!   (no ambient randomness or wall clocks in library code, no unordered
//!   hash iteration in result paths, no panic paths, crate hygiene,
//!   probability hygiene);
//! * [`audit`] — whole-workspace structural analyses (A1–A4): the crate
//!   layering DAG, metrics-registry drift, determinism taint, and the
//!   panic-surface ratchet.
//!
//! See `DESIGN.md` for both catalogues and the rationale behind each
//! rule/analysis.
//!
//! The crate is deliberately dependency-free (the build is hermetic and
//! vendored) and exposes its whole engine as a library so the tier-1 test
//! suite can run the gate in-process (`tests/lint_gate.rs` at the
//! workspace root) without shelling out to cargo.

pub mod audit;
pub mod lint;
