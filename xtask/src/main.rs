//! `cargo xtask` — workspace automation entry point.
//!
//! ```text
//! cargo xtask lint [--json] [--root <path>]   run the static-analysis gate
//! cargo xtask rules                           list the rule catalogue
//! cargo xtask bench-json [--out <path>]       emit the BENCH_6.json perf snapshot
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::lint;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <task>\n\n\
         tasks:\n  \
         lint [--json] [--root <path>]   run the repo lint gate (exit 1 on violations)\n  \
         rules                           list lint rules with their rationale\n  \
         bench-json [--out <path>]       write the BENCH_6.json perf snapshot (default: \n  \
                                         BENCH_6.json at the workspace root)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let root = root.or_else(|| {
                let cwd = std::env::current_dir().ok()?;
                lint::find_workspace_root(&cwd)
            });
            let Some(root) = root else {
                eprintln!("error: could not locate the workspace root (try --root <path>)");
                return ExitCode::FAILURE;
            };
            match lint::run(&root) {
                Ok(report) => {
                    if json {
                        print!("{}", report.render_json());
                    } else {
                        print!("{}", report.render_text());
                    }
                    if report.active().next().is_some() {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench-json") => {
            let mut out: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => match it.next() {
                        Some(p) => out = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let out = out.or_else(|| {
                let cwd = std::env::current_dir().ok()?;
                Some(lint::find_workspace_root(&cwd)?.join("BENCH_6.json"))
            });
            let Some(out) = out else {
                eprintln!("error: could not locate the workspace root (try --out <path>)");
                return ExitCode::FAILURE;
            };
            let status = std::process::Command::new(env!("CARGO"))
                .args([
                    "run",
                    "--release",
                    "-p",
                    "ripq-bench",
                    "--bin",
                    "bench_json",
                    "--",
                ])
                .arg("--out")
                .arg(&out)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(s) => {
                    eprintln!("error: bench_json exited with {s}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: failed to launch cargo: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("rules") => {
            for rule in lint::rules::ALL_RULES {
                println!("{} {:<20} {}", rule.id, rule.name, rule.summary);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
