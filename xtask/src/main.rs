//! `cargo xtask` — workspace automation entry point.
//!
//! ```text
//! cargo xtask lint [--json] [--root <path>]   run the static-analysis gate
//! cargo xtask audit [flags]                   run the workspace audit (A1–A4)
//! cargo xtask rules                           list the rule/analysis catalogue
//! cargo xtask bench-json [--out <path>]       emit the BENCH_10.json perf snapshot
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{audit, lint};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <task>\n\n\
         tasks:\n  \
         lint [--json] [--root <path>]   run the repo lint gate (exit 1 on violations)\n  \
         audit [--json] [--sarif] [--sarif-out <path>] [--root <path>]\n        \
         [--check] [--write-docs] [--update-baseline]\n                                  \
         run the workspace audit: layering DAG, metrics\n                                  \
         registry, determinism taint, panic ratchet\n  \
         rules                           list lint rules and audit analyses\n  \
         bench-json [--out <path>]       write the BENCH_10.json perf snapshot (default: \n  \
                                         BENCH_10.json at the workspace root)"
    );
    ExitCode::from(2)
}

fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    explicit.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        lint::find_workspace_root(&cwd)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json = false;
            let mut root: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let Some(root) = workspace_root(root) else {
                eprintln!("error: could not locate the workspace root (try --root <path>)");
                return ExitCode::FAILURE;
            };
            match lint::run(&root) {
                Ok(report) => {
                    if json {
                        print!("{}", report.render_json());
                    } else {
                        print!("{}", report.render_text());
                    }
                    if report.active().next().is_some() {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("audit") => {
            let mut json = false;
            let mut sarif = false;
            let mut sarif_out: Option<PathBuf> = None;
            let mut root: Option<PathBuf> = None;
            let mut check = false;
            let mut write_docs = false;
            let mut update_baseline = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--sarif" => sarif = true,
                    "--sarif-out" => match it.next() {
                        Some(p) => sarif_out = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    "--check" => check = true,
                    "--write-docs" => write_docs = true,
                    "--update-baseline" => update_baseline = true,
                    _ => return usage(),
                }
            }
            let Some(root) = workspace_root(root) else {
                eprintln!("error: could not locate the workspace root (try --root <path>)");
                return ExitCode::FAILURE;
            };
            let report = match audit::run(&root, audit::AuditOptions { check }) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if update_baseline {
                let text = audit::panics::render_baseline(&report.panic_counts);
                let path = root.join(audit::panics::BASELINE_PATH);
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", audit::panics::BASELINE_PATH);
            }
            if write_docs {
                if report.metrics_doc.is_empty() {
                    eprintln!(
                        "error: metrics registry missing or unparsable — cannot generate {}",
                        audit::metrics::DOC_PATH
                    );
                    return ExitCode::FAILURE;
                }
                let path = root.join(audit::metrics::DOC_PATH);
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) = std::fs::write(&path, &report.metrics_doc) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", audit::metrics::DOC_PATH);
            }
            if update_baseline || write_docs {
                // Mutating runs exist to converge the tree; re-run to gate.
                return ExitCode::SUCCESS;
            }
            if let Some(path) = &sarif_out {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                if let Err(e) = std::fs::write(path, report.render_sarif()) {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if sarif {
                print!("{}", report.render_sarif());
            } else if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.gate_failures().next().is_some() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("bench-json") => {
            let mut out: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => match it.next() {
                        Some(p) => out = Some(PathBuf::from(p)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let out = out.or_else(|| {
                let cwd = std::env::current_dir().ok()?;
                Some(lint::find_workspace_root(&cwd)?.join("BENCH_10.json"))
            });
            let Some(out) = out else {
                eprintln!("error: could not locate the workspace root (try --out <path>)");
                return ExitCode::FAILURE;
            };
            let status = std::process::Command::new(env!("CARGO"))
                .args([
                    "run",
                    "--release",
                    "-p",
                    "ripq-bench",
                    "--bin",
                    "bench_json",
                    "--",
                ])
                .arg("--out")
                .arg(&out)
                .status();
            match status {
                Ok(s) if s.success() => ExitCode::SUCCESS,
                Ok(s) => {
                    eprintln!("error: bench_json exited with {s}");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("error: failed to launch cargo: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("rules") => {
            for rule in lint::rules::ALL_RULES {
                println!("{} {:<20} {}", rule.id, rule.name, rule.summary);
            }
            for a in audit::Analysis::ALL {
                println!("{} {:<20} {}", a.id(), a.name(), a.summary());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
