//! A4 — panic-surface ratchet.
//!
//! R3 bans *new* panic paths but carries a reasoned residue (inline
//! suppressions and the static allowlist). This analysis measures that
//! residue: per-crate counts of `.unwrap()`, `.expect(…)`, panicking
//! macros and slice-index expressions in non-test code, persisted to a
//! checked-in baseline (`xtask/audit_baseline.json`) that is only
//! allowed to go *down*. A count above baseline fails the gate; a count
//! below it is a note inviting a baseline tightening
//! (`cargo xtask audit --update-baseline`); a baseline entry for a
//! deleted crate is stale and fails the gate, mirroring the lint
//! allowlist's stale-entry check.

use super::json;
use super::workspace::Workspace;
use super::{Analysis, Finding, FindingStatus, Severity};
use crate::lint::rules::{lex, Tok};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Workspace-relative path of the ratchet baseline.
pub const BASELINE_PATH: &str = "xtask/audit_baseline.json";

/// Panic-surface counts for one crate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PanicCounts {
    /// `.unwrap()` call sites.
    pub unwrap: u64,
    /// `.expect(…)` call sites.
    pub expect: u64,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` sites.
    pub panic_macros: u64,
    /// Slice/array index expressions (`x[i]`) — each one is an implicit
    /// bounds-check panic path.
    pub slice_index: u64,
}

impl PanicCounts {
    /// Total panic surface.
    pub fn total(&self) -> u64 {
        self.unwrap + self.expect + self.panic_macros + self.slice_index
    }

    fn fields(&self) -> [(&'static str, u64); 4] {
        [
            ("unwrap", self.unwrap),
            ("expect", self.expect),
            ("panic_macros", self.panic_macros),
            ("slice_index", self.slice_index),
        ]
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Counts the panic surface of every crate's non-test source code.
pub fn measure(ws: &Workspace) -> BTreeMap<String, PanicCounts> {
    let mut out: BTreeMap<String, PanicCounts> = BTreeMap::new();
    for krate in &ws.crates {
        let counts = out.entry(krate.name.clone()).or_default();
        for file in &krate.files {
            for line in &file.src.lines {
                if line.in_test {
                    continue;
                }
                let toks = lex(&line.code);
                for w in 0..toks.len() {
                    match &toks[w] {
                        Tok::Ident(name, _) => {
                            let after_dot = w >= 1 && matches!(toks[w - 1], Tok::Punct(".", _));
                            let called = matches!(toks.get(w + 1), Some(Tok::Punct("(", _)));
                            let is_macro = matches!(toks.get(w + 1), Some(Tok::Punct("!", _)));
                            if after_dot && called && *name == "unwrap" {
                                counts.unwrap += 1;
                            } else if after_dot && called && *name == "expect" {
                                counts.expect += 1;
                            } else if is_macro && PANIC_MACROS.contains(name) {
                                counts.panic_macros += 1;
                            }
                        }
                        // An index expression: `[` directly following a
                        // value (identifier or a closing bracket). Array
                        // literals, attributes and types don't match.
                        Tok::Punct("[", _)
                            if w >= 1
                                && matches!(
                                    toks[w - 1],
                                    Tok::Ident(_, _) | Tok::Punct(")" | "]", _)
                                ) =>
                        {
                            counts.slice_index += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    out
}

/// Renders the baseline document (deterministic, name-ordered).
pub fn render_baseline(counts: &BTreeMap<String, PanicCounts>) -> String {
    let mut out = String::from("{\n  \"schema\": \"ripq-audit-baseline/v1\",\n  \"crates\": {\n");
    for (i, (name, c)) in counts.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{name}\": {{\"unwrap\": {}, \"expect\": {}, \"panic_macros\": {}, \
             \"slice_index\": {}}}{}",
            c.unwrap,
            c.expect,
            c.panic_macros,
            c.slice_index,
            if i + 1 == counts.len() { "" } else { "," }
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Parses a baseline document.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, PanicCounts>, String> {
    let doc = json::parse(text)?;
    let obj = doc.as_obj().ok_or("baseline is not an object")?;
    if obj.get("schema").and_then(|v| v.as_str()) != Some("ripq-audit-baseline/v1") {
        return Err("baseline schema tag is not ripq-audit-baseline/v1".to_string());
    }
    let crates = obj
        .get("crates")
        .and_then(|v| v.as_obj())
        .ok_or("baseline has no crates object")?;
    let mut out = BTreeMap::new();
    for (name, entry) in crates {
        let entry = entry
            .as_obj()
            .ok_or_else(|| format!("crate `{name}` entry is not an object"))?;
        let field = |key: &str| -> Result<u64, String> {
            entry
                .get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("crate `{name}` is missing integer field `{key}`"))
        };
        out.insert(
            name.clone(),
            PanicCounts {
                unwrap: field("unwrap")?,
                expect: field("expect")?,
                panic_macros: field("panic_macros")?,
                slice_index: field("slice_index")?,
            },
        );
    }
    Ok(out)
}

/// Runs A4: measures the workspace and compares it to the baseline.
/// Returns (findings, measured counts).
pub fn check(root: &Path, ws: &Workspace) -> (Vec<Finding>, BTreeMap<String, PanicCounts>) {
    let measured = measure(ws);
    let mut findings = Vec::new();
    let baseline_text = match fs::read_to_string(root.join(BASELINE_PATH)) {
        Ok(t) => t,
        Err(_) => {
            findings.push(Finding {
                analysis: Analysis::PanicRatchet,
                severity: Severity::Error,
                file: BASELINE_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "panic-ratchet baseline `{BASELINE_PATH}` is missing — seed it with \
                     `cargo xtask audit --update-baseline`"
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
            return (findings, measured);
        }
    };
    let baseline = match parse_baseline(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            findings.push(Finding {
                analysis: Analysis::PanicRatchet,
                severity: Severity::Error,
                file: BASELINE_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!("cannot parse `{BASELINE_PATH}`: {e}"),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
            return (findings, measured);
        }
    };

    for (name, counts) in &measured {
        let Some(base) = baseline.get(name) else {
            findings.push(Finding {
                analysis: Analysis::PanicRatchet,
                severity: Severity::Error,
                file: BASELINE_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{name}` has no ratchet baseline entry — record its current \
                     panic surface with `cargo xtask audit --update-baseline`"
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
            continue;
        };
        let mut regressions = Vec::new();
        for ((field, now), (_, before)) in counts.fields().iter().zip(base.fields().iter()) {
            if now > before {
                regressions.push(format!("{field} {before} → {now}"));
            }
        }
        if !regressions.is_empty() {
            findings.push(Finding {
                analysis: Analysis::PanicRatchet,
                severity: Severity::Error,
                file: BASELINE_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "panic-surface ratchet regression in `{name}`: {} — the baseline only \
                     ratchets down; remove the new panic path (propagate RipqError) instead \
                     of raising the baseline",
                    regressions.join(", ")
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
        } else if counts.total() < base.total() {
            findings.push(Finding {
                analysis: Analysis::PanicRatchet,
                severity: Severity::Note,
                file: BASELINE_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "panic surface of `{name}` shrank ({} → {}) — tighten the ratchet with \
                     `cargo xtask audit --update-baseline`",
                    base.total(),
                    counts.total()
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
        }
    }

    for name in baseline.keys() {
        if !measured.contains_key(name) {
            findings.push(Finding {
                analysis: Analysis::PanicRatchet,
                severity: Severity::Error,
                file: BASELINE_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "stale ratchet baseline entry `{name}` — the crate no longer exists; \
                     prune it with `cargo xtask audit --update-baseline`"
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
        }
    }
    (findings, measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::source::SourceFile;

    #[test]
    fn measurement_counts_each_panic_shape() {
        use super::super::workspace::{AuditFile, CrateInfo};
        let src = SourceFile::parse(
            "fn f(v: &[u32]) -> u32 {\n\
             let a = o.unwrap();\n\
             let b = o.expect(\"m\");\n\
             let c = o.unwrap_or(0);\n\
             if bad { panic!(\"x\") }\n\
             let d = v[0] + grid[i][j];\n\
             let e = [1, 2, 3];\n\
             #[derive(Debug)]\n\
             struct S;\n\
             v.len()\n\
             }\n\
             #[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\n",
        );
        let ws = Workspace {
            crates: vec![CrateInfo {
                name: "core".to_string(),
                manifest_rel: "crates/core/Cargo.toml".to_string(),
                deps: Vec::new(),
                files: vec![AuditFile {
                    rel: "crates/core/src/lib.rs".to_string(),
                    src,
                }],
            }],
            files_scanned: 1,
        };
        let counts = measure(&ws)["core"];
        assert_eq!(counts.unwrap, 1, "unwrap_or and test code excluded");
        assert_eq!(counts.expect, 1);
        assert_eq!(counts.panic_macros, 1);
        // v[0], grid[i], [i][j]'s chained index — but not the array
        // literal or the #[derive] attribute.
        assert_eq!(counts.slice_index, 3);
    }

    #[test]
    fn baseline_round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "core".to_string(),
            PanicCounts {
                unwrap: 1,
                expect: 2,
                panic_macros: 3,
                slice_index: 4,
            },
        );
        counts.insert("geom".to_string(), PanicCounts::default());
        let text = render_baseline(&counts);
        let parsed = parse_baseline(&text).expect("parses");
        assert_eq!(parsed, counts);
        assert!(parse_baseline("{\"schema\": \"other\", \"crates\": {}}").is_err());
    }
}
