//! A2 — metrics-registry drift.
//!
//! Instrument names are scattered string literals (`recorder.counter
//! ("pf.resamples")` and friends), yet PR 3's byte-identical snapshot
//! guarantee makes them part of the public artifact surface: a typo'd
//! name silently forks a new instrument, a renamed one silently kills
//! golden fixtures. This analysis extracts every literal instrument
//! registration/recording site across the workspace and cross-checks it
//! against the checked-in canonical registry
//! (`xtask/metrics_registry.toml`):
//!
//! * **undocumented** — a name used in code but absent from the registry
//!   (with a did-you-mean suggestion when it is edit-distance ≤ 2 from a
//!   registered name: the typo case);
//! * **kind mismatch** — a registered name recorded through the wrong
//!   instrument family;
//! * **dead** — a registered name no code records (delete the entry or
//!   resurrect the instrument);
//! * **fixture drift** — a name in `tests/fixtures/expected_metrics.json`
//!   the registry does not document.
//!
//! `docs/METRICS.md` is *generated* from the registry (`render_doc`);
//! the orchestrator reports drift between the generated text and the
//! committed file.

use super::json;
use super::workspace::Workspace;
use super::{Analysis, Finding, FindingStatus, Severity};
use crate::lint::rules::{lex, Tok};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Instrument families, in registry/doc section order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// Monotone counter.
    Counter,
    /// Last-write-wins level.
    Gauge,
    /// Fixed log-bucket histogram.
    Histogram,
    /// Hierarchical slash-path span.
    Span,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Span => "span",
        }
    }

    fn section(self) -> &'static str {
        match self {
            Kind::Counter => "counters",
            Kind::Gauge => "gauges",
            Kind::Histogram => "histograms",
            Kind::Span => "spans",
        }
    }
}

/// One canonical registry entry.
#[derive(Debug)]
pub struct RegistryEntry {
    /// Instrument kind.
    pub kind: Kind,
    /// Instrument name (`stage.metric`, spans `stage/sub`).
    pub name: String,
    /// One-line description (required — the registry is the doc source).
    pub description: String,
    /// 1-based line in the registry file.
    pub line: usize,
}

/// The parsed canonical registry.
#[derive(Debug, Default)]
pub struct Registry {
    /// Entries in file order.
    pub entries: Vec<RegistryEntry>,
}

/// Workspace-relative path of the canonical registry.
pub const REGISTRY_PATH: &str = "xtask/metrics_registry.toml";

/// Workspace-relative path of the generated documentation.
pub const DOC_PATH: &str = "docs/METRICS.md";

/// Workspace-relative path of the golden metrics fixture.
pub const FIXTURE_PATH: &str = "tests/fixtures/expected_metrics.json";

impl Registry {
    /// Parses the registry format: `[counters]`-style section headers and
    /// `"name" = "description"` lines (valid TOML, hand-parsed because
    /// the build is hermetic).
    pub fn parse(text: &str) -> Result<Registry, String> {
        let mut entries = Vec::new();
        let mut kind: Option<Kind> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                kind = Some(match section {
                    "counters" => Kind::Counter,
                    "gauges" => Kind::Gauge,
                    "histograms" => Kind::Histogram,
                    "spans" => Kind::Span,
                    other => return Err(format!("line {}: unknown section [{other}]", idx + 1)),
                });
                continue;
            }
            let Some(k) = kind else {
                return Err(format!("line {}: entry before any section header", idx + 1));
            };
            let parse_quoted = |s: &str| -> Option<(String, String)> {
                let s = s.trim_start().strip_prefix('"')?;
                let end = s.find('"')?;
                Some((s[..end].to_string(), s[end + 1..].to_string()))
            };
            let Some((name, rest)) = parse_quoted(line) else {
                return Err(format!(
                    "line {}: expected `\"name\" = \"description\"`",
                    idx + 1
                ));
            };
            let Some((description, _)) = rest.trim_start().strip_prefix('=').and_then(parse_quoted)
            else {
                return Err(format!("line {}: missing `= \"description\"`", idx + 1));
            };
            if description.trim().is_empty() {
                return Err(format!(
                    "line {}: `{name}` has an empty description — the registry is the \
                     documentation source, every instrument must say what it measures",
                    idx + 1
                ));
            }
            entries.push(RegistryEntry {
                kind: k,
                name,
                description,
                line: idx + 1,
            });
        }
        Ok(Registry { entries })
    }

    fn find(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renders `docs/METRICS.md` — deterministic, name-sorted sections.
    pub fn render_doc(&self) -> String {
        let mut out = String::from(
            "# RIPQ metrics registry\n\n\
             <!-- GENERATED by `cargo xtask audit --write-docs` from\n     \
             xtask/metrics_registry.toml — do not edit by hand. -->\n\n\
             Every instrument the pipeline records, by family. Names follow the\n\
             `stage.metric` convention (spans use slash paths). Metrics snapshots are\n\
             deterministic artifacts: under logical timing the JSON rendering is\n\
             byte-identical across runs and worker counts, so this registry is part of\n\
             the output contract — `cargo xtask audit` fails on any drift between this\n\
             registry, the recording sites in code, and the golden fixture.\n",
        );
        for kind in [Kind::Counter, Kind::Gauge, Kind::Histogram, Kind::Span] {
            let mut entries: Vec<&RegistryEntry> =
                self.entries.iter().filter(|e| e.kind == kind).collect();
            if entries.is_empty() {
                continue;
            }
            entries.sort_by(|a, b| a.name.cmp(&b.name));
            let title = match kind {
                Kind::Counter => "Counters",
                Kind::Gauge => "Gauges",
                Kind::Histogram => "Histograms",
                Kind::Span => "Spans",
            };
            let _ = write!(out, "\n## {title}\n\n| name | description |\n|---|---|\n");
            for e in entries {
                let _ = writeln!(out, "| `{}` | {} |", e.name, e.description);
            }
        }
        out
    }
}

/// One literal instrument use site found in code.
#[derive(Debug)]
pub struct UseSite {
    /// Instrument kind implied by the method called.
    pub kind: Kind,
    /// The literal name.
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column of the literal.
    pub col: usize,
}

/// Methods that take an instrument name as their first (literal) argument.
const METHODS: [(&str, Kind); 7] = [
    ("counter", Kind::Counter),
    ("add", Kind::Counter),
    ("gauge", Kind::Gauge),
    ("set_gauge", Kind::Gauge),
    ("histogram", Kind::Histogram),
    ("observe", Kind::Histogram),
    ("record_span", Kind::Span),
];

/// Extracts every literal instrument use site from non-test code across
/// the workspace, sorted by (file, line, col).
pub fn extract_use_sites(ws: &Workspace) -> Vec<UseSite> {
    let mut sites = Vec::new();
    for krate in &ws.crates {
        // The audit tooling itself mentions method names in its own
        // extraction tables; instrument literals only live in product
        // crates.
        if krate.name == "xtask" {
            continue;
        }
        for file in &krate.files {
            for (idx, line) in file.src.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let toks = lex(&line.code);
                for w in 0..toks.len() {
                    let (method, kind) = match toks[w] {
                        Tok::Ident(name, _) => match METHODS.iter().find(|(m, _)| *m == name) {
                            Some((m, k)) => (*m, *k),
                            None => continue,
                        },
                        _ => continue,
                    };
                    let _ = method;
                    let after_dot = w >= 1 && matches!(toks[w - 1], Tok::Punct(".", _));
                    let open = matches!(toks.get(w + 1), Some(Tok::Punct("(", _)));
                    if !after_dot || !open {
                        continue;
                    }
                    let Some(Tok::Punct("(", paren)) = toks.get(w + 1) else {
                        continue;
                    };
                    // The scrubbed code blanks string literals; read the
                    // literal back out of the raw line (offsets match).
                    if let Some((name, col)) = literal_after(&line.raw, paren + 1) {
                        sites.push(UseSite {
                            kind,
                            name,
                            file: file.rel.clone(),
                            line: idx + 1,
                            col: col + 1,
                        });
                    } else if line.raw[paren + 1..].trim().is_empty() {
                        // rustfmt broke the call: `.set_gauge(` at end of
                        // line, literal leading the next line.
                        if let Some((name, col)) = file
                            .src
                            .lines
                            .get(idx + 1)
                            .and_then(|next| literal_after(&next.raw, 0))
                        {
                            sites.push(UseSite {
                                kind,
                                name,
                                file: file.rel.clone(),
                                line: idx + 2,
                                col: col + 1,
                            });
                        }
                    }
                }
            }
        }
    }
    sites.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    sites
}

/// Reads a `"…"` literal starting at or after byte `from` in `raw`
/// (skipping only whitespace). Returns (contents, byte offset of the
/// opening quote). Instrument names never contain escapes.
fn literal_after(raw: &str, from: usize) -> Option<(String, usize)> {
    let bytes = raw.as_bytes();
    let mut i = from;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    let start = i + 1;
    let end = raw[start..].find('"')? + start;
    Some((raw[start..end].to_string(), i))
}

/// Levenshtein distance, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Runs A2 over the scanned workspace. Returns the findings plus the
/// generated doc text (empty when the registry is missing/unparsable).
pub fn check(root: &Path, ws: &Workspace) -> (Vec<Finding>, String) {
    let mut findings = Vec::new();
    let registry_text = match fs::read_to_string(root.join(REGISTRY_PATH)) {
        Ok(t) => t,
        Err(_) => {
            findings.push(Finding {
                analysis: Analysis::MetricsRegistry,
                severity: Severity::Error,
                file: REGISTRY_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "canonical metrics registry `{REGISTRY_PATH}` is missing — every \
                     instrument name must be documented there"
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
            return (findings, String::new());
        }
    };
    let registry = match Registry::parse(&registry_text) {
        Ok(r) => r,
        Err(e) => {
            findings.push(Finding {
                analysis: Analysis::MetricsRegistry,
                severity: Severity::Error,
                file: REGISTRY_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!("cannot parse `{REGISTRY_PATH}`: {e}"),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
            return (findings, String::new());
        }
    };

    let sites = extract_use_sites(ws);

    // Undocumented / kind-mismatched uses: one finding per distinct
    // (name, kind), anchored at the first use site.
    let mut seen: Vec<(String, Kind)> = Vec::new();
    for site in &sites {
        if seen.iter().any(|(n, k)| *n == site.name && *k == site.kind) {
            continue;
        }
        seen.push((site.name.clone(), site.kind));
        match registry.find(&site.name) {
            None => {
                let suggestion = registry
                    .entries
                    .iter()
                    .map(|e| (edit_distance(&site.name, &e.name), &e.name))
                    .filter(|(d, _)| *d <= 2)
                    .min()
                    .map(|(_, name)| format!(" — did you mean `{name}`?"))
                    .unwrap_or_default();
                findings.push(Finding {
                    analysis: Analysis::MetricsRegistry,
                    severity: Severity::Error,
                    file: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "undocumented instrument `{}` ({}) — not in {REGISTRY_PATH}{}",
                        site.name,
                        site.kind.label(),
                        suggestion
                    ),
                    snippet: String::new(),
                    status: FindingStatus::Active,
                });
            }
            Some(entry) if entry.kind != site.kind => {
                findings.push(Finding {
                    analysis: Analysis::MetricsRegistry,
                    severity: Severity::Error,
                    file: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "instrument `{}` is registered as a {} but recorded here as a {} — \
                         one name, one family",
                        site.name,
                        entry.kind.label(),
                        site.kind.label()
                    ),
                    snippet: String::new(),
                    status: FindingStatus::Active,
                });
            }
            Some(_) => {}
        }
    }

    // Dead registry entries.
    for entry in &registry.entries {
        if !sites.iter().any(|s| s.name == entry.name) {
            findings.push(Finding {
                analysis: Analysis::MetricsRegistry,
                severity: Severity::Error,
                file: REGISTRY_PATH.to_string(),
                line: entry.line,
                col: 1,
                message: format!(
                    "dead registry entry `{}` ({}) — no code records it; delete the entry \
                     or resurrect the instrument",
                    entry.name,
                    entry.kind.label()
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
        }
    }

    // Golden-fixture cross-check: every instrument the fixture pins must
    // be documented.
    if let Ok(fixture_text) = fs::read_to_string(root.join(FIXTURE_PATH)) {
        match json::parse(&fixture_text) {
            Ok(doc) => {
                for kind in [Kind::Counter, Kind::Gauge, Kind::Histogram, Kind::Span] {
                    let Some(family) = doc
                        .as_obj()
                        .and_then(|o| o.get(kind.section()))
                        .and_then(|v| v.as_obj())
                    else {
                        continue;
                    };
                    for name in family.keys() {
                        if registry.find(name).is_none() {
                            findings.push(Finding {
                                analysis: Analysis::MetricsRegistry,
                                severity: Severity::Error,
                                file: FIXTURE_PATH.to_string(),
                                line: 1,
                                col: 1,
                                message: format!(
                                    "golden fixture pins instrument `{name}` ({}) that \
                                     {REGISTRY_PATH} does not document",
                                    kind.label()
                                ),
                                snippet: String::new(),
                                status: FindingStatus::Active,
                            });
                        }
                    }
                }
            }
            Err(e) => findings.push(Finding {
                analysis: Analysis::MetricsRegistry,
                severity: Severity::Error,
                file: FIXTURE_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!("cannot parse `{FIXTURE_PATH}`: {e}"),
                snippet: String::new(),
                status: FindingStatus::Active,
            }),
        }
    }

    (findings, registry.render_doc())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_parses_sections_and_rejects_empty_descriptions() {
        let reg = Registry::parse(
            "# comment\n[counters]\n\"pf.resamples\" = \"resampling passes\"\n\
             [spans]\n\"evaluate\" = \"whole evaluation pass\"\n",
        )
        .expect("parses");
        assert_eq!(reg.entries.len(), 2);
        assert_eq!(reg.entries[0].kind, Kind::Counter);
        assert_eq!(reg.entries[1].kind, Kind::Span);
        assert!(Registry::parse("[counters]\n\"x\" = \"\"\n").is_err());
        assert!(Registry::parse("[weird]\n").is_err());
        assert!(Registry::parse("\"x\" = \"y\"\n").is_err());
    }

    #[test]
    fn edit_distance_catches_single_typos() {
        assert_eq!(
            edit_distance("collector.detections", "colector.detections"),
            1
        );
        assert_eq!(edit_distance("a", "a"), 0);
        assert!(edit_distance("pf.resamples", "cache.entries") > 2);
    }

    #[test]
    fn doc_rendering_is_sorted_and_sectioned() {
        let reg = Registry::parse(
            "[counters]\n\"z.b\" = \"zb\"\n\"a.a\" = \"aa\"\n[gauges]\n\"g.g\" = \"gg\"\n",
        )
        .unwrap();
        let doc = reg.render_doc();
        let a = doc.find("`a.a`").unwrap();
        let z = doc.find("`z.b`").unwrap();
        assert!(a < z, "entries sorted by name");
        assert!(doc.contains("## Counters"));
        assert!(doc.contains("## Gauges"));
        assert!(!doc.contains("## Histograms"), "empty sections omitted");
    }

    #[test]
    fn literal_extraction_reads_raw_contents() {
        assert_eq!(
            literal_after("rec.add(\"pf.x\", 1)", 8),
            Some(("pf.x".to_string(), 8))
        );
        assert_eq!(literal_after("rec.add(name, 1)", 8), None);
    }
}
