//! SARIF 2.1.0 rendering of an [`AuditReport`].
//!
//! SARIF is the interchange format CI code-scanning UIs ingest; emitting
//! it lets the audit gate's findings annotate pull requests without any
//! extra glue. The output is deliberately minimal — one `run` with one
//! `tool.driver` describing the four analyses as rules, plus one
//! `result` per finding — and byte-deterministic: findings arrive
//! pre-sorted from the orchestrator, all maps render in fixed order, and
//! no timestamps or absolute paths appear anywhere.

use super::{esc, Analysis, AuditReport, FindingStatus, Severity};
use std::fmt::Write as _;

/// Renders `report` as a SARIF 2.1.0 log with a single run.
pub fn render(report: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"ripq-audit\",\n          \
         \"informationUri\": \"https://example.invalid/ripq\",\n          \"rules\": [\n",
    );
    for (i, a) in Analysis::ALL.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}{}",
            a.id(),
            a.name(),
            esc(a.summary()),
            if i + 1 == Analysis::ALL.len() {
                ""
            } else {
                ","
            }
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    let results: Vec<_> = report.findings.iter().collect();
    for (i, f) in results.iter().enumerate() {
        let level = match (&f.status, f.severity) {
            // SARIF has no first-class suppression level on results we
            // want surfaced; render suppressed findings as `none` so
            // scanners keep the record without raising an alert.
            (FindingStatus::Suppressed(_), _) => "none",
            (_, Severity::Error) => "error",
            (_, Severity::Note) => "note",
        };
        let rule_index = Analysis::ALL
            .iter()
            .position(|a| *a == f.analysis)
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"ruleIndex\": {rule_index}, \
             \"level\": \"{level}\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \
             \"startColumn\": {}}}}}}}]}}{}",
            f.analysis.id(),
            esc(&f.message),
            esc(&f.file),
            f.line,
            f.col,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Finding;
    use std::collections::BTreeMap;

    #[test]
    fn sarif_is_valid_json_and_deterministic() {
        let report = AuditReport {
            findings: vec![Finding {
                analysis: Analysis::Layering,
                severity: Severity::Error,
                file: "crates/core/Cargo.toml".to_string(),
                line: 9,
                col: 1,
                message: "forbidden edge \"core\" → \"sim\"".to_string(),
                snippet: String::new(),
                status: FindingStatus::Active,
            }],
            crates_scanned: 1,
            files_scanned: 1,
            metrics_doc: String::new(),
            panic_counts: BTreeMap::new(),
        };
        let a = render(&report);
        let b = render(&report);
        assert_eq!(a, b, "byte-deterministic");
        let parsed = crate::audit::json::parse(&a).expect("valid JSON");
        let runs = parsed
            .as_obj()
            .and_then(|o| o.get("runs"))
            .expect("has runs");
        let _ = runs;
        assert!(a.contains("\"level\": \"error\""));
        assert!(a.contains("\"ruleId\": \"A1\""));
    }

    #[test]
    fn suppressed_findings_render_level_none() {
        let report = AuditReport {
            findings: vec![Finding {
                analysis: Analysis::DeterminismTaint,
                severity: Severity::Error,
                file: "src/lib.rs".to_string(),
                line: 3,
                col: 5,
                message: "taint".to_string(),
                snippet: String::new(),
                status: FindingStatus::Suppressed("diagnostic-only path".to_string()),
            }],
            crates_scanned: 1,
            files_scanned: 1,
            metrics_doc: String::new(),
            panic_counts: BTreeMap::new(),
        };
        assert!(render(&report).contains("\"level\": \"none\""));
    }
}
