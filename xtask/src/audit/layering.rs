//! A1 — crate layering: the internal dependency DAG must match the
//! declared layering spec.
//!
//! The spec below *is* the architecture document: each crate names the
//! complete set of internal crates it may depend on. The analysis
//! checks, over every crate manifest and every `ripq_*::` reference in
//! non-test source code:
//!
//! * **unknown crate** — a workspace crate missing from the spec (the
//!   spec must be extended deliberately, not implicitly);
//! * **forbidden edge** — a manifest dependency the spec does not allow
//!   (this is what keeps `ripq-obs`/`ripq-persist` dependency-free and
//!   `ripq-core` out of `ripq-sim`);
//! * **undeclared edge** — source code referencing an internal crate the
//!   manifest does not declare (path-hygiene: edges must be visible in
//!   `Cargo.toml`, not smuggled through re-exports);
//! * **cycle** — any cycle in the manifest dependency graph.
//!
//! Spec entries for crates absent from the workspace are *ignored*, not
//! errors: the fixture workspaces are deliberate subsets.

use super::workspace::Workspace;
use super::{Analysis, Finding, FindingStatus, Severity};

/// A2 uses dotted instrument names; A1's identity is the crate directory
/// name, with `.` for the root package.
#[derive(Debug)]
pub struct Layer {
    /// Crate directory name.
    pub name: &'static str,
    /// Internal crates this layer may depend on (complete set).
    pub allowed: &'static [&'static str],
    /// One-line statement of the layer's architectural role.
    pub role: &'static str,
}

/// Every internal crate the leaf-free layers may reach, for the root
/// package and the harness crates that legitimately see everything.
const ALL_LIBS: &[&str] = &[
    "geom",
    "persist",
    "obs",
    "floorplan",
    "graph",
    "rfid",
    "pf",
    "symbolic",
    "core",
    "sim",
    "server",
];

/// The declared layering spec. Order is bottom-up and is the order the
/// architecture docs present the crates in.
pub const LAYERS: &[Layer] = &[
    Layer {
        name: "geom",
        allowed: &[],
        role: "2D primitives; depends on nothing internal",
    },
    Layer {
        name: "persist",
        allowed: &[],
        role: "crash-safe persistence primitives; MUST stay dependency-free so every \
               layer can use it without cycles",
    },
    Layer {
        name: "obs",
        allowed: &[],
        role: "observability; MUST stay dependency-free so every layer can record into it",
    },
    Layer {
        name: "floorplan",
        allowed: &["geom"],
        role: "indoor floor-plan model",
    },
    Layer {
        name: "graph",
        allowed: &["geom", "floorplan", "persist"],
        role: "walking graph, anchor index, distance oracle",
    },
    Layer {
        name: "rfid",
        allowed: &["geom", "floorplan", "graph", "persist", "obs"],
        role: "reader deployment, sensing model, event collector",
    },
    Layer {
        name: "symbolic",
        allowed: &["geom", "floorplan", "graph", "rfid"],
        role: "symbolic-model baseline inference",
    },
    Layer {
        name: "pf",
        allowed: &["geom", "floorplan", "graph", "rfid", "persist", "obs"],
        role: "particle filter and preprocessing",
    },
    Layer {
        name: "core",
        allowed: &["geom", "floorplan", "graph", "rfid", "pf", "persist", "obs"],
        role: "query evaluation engine; must NEVER depend on the simulator",
    },
    Layer {
        name: "sim",
        allowed: &[
            "geom",
            "floorplan",
            "graph",
            "rfid",
            "pf",
            "symbolic",
            "core",
            "persist",
            "obs",
        ],
        role: "simulator, ground truth, experiments",
    },
    Layer {
        name: "server",
        allowed: &["geom", "persist", "floorplan", "rfid", "core"],
        role: "streaming query daemon: framed ingestion, continuous subscriptions, \
               executors; must NEVER depend on the simulator (transcripts arrive as \
               plain frames)",
    },
    Layer {
        name: "bench",
        allowed: ALL_LIBS,
        role: "experiment/bench harness; may see everything",
    },
    Layer {
        name: ".",
        allowed: ALL_LIBS,
        role: "root facade crate and CLI; may see everything",
    },
    Layer {
        name: "xtask",
        allowed: &[],
        role: "workspace automation; internal deps would drag product code into the \
               lint/audit toolchain",
    },
];

fn layer(name: &str) -> Option<&'static Layer> {
    LAYERS.iter().find(|l| l.name == name)
}

/// Runs A1 over the scanned workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let dirs: Vec<String> = ws.crates.iter().map(|c| c.name.clone()).collect();

    for krate in &ws.crates {
        let Some(spec) = layer(&krate.name) else {
            findings.push(Finding {
                analysis: Analysis::Layering,
                severity: Severity::Error,
                file: krate.manifest_rel.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{}` is not in the layering spec — add it to \
                     xtask/src/audit/layering.rs with its complete allowed-dependency set",
                    krate.name
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
            continue;
        };
        // Forbidden manifest edges.
        for dep in &krate.deps {
            if !spec.allowed.contains(&dep.target.as_str()) {
                let target_note = match dep.target.as_str() {
                    "sim" => " (the engine must never depend on the simulator)",
                    _ => "",
                };
                let from_note = if spec.allowed.is_empty() {
                    format!(
                        " — `{}` is declared dependency-free: {}",
                        krate.name, spec.role
                    )
                } else {
                    String::new()
                };
                findings.push(Finding {
                    analysis: Analysis::Layering,
                    severity: Severity::Error,
                    file: krate.manifest_rel.clone(),
                    line: dep.line,
                    col: 1,
                    message: format!(
                        "forbidden dependency edge `{}` → `{}`: the layering spec allows \
                         [{}]{}{}",
                        krate.name,
                        dep.target,
                        spec.allowed.join(", "),
                        target_note,
                        from_note
                    ),
                    snippet: String::new(),
                    status: FindingStatus::Active,
                });
            }
        }
        // Undeclared code edges.
        for edge in krate.use_edges(&dirs) {
            if !krate.deps.iter().any(|d| d.target == edge.target) {
                let spec_note = if spec.allowed.contains(&edge.target.as_str()) {
                    "declare it in [dependencies]"
                } else {
                    "the layering spec forbids this edge entirely"
                };
                findings.push(Finding {
                    analysis: Analysis::Layering,
                    severity: Severity::Error,
                    file: edge.file.clone(),
                    line: edge.line,
                    col: edge.col,
                    message: format!(
                        "undeclared dependency edge: `{}` code references `ripq_{}` but the \
                         manifest declares no such dependency — {}",
                        krate.name,
                        edge.target.replace('-', "_"),
                        spec_note
                    ),
                    snippet: String::new(),
                    status: FindingStatus::Active,
                });
            }
        }
    }

    // Cycle detection over manifest edges, deterministic: DFS from each
    // crate in name order, reporting each cycle once (rotated so the
    // lexicographically smallest member leads).
    let mut reported: Vec<Vec<String>> = Vec::new();
    for start in &ws.crates {
        let mut stack: Vec<String> = vec![start.name.clone()];
        dfs_cycles(ws, &mut stack, &mut reported, &mut findings);
    }
    findings
}

fn dfs_cycles(
    ws: &Workspace,
    stack: &mut Vec<String>,
    reported: &mut Vec<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let current = stack.last().cloned().unwrap_or_default();
    let Some(krate) = ws.crates.iter().find(|c| c.name == current) else {
        return;
    };
    for dep in &krate.deps {
        if let Some(pos) = stack.iter().position(|n| *n == dep.target) {
            // Canonicalize: rotate so the smallest name leads.
            let cycle: Vec<String> = stack[pos..].to_vec();
            let min_idx = cycle
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut canon: Vec<String> = cycle[min_idx..].to_vec();
            canon.extend_from_slice(&cycle[..min_idx]);
            if !reported.contains(&canon) {
                reported.push(canon.clone());
                let path = canon
                    .iter()
                    .chain(std::iter::once(&canon[0]))
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(" → ");
                let anchor = ws
                    .crates
                    .iter()
                    .find(|c| c.name == canon[0])
                    .map(|c| c.manifest_rel.clone())
                    .unwrap_or_default();
                findings.push(Finding {
                    analysis: Analysis::Layering,
                    severity: Severity::Error,
                    file: anchor,
                    line: 1,
                    col: 1,
                    message: format!("dependency cycle: {path}"),
                    snippet: String::new(),
                    status: FindingStatus::Active,
                });
            }
        } else {
            stack.push(dep.target.clone());
            dfs_cycles(ws, stack, reported, findings);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_itself_a_dag_with_known_targets() {
        for l in LAYERS {
            for dep in l.allowed {
                let target = layer(dep).expect("allowed dep must be a spec layer");
                assert!(
                    !target.allowed.contains(&l.name),
                    "spec contains 2-cycle {} <-> {}",
                    l.name,
                    dep
                );
            }
        }
        // Bottom-up order: every allowed dep appears earlier in LAYERS.
        for (i, l) in LAYERS.iter().enumerate() {
            for dep in l.allowed {
                let pos = LAYERS.iter().position(|x| x.name == *dep).unwrap();
                assert!(pos < i, "{} must precede {}", dep, l.name);
            }
        }
    }

    #[test]
    fn obs_and_persist_are_declared_leaf_layers() {
        assert!(layer("obs").unwrap().allowed.is_empty());
        assert!(layer("persist").unwrap().allowed.is_empty());
        assert!(!layer("core").unwrap().allowed.contains(&"sim"));
    }
}
