//! A3 — determinism taint.
//!
//! The worker-count byte-identity guarantee (PR 1) rests on RNG streams
//! being consumed in a deterministic order. A function that both draws
//! from an RNG (or derives from a seed) *and* iterates a hash-ordered
//! container couples RNG consumption to `HashMap`/`HashSet` iteration
//! order — two runs visit objects in different orders, consume stream
//! values differently, and the outputs fork. The same iteration-order
//! hazard applies to float accumulation (`+=`/`sum` over hash order),
//! which the finding calls out when it sees it.
//!
//! R2 (`ordered-iteration`) already bans hash iteration in the five
//! result-producing crates; A3 is the workspace-wide, *conjunction*
//! version: any crate, but only where RNG/seed state is in scope, which
//! is exactly where order nondeterminism contaminates replayability.

use super::workspace::Workspace;
use super::{Analysis, Finding, FindingStatus, Severity};
use crate::lint::rules::{hash_container_names, lex, sorted_nearby, Tok};
use crate::lint::source::SourceFile;

/// One function region: name and 0-based inclusive line span.
#[derive(Debug)]
struct FnRegion {
    name: String,
    start: usize,
    end: usize,
}

/// Splits a file into top-level-ish function regions by brace tracking.
/// Nested functions/closures stay part of the enclosing region — the
/// taint conjunction is about shared lexical scope, which nesting keeps.
fn fn_regions(src: &SourceFile) -> Vec<FnRegion> {
    let mut regions: Vec<FnRegion> = Vec::new();
    let mut depth: i64 = 0;
    let mut pending: Option<(String, usize)> = None; // fn seen, body not yet opened
    let mut open: Option<(String, usize, i64)> = None; // (name, start, body depth)
    for (idx, line) in src.lines.iter().enumerate() {
        let toks = lex(&line.code);
        for w in 0..toks.len() {
            match &toks[w] {
                Tok::Ident("fn", _) if open.is_none() && pending.is_none() => {
                    let name = match toks.get(w + 1) {
                        Some(Tok::Ident(n, _)) => (*n).to_string(),
                        _ => String::from("?"),
                    };
                    pending = Some((name, idx));
                }
                Tok::Punct("{", _) => {
                    depth += 1;
                    if let Some((name, start)) = pending.take() {
                        open = Some((name, start, depth));
                    }
                }
                Tok::Punct("}", _) => {
                    if let Some((_, _, body_depth)) = &open {
                        if depth == *body_depth {
                            let (name, start, _) = open.take().unwrap_or_default();
                            regions.push(FnRegion {
                                name,
                                start,
                                end: idx,
                            });
                        }
                    }
                    depth -= 1;
                }
                // `fn f(...);` in a trait: no body, no region.
                Tok::Punct(";", _) if open.is_none() => {
                    pending = None;
                }
                _ => {}
            }
        }
    }
    regions
}

/// Does this identifier carry RNG/seed state by naming convention? The
/// workspace's own conventions (`rng`, `obj_rng`, `StdRng`, `seed`,
/// `derive_stream_seed`, `seed_from_u64`) all match.
fn rng_like(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    lower.contains("rng") || lower.contains("seed")
}

/// Iteration methods whose visit order is the hash order (mirrors R2).
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Hash-iteration sites in `lines[start..=end]`, as (line idx, col,
/// receiver, accumulates_floats).
fn hash_iteration_sites(
    src: &SourceFile,
    names: &[String],
    start: usize,
    end: usize,
) -> Vec<(usize, usize, String, bool)> {
    let mut sites = Vec::new();
    for idx in start..=end.min(src.lines.len() - 1) {
        let line = &src.lines[idx];
        if line.in_test {
            continue;
        }
        let toks = lex(&line.code);
        for w in 0..toks.len() {
            let mut hit: Option<(usize, String)> = None;
            if let Tok::Ident(method, mpos) = toks[w] {
                if ITER_METHODS.contains(&method)
                    && w >= 2
                    && matches!(toks[w - 1], Tok::Punct(".", _))
                {
                    if let Tok::Ident(recv, _) = toks[w - 2] {
                        if names.iter().any(|n| n == recv) {
                            hit = Some((mpos, recv.to_string()));
                        }
                    }
                }
            }
            if let Tok::Ident("in", _) = toks[w] {
                let mut v = w + 1;
                while v < toks.len()
                    && matches!(toks[v], Tok::Punct("&" | "(", _) | Tok::Ident("mut", _))
                {
                    v += 1;
                }
                if matches!(toks.get(v), Some(Tok::Ident("self", _)))
                    && matches!(toks.get(v + 1), Some(Tok::Punct(".", _)))
                {
                    v += 2;
                }
                if let Some(Tok::Ident(recv, rpos)) = toks.get(v) {
                    let followed_by_call = matches!(toks.get(v + 1), Some(Tok::Punct(".", _)));
                    if names.iter().any(|n| n == recv) && !followed_by_call {
                        hit = Some((*rpos, (*recv).to_string()));
                    }
                }
            }
            if let Some((col, recv)) = hit {
                if !sorted_nearby(src, idx) {
                    let accumulates = (idx..=(idx + 3).min(end))
                        .filter_map(|i| src.lines.get(i))
                        .any(|l| l.code.contains("+=") || l.code.contains(".sum"));
                    sites.push((idx, col, recv, accumulates));
                }
            }
        }
    }
    sites
}

/// Runs A3 over the scanned workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in &ws.crates {
        if krate.name == "xtask" {
            // The audit/lint tooling manipulates rule tables naming these
            // very tokens; it serves no queries and draws no RNG.
            continue;
        }
        for file in &krate.files {
            let names = hash_container_names(&file.src);
            if names.is_empty() {
                continue;
            }
            for region in fn_regions(&file.src) {
                // Skip all-test regions.
                if (region.start..=region.end)
                    .filter_map(|i| file.src.lines.get(i))
                    .all(|l| l.in_test)
                {
                    continue;
                }
                let touches_rng = (region.start..=region.end)
                    .filter_map(|i| file.src.lines.get(i))
                    .filter(|l| !l.in_test)
                    .any(|l| {
                        lex(&l.code)
                            .iter()
                            .any(|t| matches!(t, Tok::Ident(n, _) if rng_like(n)))
                    });
                if !touches_rng {
                    continue;
                }
                for (idx, col, recv, accumulates) in
                    hash_iteration_sites(&file.src, &names, region.start, region.end)
                {
                    let accum_note = if accumulates {
                        " and float-accumulates in that order"
                    } else {
                        ""
                    };
                    findings.push(Finding {
                        analysis: Analysis::DeterminismTaint,
                        severity: Severity::Error,
                        file: file.rel.clone(),
                        line: idx + 1,
                        col: col + 1,
                        message: format!(
                            "determinism taint: fn `{}` touches RNG/seed state and iterates \
                             hash-ordered `{recv}`{accum_note} — RNG consumption couples to \
                             hash order, breaking worker-count byte-identity; iterate a \
                             BTree container or a sorted key list instead",
                            region.name
                        ),
                        snippet: String::new(),
                        status: FindingStatus::Active,
                    });
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(src)
    }

    #[test]
    fn taint_requires_the_conjunction() {
        // RNG + hash iteration → tainted.
        let f = parse(
            "fn resample(seed: u64) {\n\
             let weights: HashMap<u32, f64> = HashMap::new();\n\
             let mut total = 0.0;\n\
             for (_, w) in weights.iter() { total += w; }\n\
             }\n",
        );
        let ws = wrap(f);
        let findings = check(&ws);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("float-accumulates"));

        // Hash iteration alone (no RNG) → A3 silent (R2's territory).
        let f = parse(
            "fn total() {\n\
             let weights: HashMap<u32, f64> = HashMap::new();\n\
             for (_, w) in weights.iter() { }\n\
             }\n",
        );
        assert!(check(&wrap(f)).is_empty());

        // RNG + BTree iteration → clean.
        let f = parse(
            "fn resample(rng: &mut StdRng) {\n\
             let weights: BTreeMap<u32, f64> = BTreeMap::new();\n\
             for (_, w) in weights.iter() { }\n\
             }\n",
        );
        assert!(check(&wrap(f)).is_empty());

        // RNG + hash iteration but sorted immediately → clean.
        let f = parse(
            "fn resample(seed: u64) {\n\
             let m: HashMap<u32, f64> = HashMap::new();\n\
             let mut v: Vec<_> = m.iter().collect();\n\
             v.sort();\n\
             }\n",
        );
        assert!(check(&wrap(f)).is_empty());
    }

    #[test]
    fn separate_functions_do_not_cross_taint() {
        let f = parse(
            "fn draws(rng: &mut StdRng) { let x = 1; }\n\
             fn iterates() {\n\
             let m: HashMap<u32, f64> = HashMap::new();\n\
             for v in m.values() { }\n\
             }\n",
        );
        assert!(check(&wrap(f)).is_empty());
    }

    fn wrap(src: SourceFile) -> Workspace {
        use super::super::workspace::{AuditFile, CrateInfo};
        Workspace {
            crates: vec![CrateInfo {
                name: "sim".to_string(),
                manifest_rel: "crates/sim/Cargo.toml".to_string(),
                deps: Vec::new(),
                files: vec![AuditFile {
                    rel: "crates/sim/src/lib.rs".to_string(),
                    src,
                }],
            }],
            files_scanned: 1,
        }
    }
}
