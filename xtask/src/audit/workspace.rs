//! The whole-workspace model the audit analyses run over.
//!
//! One scan pass builds everything every analysis needs: the crate set
//! (root package, `crates/*`, `xtask`; `vendor/` is external code and
//! excluded), each crate's manifest with its *internal* `[dependencies]`
//! edges resolved to crate directory names, and every `src/**.rs` file
//! parsed through the lint scanner so analyses see scrubbed code lines,
//! test-region marks and `ripq-lint: allow(...)` suppressions for free.

use crate::lint::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// One internal dependency edge declared in a crate manifest.
#[derive(Debug)]
pub struct ManifestDep {
    /// Target crate, as a workspace directory name (`core`, `sim`, …).
    pub target: String,
    /// 1-based line of the dependency entry in the manifest.
    pub line: usize,
}

/// One `ripq_*::` reference found in a crate's non-test source code.
#[derive(Debug)]
pub struct UseEdge {
    /// Referenced crate, as a workspace directory name.
    pub target: String,
    /// Workspace-relative path of the referencing file.
    pub file: String,
    /// 1-based line of the first reference.
    pub line: usize,
    /// 1-based byte column of the first reference.
    pub col: usize,
}

/// One scanned source file.
#[derive(Debug)]
pub struct AuditFile {
    /// Workspace-relative path (unix separators).
    pub rel: String,
    /// The lint-scanner parse: scrubbed code, comments, test regions,
    /// suppressions.
    pub src: SourceFile,
}

/// One workspace crate with everything the analyses need.
#[derive(Debug)]
pub struct CrateInfo {
    /// Directory name used for identity (`core`, `pf`, …; the root
    /// package is `.`, the automation crate `xtask`).
    pub name: String,
    /// Workspace-relative manifest path.
    pub manifest_rel: String,
    /// Internal `[dependencies]` edges (dev-dependencies are ignored:
    /// layering constrains the runtime graph, and cargo itself allows
    /// dev-dep cycles).
    pub deps: Vec<ManifestDep>,
    /// Parsed `src/**.rs` files, sorted by path.
    pub files: Vec<AuditFile>,
}

/// The scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Crates in deterministic (directory-name) order, root first.
    pub crates: Vec<CrateInfo>,
    /// Total `.rs` files scanned.
    pub files_scanned: usize,
}

/// Normalizes a manifest dependency key or `ripq_x` path segment to a
/// workspace directory name: strips the `ripq-`/`ripq_` prefix and maps
/// `_` to `-` the way cargo does (our crate dirs use plain names).
fn normalize_crate_key(key: &str) -> String {
    let key = key.replace('_', "-");
    key.strip_prefix("ripq-").unwrap_or(&key).to_string()
}

/// Extracts internal dependency edges from one manifest. `dirs` is the
/// set of workspace crate directory names used to decide "internal".
fn manifest_internal_deps(manifest: &str, dirs: &[String]) -> Vec<ManifestDep> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() {
            continue;
        }
        let Some(key) = line
            .split(|c: char| c == '.' || c == '=' || c.is_whitespace())
            .next()
            .filter(|k| !k.is_empty())
        else {
            continue;
        };
        let mut target = normalize_crate_key(key);
        // `foo = { path = "../sim" }` style: resolve by path when the key
        // itself is not an internal name (fixture workspaces use this).
        if !dirs.contains(&target) {
            if let Some(path) = line.split("path").nth(1).and_then(|rest| {
                let rest = rest.trim_start().strip_prefix('=')?.trim_start();
                rest.strip_prefix('"')?.split('"').next()
            }) {
                if let Some(last) = path.rsplit('/').next() {
                    target = normalize_crate_key(last);
                }
            }
        }
        if dirs.contains(&target) {
            deps.push(ManifestDep {
                target,
                line: idx + 1,
            });
        }
    }
    deps
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel_unix(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans the workspace rooted at `root`.
pub fn scan(root: &Path) -> Result<Workspace, String> {
    // Enumerate crate directories first so manifest parsing can resolve
    // internal dep keys against the full set.
    let mut entries: Vec<(String, PathBuf)> = Vec::new();
    let root_manifest_path = root.join("Cargo.toml");
    let root_manifest = fs::read_to_string(&root_manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", root_manifest_path.display()))?;
    if root_manifest.lines().any(|l| l.trim() == "[package]") {
        entries.push((".".to_string(), PathBuf::new()));
    }
    let crates_dir = root.join("crates");
    if let Ok(dir) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = dir
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
            .collect();
        dirs.sort();
        for d in dirs {
            let name = d
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            entries.push((
                name,
                PathBuf::from("crates").join(d.file_name().unwrap_or_default()),
            ));
        }
    }
    if root.join("xtask/Cargo.toml").exists() {
        entries.push(("xtask".to_string(), PathBuf::from("xtask")));
    }
    let dirs: Vec<String> = entries.iter().map(|(n, _)| n.clone()).collect();

    let mut crates = Vec::new();
    let mut files_scanned = 0usize;
    for (name, dir) in entries {
        let crate_dir = root.join(&dir);
        let manifest_path = crate_dir.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let deps = manifest_internal_deps(&manifest, &dirs);
        let mut files = Vec::new();
        for path in rust_files(&crate_dir.join("src")) {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            files.push(AuditFile {
                rel: rel_unix(root, &path),
                src: SourceFile::parse(&text),
            });
            files_scanned += 1;
        }
        crates.push(CrateInfo {
            name,
            manifest_rel: rel_unix(root, &manifest_path),
            deps,
            files,
        });
    }
    Ok(Workspace {
        crates,
        files_scanned,
    })
}

impl CrateInfo {
    /// Collects `ripq_*::` references in this crate's non-test code —
    /// one edge per referenced crate, anchored at the first reference.
    /// References to the crate itself are ignored.
    pub fn use_edges(&self, dirs: &[String]) -> Vec<UseEdge> {
        let mut edges: Vec<UseEdge> = Vec::new();
        for file in &self.files {
            for (idx, line) in file.src.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let code = &line.code;
                let bytes = code.as_bytes();
                let mut from = 0;
                while let Some(rel) = code[from..].find("ripq_") {
                    let start = from + rel;
                    let boundary = start == 0
                        || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
                    let mut end = start;
                    while end < bytes.len()
                        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    from = end.max(start + 1);
                    if !boundary {
                        continue;
                    }
                    let target = normalize_crate_key(&code[start..end]);
                    if target == self.name || !dirs.contains(&target) {
                        continue;
                    }
                    if !edges.iter().any(|e| e.target == target) {
                        edges.push(UseEdge {
                            target,
                            file: file.rel.clone(),
                            line: idx + 1,
                            col: start + 1,
                        });
                    }
                }
            }
        }
        edges.sort_by(|a, b| a.target.cmp(&b.target));
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_deps_resolve_workspace_keys_and_paths() {
        let dirs = vec!["core".to_string(), "sim".to_string(), "geom".to_string()];
        let manifest = "[package]\nname = \"x\"\n[dependencies]\n\
                        ripq-geom.workspace = true\n\
                        ripq-core = { path = \"../core\" }\n\
                        fixture-sim = { path = \"../sim\" }\n\
                        serde.workspace = true\n\
                        [dev-dependencies]\nripq-sim.workspace = true\n";
        let deps = manifest_internal_deps(manifest, &dirs);
        let targets: Vec<&str> = deps.iter().map(|d| d.target.as_str()).collect();
        assert_eq!(targets, ["geom", "core", "sim"], "dev-deps excluded");
    }

    #[test]
    fn use_edges_find_first_reference_outside_tests() {
        let dirs = vec!["graph".to_string(), "obs".to_string()];
        let info = CrateInfo {
            name: "obs".to_string(),
            manifest_rel: "crates/obs/Cargo.toml".to_string(),
            deps: Vec::new(),
            files: vec![AuditFile {
                rel: "crates/obs/src/lib.rs".to_string(),
                src: SourceFile::parse(
                    "// ripq_graph in a comment does not count\n\
                     use ripq_obs::x; // self-reference: ignored\n\
                     let g = ripq_graph::Graph::new();\n\
                     #[cfg(test)]\nmod t { use ripq_graph::Graph; }\n",
                ),
            }],
        };
        let edges = info.use_edges(&dirs);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].target, "graph");
        assert_eq!(edges[0].line, 3);
    }
}
