//! `cargo xtask audit` — whole-workspace structural analysis.
//!
//! Where `lint` (R1–R6) is token-level and per-file, `audit` sees the
//! workspace as one artifact and enforces the invariants no single file
//! can witness:
//!
//! * **A1 `layering`** — the internal crate dependency DAG must match
//!   the declared layering spec ([`layering::LAYERS`]): no cycles, no
//!   undeclared code edges, no forbidden edges (`core → sim`, anything
//!   out of `obs`/`persist`).
//! * **A2 `metrics-registry`** — every instrument name literal in code
//!   must be documented in `xtask/metrics_registry.toml` (and vice
//!   versa), the golden metrics fixture must only pin documented names,
//!   and `docs/METRICS.md` is generated from the registry.
//! * **A3 `determinism-taint`** — no function may both touch RNG/seed
//!   state and iterate a hash-ordered container: that couples RNG
//!   consumption to hash order and breaks worker-count byte-identity.
//! * **A4 `panic-ratchet`** — per-crate panic-surface counts
//!   (`unwrap`/`expect`/panic macros/slice indexing) may only decrease
//!   relative to the checked-in baseline `xtask/audit_baseline.json`.
//!
//! Findings share the lint gate's suppression grammar —
//! `ripq-lint: allow(<analysis-name>) -- reason` on the finding line or
//! the line above, in `//` comments in Rust sources and `#` comments in
//! the manifest/registry files findings anchor to. Output renders as
//! rustc-style text, JSON, or SARIF 2.1 ([`sarif`]); all three are
//! byte-deterministic for a given tree.

pub mod determinism;
pub mod json;
pub mod layering;
pub mod metrics;
pub mod panics;
pub mod sarif;
pub mod workspace;

use crate::lint::source::parse_suppressions;
use panics::PanicCounts;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// The four audit analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Analysis {
    /// A1 — crate layering DAG vs. the declared spec.
    Layering,
    /// A2 — metrics-registry drift.
    MetricsRegistry,
    /// A3 — determinism taint (RNG × hash-order).
    DeterminismTaint,
    /// A4 — panic-surface ratchet.
    PanicRatchet,
}

impl Analysis {
    /// Stable short id (`A1` … `A4`).
    pub fn id(self) -> &'static str {
        match self {
            Analysis::Layering => "A1",
            Analysis::MetricsRegistry => "A2",
            Analysis::DeterminismTaint => "A3",
            Analysis::PanicRatchet => "A4",
        }
    }

    /// Name used in diagnostics and `allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            Analysis::Layering => "layering",
            Analysis::MetricsRegistry => "metrics-registry",
            Analysis::DeterminismTaint => "determinism-taint",
            Analysis::PanicRatchet => "panic-ratchet",
        }
    }

    /// One-line rationale, shown by `cargo xtask rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Analysis::Layering => {
                "internal crate dependencies must match the declared layering DAG: no \
                 cycles, no undeclared or forbidden edges (core must never reach sim; \
                 obs/persist stay dependency-free)"
            }
            Analysis::MetricsRegistry => {
                "every instrument name literal must be documented in the canonical \
                 registry and vice versa; docs/METRICS.md is generated from it"
            }
            Analysis::DeterminismTaint => {
                "no function may both touch RNG/seed state and iterate a hash-ordered \
                 container — that breaks worker-count byte-identity"
            }
            Analysis::PanicRatchet => {
                "per-crate panic-surface counts (unwrap/expect/panic!/slice-index) may \
                 only decrease relative to the checked-in baseline"
            }
        }
    }

    /// All analyses, in id order.
    pub const ALL: [Analysis; 4] = [
        Analysis::Layering,
        Analysis::MetricsRegistry,
        Analysis::DeterminismTaint,
        Analysis::PanicRatchet,
    ];
}

/// Finding severity. Only active [`Severity::Error`] findings fail the
/// gate; notes are advisory (ratchet-tightening hints, doc drift outside
/// `--check` mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate when active.
    Error,
    /// Advisory.
    Note,
}

/// Suppression state of a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingStatus {
    /// Unsuppressed.
    Active,
    /// Silenced by a reasoned inline suppression.
    Suppressed(String),
}

/// One audit finding.
#[derive(Debug)]
pub struct Finding {
    /// Which analysis produced it.
    pub analysis: Analysis,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative path the finding anchors to.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Explanation and remediation advice.
    pub message: String,
    /// The anchored source line, trimmed (filled by the orchestrator).
    pub snippet: String,
    /// Suppression state (resolved by the orchestrator).
    pub status: FindingStatus,
}

/// Options for one audit pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct AuditOptions {
    /// CI mode: `docs/METRICS.md` drift becomes an error instead of a
    /// note.
    pub check: bool,
}

/// The result of one audit pass.
#[derive(Debug)]
pub struct AuditReport {
    /// Every finding, including suppressed ones, sorted by
    /// (file, line, col, analysis id).
    pub findings: Vec<Finding>,
    /// Crates scanned.
    pub crates_scanned: usize,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// The `docs/METRICS.md` text generated from the registry (empty if
    /// the registry is missing or unparsable).
    pub metrics_doc: String,
    /// Measured per-crate panic surface, for `--update-baseline`.
    pub panic_counts: BTreeMap<String, PanicCounts>,
}

impl AuditReport {
    /// Unsuppressed error findings — these fail the gate.
    pub fn gate_failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.status == FindingStatus::Active && f.severity == Severity::Error)
    }

    /// Active notes.
    pub fn notes(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.status == FindingStatus::Active && f.severity == Severity::Note)
    }

    /// (errors, notes, suppressed) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.findings {
            match (&f.status, f.severity) {
                (FindingStatus::Active, Severity::Error) => c.0 += 1,
                (FindingStatus::Active, Severity::Note) => c.1 += 1,
                (FindingStatus::Suppressed(_), _) => c.2 += 1,
            }
        }
        c
    }

    /// Renders rustc-style text diagnostics plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self
            .findings
            .iter()
            .filter(|f| f.status == FindingStatus::Active)
        {
            let level = match f.severity {
                Severity::Error => "error",
                Severity::Note => "note",
            };
            let _ = writeln!(
                out,
                "{}:{}:{}: {level}[{}/{}]: {}",
                f.file,
                f.line,
                f.col,
                f.analysis.id(),
                f.analysis.name(),
                f.message
            );
            if !f.snippet.is_empty() {
                let _ = writeln!(out, "    {}", f.snippet);
            }
        }
        let (errors, notes, suppressed) = self.counts();
        let _ = writeln!(
            out,
            "ripq-audit: {} error{} ({} note{}, {} suppressed) — {} crates, {} files scanned",
            errors,
            if errors == 1 { "" } else { "s" },
            notes,
            if notes == 1 { "" } else { "s" },
            suppressed,
            self.crates_scanned,
            self.files_scanned
        );
        out
    }

    /// Renders the whole report as a JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let (status, reason) = match &f.status {
                FindingStatus::Active => ("active", String::new()),
                FindingStatus::Suppressed(r) => ("suppressed", r.clone()),
            };
            let severity = match f.severity {
                Severity::Error => "error",
                Severity::Note => "note",
            };
            let _ = write!(
                out,
                "{}\n    {{\"analysis\": \"{}\", \"name\": \"{}\", \"severity\": \"{severity}\", \
                 \"file\": \"{}\", \"line\": {}, \"col\": {}, \"status\": \"{status}\", \
                 \"reason\": \"{}\", \"message\": \"{}\", \"snippet\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                f.analysis.id(),
                f.analysis.name(),
                esc(&f.file),
                f.line,
                f.col,
                esc(&reason),
                esc(&f.message),
                esc(&f.snippet)
            );
        }
        let (errors, notes, suppressed) = self.counts();
        let _ = write!(
            out,
            "\n  ],\n  \"errors\": {errors},\n  \"notes\": {notes},\n  \
             \"suppressed\": {suppressed},\n  \"crates_scanned\": {},\n  \
             \"files_scanned\": {}\n}}\n",
            self.crates_scanned, self.files_scanned
        );
        out
    }

    /// Renders SARIF 2.1.
    pub fn render_sarif(&self) -> String {
        sarif::render(self)
    }
}

/// JSON string escaping shared by the report renderers.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Runs the full audit over the workspace rooted at `root`.
pub fn run(root: &Path, opts: AuditOptions) -> Result<AuditReport, String> {
    let ws = workspace::scan(root)?;
    let mut findings = layering::check(&ws);
    let (a2, metrics_doc) = metrics::check(root, &ws);
    findings.extend(a2);
    findings.extend(determinism::check(&ws));
    let (a4, panic_counts) = panics::check(root, &ws);
    findings.extend(a4);

    // docs/METRICS.md drift: the committed doc must be exactly what the
    // registry generates.
    if !metrics_doc.is_empty() {
        let committed = fs::read_to_string(root.join(metrics::DOC_PATH)).unwrap_or_default();
        if committed != metrics_doc {
            findings.push(Finding {
                analysis: Analysis::MetricsRegistry,
                severity: if opts.check {
                    Severity::Error
                } else {
                    Severity::Note
                },
                file: metrics::DOC_PATH.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "{} has drifted from the registry — regenerate it with \
                     `cargo xtask audit --write-docs`",
                    metrics::DOC_PATH
                ),
                snippet: String::new(),
                status: FindingStatus::Active,
            });
        }
    }

    resolve_suppressions(root, &ws, &mut findings);
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.analysis.id()).cmp(&(&b.file, b.line, b.col, b.analysis.id()))
    });
    Ok(AuditReport {
        findings,
        crates_scanned: ws.crates.len(),
        files_scanned: ws.files_scanned,
        metrics_doc,
        panic_counts,
    })
}

/// Applies the shared suppression grammar: for findings anchored in
/// scanned Rust sources the parsed suppressions are used directly; for
/// manifest/registry files (`#` comments) the two candidate lines are
/// parsed on demand. A suppression without a reason does not suppress.
fn resolve_suppressions(root: &Path, ws: &workspace::Workspace, findings: &mut [Finding]) {
    let mut aux_cache: BTreeMap<String, Vec<Vec<crate::lint::source::Suppression>>> =
        BTreeMap::new();
    for finding in findings.iter_mut() {
        let candidates: Vec<crate::lint::source::Suppression> = if let Some(file) = ws
            .crates
            .iter()
            .flat_map(|c| c.files.iter())
            .find(|f| f.rel == finding.file)
        {
            [finding.line.checked_sub(1), finding.line.checked_sub(2)]
                .into_iter()
                .flatten()
                .filter_map(|idx| file.src.lines.get(idx))
                .flat_map(|l| l.suppressions.iter().cloned())
                .collect()
        } else {
            let lines = aux_cache.entry(finding.file.clone()).or_insert_with(|| {
                fs::read_to_string(root.join(&finding.file))
                    .unwrap_or_default()
                    .lines()
                    .map(|l| {
                        l.split_once('#')
                            .map(|(_, comment)| parse_suppressions(comment))
                            .unwrap_or_default()
                    })
                    .collect()
            });
            [finding.line.checked_sub(1), finding.line.checked_sub(2)]
                .into_iter()
                .flatten()
                .filter_map(|idx| lines.get(idx))
                .flat_map(|s| s.iter().cloned())
                .collect()
        };
        for s in candidates {
            if s.rule == finding.analysis.name() || s.rule == finding.analysis.id() {
                match s.reason {
                    Some(r) => {
                        finding.status = FindingStatus::Suppressed(r);
                        break;
                    }
                    None => finding.message.push_str(
                        " (a suppression comment was found but lacks the required \
                         ` -- reason`, so it does not apply)",
                    ),
                }
            }
        }
    }
    // Fill snippets for findings anchored in scanned sources.
    for finding in findings.iter_mut() {
        if finding.snippet.is_empty() {
            if let Some(file) = ws
                .crates
                .iter()
                .flat_map(|c| c.files.iter())
                .find(|f| f.rel == finding.file)
            {
                finding.snippet = file
                    .src
                    .lines
                    .get(finding.line - 1)
                    .map(|l| l.raw.trim().to_string())
                    .unwrap_or_default();
            }
        }
    }
}
