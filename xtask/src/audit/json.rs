//! A minimal JSON reader for the audit's two inputs: the panic-ratchet
//! baseline and `tests/fixtures/expected_metrics.json`.
//!
//! Both files are machine-written by this repository, so the parser only
//! has to be correct, not forgiving: objects, arrays, strings (with the
//! escapes our own writers emit), integers/floats, booleans and null.
//! It is hand-rolled because the build is hermetic — no serde_json.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys are name-ordered so traversal is
/// deterministic regardless of file order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; the baseline only holds small
    /// integer counts, far inside f64's exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&c| c as char),
            *pos
        )),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            other => {
                return Err(format!(
                    "expected `,` or `}}` at byte {}, found {:?}",
                    *pos,
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            other => {
                return Err(format!(
                    "expected `,` or `]` at byte {}, found {:?}",
                    *pos,
                    other.map(|&c| c as char)
                ))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        // Our writers only emit BMP control-character
                        // escapes, so no surrogate-pair handling.
                        let ch = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                }
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit()
            || bytes[*pos] == b'.'
            || bytes[*pos] == b'e'
            || bytes[*pos] == b'E'
            || bytes[*pos] == b'+'
            || bytes[*pos] == b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_shapes_we_read() {
        let v = parse(
            r#"{"schema": "x/v1", "crates": {"core": {"unwrap": 3, "ok": true}},
               "list": [1, 2.5, -4], "none": null, "s": "a\"b\\c\ndA"}"#,
        )
        .expect("parses");
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["schema"].as_str(), Some("x/v1"));
        let core = obj["crates"].as_obj().unwrap()["core"].as_obj().unwrap();
        assert_eq!(core["unwrap"].as_u64(), Some(3));
        assert_eq!(core["ok"], Value::Bool(true));
        assert_eq!(
            obj["list"],
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-4.0)])
        );
        assert_eq!(obj["s"].as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
