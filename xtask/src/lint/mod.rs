//! `cargo xtask lint` — the repo-specific static-analysis gate.
//!
//! Walks every workspace crate (vendored stand-ins under `vendor/` are
//! excluded — they are external code) and enforces the R1–R6 rules from
//! [`rules`]. Violations can be silenced two ways, both requiring a
//! written reason:
//!
//! * inline, for single sites: `// ripq-lint: allow(<rule-name>) -- reason`
//!   on the offending line or the line directly above it;
//! * the static [`allowlist`], for structural whole-file exemptions.
//!
//! The gate exits nonzero on any unsuppressed violation and is run both by
//! CI and by the tier-1 test `tests/lint_gate.rs`.

pub mod allowlist;
pub mod rules;
pub mod source;

use allowlist::{AllowEntry, ALLOWLIST};
use rules::{Hit, Rule};
use source::SourceFile;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose outputs are query results: R2/R5 apply here. `obs` is
/// included because metrics snapshots are result artifacts — golden
/// fixtures and determinism tests compare them byte-for-byte, so
/// iteration order and float hygiene matter as much as in query code.
const RESULT_PRODUCING: [&str; 5] = ["core", "pf", "graph", "symbolic", "obs"];

/// What happened to a candidate violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagStatus {
    /// Unsuppressed — fails the gate.
    Active,
    /// Silenced by an inline suppression with the given reason.
    Suppressed(String),
    /// Silenced by a static allowlist entry with the given reason.
    Allowlisted(&'static str),
}

/// One diagnostic produced by the gate.
#[derive(Debug)]
pub struct Diagnostic {
    /// Rule short id (`R1` … `R6`).
    pub rule_id: &'static str,
    /// Rule name (`no-nondeterminism` …).
    pub rule_name: &'static str,
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Explanation and remediation advice.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Suppression state.
    pub status: DiagStatus,
}

/// The result of one full lint pass.
#[derive(Debug)]
pub struct LintReport {
    /// Every diagnostic found, including suppressed ones, sorted by
    /// (file, line, column, rule).
    pub diags: Vec<Diagnostic>,
    /// Number of `.rs` files scanned with line rules.
    pub files_scanned: usize,
    /// Allowlist entries that matched nothing (stale — prune them).
    pub stale_allowlist: Vec<&'static AllowEntry>,
}

impl LintReport {
    /// Unsuppressed violations.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.status == DiagStatus::Active)
    }

    /// (active, suppressed, allowlisted) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diags {
            match d.status {
                DiagStatus::Active => c.0 += 1,
                DiagStatus::Suppressed(_) => c.1 += 1,
                DiagStatus::Allowlisted(_) => c.2 += 1,
            }
        }
        c
    }

    /// Renders rustc-style text diagnostics plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in self.active() {
            let _ = writeln!(
                out,
                "{}:{}:{}: error[{}/{}]: {}",
                d.file, d.line, d.col, d.rule_id, d.rule_name, d.message
            );
            let _ = writeln!(out, "    {}", d.snippet);
        }
        let (active, suppressed, allowed) = self.counts();
        for entry in &self.stale_allowlist {
            let _ = writeln!(
                out,
                "note: stale allowlist entry matched nothing: ({}, {})",
                entry.rule, entry.path_prefix
            );
        }
        let _ = writeln!(
            out,
            "ripq-lint: {} violation{} ({} suppressed, {} allowlisted) — {} files scanned",
            active,
            if active == 1 { "" } else { "s" },
            suppressed,
            allowed,
            self.files_scanned
        );
        out
    }

    /// Renders the whole report as a JSON object (machine-readable mode).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            let (status, reason) = match &d.status {
                DiagStatus::Active => ("active", String::new()),
                DiagStatus::Suppressed(r) => ("suppressed", r.clone()),
                DiagStatus::Allowlisted(r) => ("allowlisted", (*r).to_string()),
            };
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"col\": {}, \"status\": \"{}\", \"reason\": \"{}\", \
                 \"message\": \"{}\", \"snippet\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                d.rule_id,
                d.rule_name,
                esc(&d.file),
                d.line,
                d.col,
                status,
                esc(&reason),
                esc(&d.message),
                esc(&d.snippet)
            );
        }
        let (active, suppressed, allowed) = self.counts();
        let _ = write!(
            out,
            "\n  ],\n  \"active\": {active},\n  \"suppressed\": {suppressed},\n  \
             \"allowlisted\": {allowed},\n  \"files_scanned\": {}\n}}\n",
            self.files_scanned
        );
        out
    }
}

/// A workspace crate subject to linting.
struct CrateTarget {
    /// Directory name used for rule scoping (`core`, `pf`, …; the root
    /// package is `.`, the automation crate `xtask`).
    name: String,
    /// Crate directory, relative to the workspace root.
    dir: PathBuf,
}

/// Locates the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// diagnostic order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel_unix(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Enumerates the lintable workspace crates: the root package, every
/// directory under `crates/`, and `xtask`. `vendor/` is excluded — those
/// are offline stand-ins for external dependencies, not our code.
fn crate_targets(root: &Path) -> Vec<CrateTarget> {
    let mut targets = vec![CrateTarget {
        name: ".".to_string(),
        dir: PathBuf::new(),
    }];
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
            .collect();
        dirs.sort();
        for d in dirs {
            let name = d
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            targets.push(CrateTarget {
                name,
                dir: PathBuf::from("crates").join(d.file_name().unwrap_or_default()),
            });
        }
    }
    if root.join("xtask/Cargo.toml").exists() {
        targets.push(CrateTarget {
            name: "xtask".to_string(),
            dir: PathBuf::from("xtask"),
        });
    }
    targets
}

/// Runs the line rules configured for `crate_name` over one parsed file.
pub fn lint_file(crate_name: &str, file: &SourceFile) -> Vec<(&'static Rule, Hit)> {
    let mut hits: Vec<(&'static Rule, Hit)> = Vec::new();
    // The automation crate itself is tooling: it reads arbitrary files and
    // reports to a terminal, so the server-oriented line rules don't apply
    // (R4 hygiene still does).
    if crate_name == "xtask" {
        return hits;
    }
    if crate_name != "bench" {
        for h in rules::check_no_nondeterminism(file) {
            hits.push((&rules::NO_NONDETERMINISM, h));
        }
    }
    for h in rules::check_no_panic_paths(file) {
        hits.push((&rules::NO_PANIC_PATHS, h));
    }
    for h in rules::check_atomic_persistence(file) {
        hits.push((&rules::ATOMIC_PERSISTENCE, h));
    }
    if RESULT_PRODUCING.contains(&crate_name) {
        for h in rules::check_ordered_iteration(file) {
            hits.push((&rules::ORDERED_ITERATION, h));
        }
        for h in rules::check_prob_hygiene(file) {
            hits.push((&rules::PROB_HYGIENE, h));
        }
    }
    hits
}

/// Resolves a candidate hit against inline suppressions (same line or the
/// line directly above) and the static allowlist.
fn resolve_status(
    rule: &Rule,
    file: &SourceFile,
    rel_path: &str,
    line: usize,
    allow_hits: &mut [bool],
) -> (DiagStatus, bool) {
    let mut missing_reason = false;
    for idx in [Some(line - 1), line.checked_sub(2)].into_iter().flatten() {
        if let Some(l) = file.lines.get(idx) {
            for s in &l.suppressions {
                if s.rule == rule.name || s.rule == rule.id {
                    match &s.reason {
                        Some(r) => return (DiagStatus::Suppressed(r.clone()), false),
                        None => missing_reason = true,
                    }
                }
            }
        }
    }
    for (i, entry) in ALLOWLIST.iter().enumerate() {
        if (entry.rule == rule.name || entry.rule == rule.id)
            && rel_path.starts_with(entry.path_prefix)
        {
            allow_hits[i] = true;
            return (DiagStatus::Allowlisted(entry.reason), false);
        }
    }
    (DiagStatus::Active, missing_reason)
}

/// Runs the full gate over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<LintReport, String> {
    let root_manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read workspace Cargo.toml: {e}"))?;
    let workspace_lints_ok = rules::workspace_lints_defined(&root_manifest);

    let mut diags = Vec::new();
    let mut files_scanned = 0usize;
    let mut allow_hits = vec![false; ALLOWLIST.len()];

    for target in crate_targets(root) {
        let crate_dir = root.join(&target.dir);
        // R4: crate hygiene.
        let manifest_path = crate_dir.join("Cargo.toml");
        let manifest = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let root_src_path = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| crate_dir.join(p))
            .find(|p| p.exists());
        let root_src = root_src_path
            .as_ref()
            .and_then(|p| fs::read_to_string(p).ok());
        for problem in
            rules::check_crate_hygiene(&manifest, root_src.as_deref(), workspace_lints_ok)
        {
            diags.push(Diagnostic {
                rule_id: rules::CRATE_HYGIENE.id,
                rule_name: rules::CRATE_HYGIENE.name,
                file: rel_unix(root, &manifest_path),
                line: 1,
                col: 1,
                message: problem,
                snippet: String::new(),
                status: DiagStatus::Active,
            });
        }

        // Line rules over the crate's library sources.
        for path in rust_files(&crate_dir.join("src")) {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let file = SourceFile::parse(&text);
            let rel = rel_unix(root, &path);
            files_scanned += 1;
            for (rule, hit) in lint_file(&target.name, &file) {
                let (status, missing_reason) =
                    resolve_status(rule, &file, &rel, hit.line, &mut allow_hits);
                let mut message = hit.message;
                if missing_reason {
                    message.push_str(
                        " (a suppression comment was found but lacks the required \
                         ` -- reason`, so it does not apply)",
                    );
                }
                let snippet = file
                    .lines
                    .get(hit.line - 1)
                    .map(|l| l.raw.trim().to_string())
                    .unwrap_or_default();
                diags.push(Diagnostic {
                    rule_id: rule.id,
                    rule_name: rule.name,
                    file: rel.clone(),
                    line: hit.line,
                    col: hit.col,
                    message,
                    snippet,
                    status,
                });
            }
        }
    }

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule_id).cmp(&(&b.file, b.line, b.col, b.rule_id))
    });
    let stale_allowlist = ALLOWLIST
        .iter()
        .enumerate()
        .filter(|(i, _)| !allow_hits[*i])
        .map(|(_, e)| e)
        .collect();
    Ok(LintReport {
        diags,
        files_scanned,
        stale_allowlist,
    })
}
