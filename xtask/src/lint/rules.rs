//! The rule catalogue (R1–R6) and their token-level implementations.
//!
//! Every rule reports *candidate* violations as `(line, column, message)`
//! triples over a scanned [`SourceFile`]; suppression comments and the
//! static allowlist are applied by the orchestrator in [`crate::lint`].

use super::source::SourceFile;

/// A lint rule: stable short id, human name, one-line rationale.
#[derive(Debug, PartialEq, Eq)]
pub struct Rule {
    /// Stable short id, e.g. `R1`.
    pub id: &'static str,
    /// Name used in diagnostics and `allow(...)` comments.
    pub name: &'static str,
    /// One-line rationale shown by `cargo xtask rules`.
    pub summary: &'static str,
}

/// R1 — no ambient nondeterminism in library code.
pub const NO_NONDETERMINISM: Rule = Rule {
    id: "R1",
    name: "no-nondeterminism",
    summary: "ban thread_rng/from_entropy/SystemTime::now/Instant::now in library crates; \
              randomness must flow from a seed, time from a caller or ripq-core's Clock",
};

/// R2 — no unordered hash iteration in result-producing crates.
pub const ORDERED_ITERATION: Rule = Rule {
    id: "R2",
    name: "ordered-iteration",
    summary: "HashMap/HashSet iteration order can leak into results and float sums; \
              use BTreeMap/BTreeSet or sort immediately after",
};

/// R3 — no panic paths in non-test library code.
pub const NO_PANIC_PATHS: Rule = Rule {
    id: "R3",
    name: "no-panic-paths",
    summary: "unwrap()/expect()/panic! can take down a long-running query server; \
              propagate RipqError or handle the case deterministically",
};

/// R4 — crate-level hygiene attributes.
pub const CRATE_HYGIENE: Rule = Rule {
    id: "R4",
    name: "crate-hygiene",
    summary: "every crate must forbid unsafe_code and lint missing_docs, either via \
              crate-root attributes or the workspace [lints] table",
};

/// R5 — probability hygiene.
pub const PROB_HYGIENE: Rule = Rule {
    id: "R5",
    name: "prob-hygiene",
    summary: "no exact float equality against probability-carrying values and no lossy \
              casts of probabilities",
};

/// R6 — atomic persistence.
pub const ATOMIC_PERSISTENCE: Rule = Rule {
    id: "R6",
    name: "atomic-persistence",
    summary: "no raw `fs::write`/`File::create` in library code; durable state must go \
              through ripq-persist's temp-file + rename path so a crash never leaves a \
              torn file behind",
};

/// All rules, in id order.
pub const ALL_RULES: [&Rule; 6] = [
    &NO_NONDETERMINISM,
    &ORDERED_ITERATION,
    &NO_PANIC_PATHS,
    &CRATE_HYGIENE,
    &PROB_HYGIENE,
    &ATOMIC_PERSISTENCE,
];

/// A candidate violation inside one file (1-based line, 1-based column).
#[derive(Debug)]
pub struct Hit {
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    /// Human-readable description of what was matched and what to do.
    pub message: String,
}

// ---------------------------------------------------------------------------
// Shared token scanning helpers
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte positions where `token` occurs in `code` with identifier boundaries
/// on both sides. `token` itself may contain `::`.
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let tlen = token.len();
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let start = from + rel;
        let end = start + tlen;
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// A lexed token: identifier/number text or a punctuation chunk, plus its
/// byte offset in the line.
#[derive(Debug, PartialEq)]
pub(crate) enum Tok<'a> {
    Ident(&'a str, usize),
    Num(&'a str, usize),
    Punct(&'a str, usize),
}

/// Lexes one scrubbed code line into identifier, number and punctuation
/// tokens. `==` and `!=` are kept as single tokens; every other
/// punctuation byte stands alone. Shared with the `audit` analyses.
pub(crate) fn lex(code: &str) -> Vec<Tok<'_>> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            toks.push(Tok::Ident(&code[start..i], start));
        } else if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
            // Fractional part — but not a `..` range operator.
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            toks.push(Tok::Num(&code[start..i], start));
        } else if (b == b'=' || b == b'!') && i + 1 < bytes.len() && bytes[i + 1] == b'=' {
            toks.push(Tok::Punct(&code[i..i + 2], i));
            i += 2;
        } else {
            toks.push(Tok::Punct(&code[i..i + 1], i));
            i += 1;
        }
    }
    toks
}

fn is_float_literal(text: &str) -> bool {
    text.contains('.')
}

// ---------------------------------------------------------------------------
// R1 — no-nondeterminism
// ---------------------------------------------------------------------------

const R1_TOKENS: [(&str, &str); 4] = [
    (
        "thread_rng",
        "ambient OS-seeded RNG; derive an explicit `StdRng` stream from the system seed instead",
    ),
    (
        "from_entropy",
        "OS-entropy RNG construction; seed explicitly (`SeedableRng::seed_from_u64`) instead",
    ),
    (
        "SystemTime::now",
        "wall-clock read; take the timestamp as an input parameter instead",
    ),
    (
        "Instant::now",
        "monotonic clock read; use `ripq_core::Clock` (TimingMode-aware) or take time as input",
    ),
];

/// R1: flags ambient randomness / time sources in non-test code.
pub fn check_no_nondeterminism(file: &SourceFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (token, advice) in R1_TOKENS {
            for pos in token_positions(&line.code, token) {
                hits.push(Hit {
                    line: idx + 1,
                    col: pos + 1,
                    message: format!("`{token}` in library code — {advice}"),
                });
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// R2 — ordered-iteration
// ---------------------------------------------------------------------------

/// Iteration methods whose visit order is the hash order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// Collects identifiers bound to `HashMap`/`HashSet` in this file: `let`
/// bindings, struct fields and typed parameters whose type (or
/// initializer) *starts* with one of the hash containers. Nested
/// containers (`Vec<Mutex<HashMap…>>`) are deliberately not collected —
/// iterating the outer container is order-stable.
pub(crate) fn hash_container_names(file: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for line in &file.lines {
        let toks = lex(&line.code);
        for w in 0..toks.len() {
            let container = match toks[w] {
                Tok::Ident(t @ ("HashMap" | "HashSet"), _) => t,
                _ => continue,
            };
            let _ = container;
            if w < 2 {
                continue;
            }
            // `name: HashMap<…>` (field/param/let-with-type) or
            // `name = HashMap::new()` (inferred let binding).
            let sep = matches!(toks[w - 1], Tok::Punct(":" | "=", _));
            if !sep {
                continue;
            }
            if let Tok::Ident(name, _) = toks[w - 2] {
                if name != "mut" && !names.iter().any(|n| n == name) {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

/// Does any of the lines `i..i+window` contain an explicit reordering
/// (sort call or collection into an ordered container)?
pub(crate) fn sorted_nearby(file: &SourceFile, idx: usize) -> bool {
    file.lines[idx..file.lines.len().min(idx + 3)]
        .iter()
        .any(|l| {
            l.code.contains(".sort") || l.code.contains("BTreeMap") || l.code.contains("BTreeSet")
        })
}

/// R2: flags iteration over identifiers bound to hash containers, unless
/// an explicit sort follows within two lines.
pub fn check_ordered_iteration(file: &SourceFile) -> Vec<Hit> {
    let names = hash_container_names(file);
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let toks = lex(&line.code);
        for w in 0..toks.len() {
            // `name.iter()` / `self.name.keys()` …
            if let Tok::Ident(method, mpos) = toks[w] {
                if ITER_METHODS.contains(&method)
                    && w >= 2
                    && matches!(toks[w - 1], Tok::Punct(".", _))
                {
                    if let Tok::Ident(recv, _) = toks[w - 2] {
                        if names.iter().any(|n| n == recv) && !sorted_nearby(file, idx) {
                            hits.push(Hit {
                                line: idx + 1,
                                col: mpos + 1,
                                message: format!(
                                    "`{recv}.{method}()` iterates a hash container in \
                                     result-producing code — hash order can leak into results \
                                     (or float-sum rounding); use BTreeMap/BTreeSet or sort \
                                     the collected output"
                                ),
                            });
                        }
                    }
                }
            }
            // `for x in &name { … }` / `for x in &self.name { … }`
            if let Tok::Ident("in", _) = toks[w] {
                let mut v = w + 1;
                while v < toks.len()
                    && matches!(toks[v], Tok::Punct("&" | "(", _) | Tok::Ident("mut", _))
                {
                    v += 1;
                }
                if matches!(toks.get(v), Some(Tok::Ident("self", _)))
                    && matches!(toks.get(v + 1), Some(Tok::Punct(".", _)))
                {
                    v += 2;
                }
                if let Some(Tok::Ident(recv, rpos)) = toks.get(v) {
                    let followed_by_call = matches!(toks.get(v + 1), Some(Tok::Punct(".", _)));
                    if names.iter().any(|n| n == recv)
                        && !followed_by_call
                        && !sorted_nearby(file, idx)
                    {
                        hits.push(Hit {
                            line: idx + 1,
                            col: rpos + 1,
                            message: format!(
                                "`for … in {recv}` iterates a hash container in \
                                 result-producing code — hash order can leak into results; \
                                 use BTreeMap/BTreeSet or sort the collected output"
                            ),
                        });
                    }
                }
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// R3 — no-panic-paths
// ---------------------------------------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// R3: flags `.unwrap()` / `.expect(…)` / panicking macros in non-test
/// code. `unwrap_or*` and `expect_err`-style identifiers do not match.
pub fn check_no_panic_paths(file: &SourceFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let toks = lex(&line.code);
        for w in 0..toks.len() {
            let (name, pos) = match toks[w] {
                Tok::Ident(n, p) => (n, p),
                _ => continue,
            };
            let after_dot = w >= 1 && matches!(toks[w - 1], Tok::Punct(".", _));
            let called = matches!(toks.get(w + 1), Some(Tok::Punct("(", _)));
            let is_macro = matches!(toks.get(w + 1), Some(Tok::Punct("!", _)));
            if after_dot && called && (name == "unwrap" || name == "expect") {
                hits.push(Hit {
                    line: idx + 1,
                    col: pos + 1,
                    message: format!(
                        "`.{name}(…)` in library code can panic a long-running query server — \
                         propagate `RipqError`, use a deterministic fallback, or suppress with \
                         a written invariant"
                    ),
                });
            } else if is_macro && PANIC_MACROS.contains(&name) {
                hits.push(Hit {
                    line: idx + 1,
                    col: pos + 1,
                    message: format!(
                        "`{name}!` in library code can panic a long-running query server — \
                         return `RipqError` instead"
                    ),
                });
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// R4 — crate-hygiene
// ---------------------------------------------------------------------------

/// Does this crate manifest opt into the workspace `[lints]` table?
pub fn manifest_inherits_workspace_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && line.starts_with("workspace") && line.contains('=') && line.contains("true")
        {
            return true;
        }
    }
    false
}

/// Does the workspace root manifest define `[workspace.lints.rust]` with
/// `unsafe_code` and `missing_docs` entries?
pub fn workspace_lints_defined(root_manifest: &str) -> bool {
    let mut in_section = false;
    let (mut saw_unsafe, mut saw_docs) = (false, false);
    for line in root_manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_section = line == "[workspace.lints.rust]";
            continue;
        }
        if in_section {
            if line.starts_with("unsafe_code") {
                saw_unsafe = true;
            }
            if line.starts_with("missing_docs") {
                saw_docs = true;
            }
        }
    }
    saw_unsafe && saw_docs
}

/// R4: checks one crate's hygiene. `root_src` is the crate root source
/// (`lib.rs` / `main.rs`), if it exists.
pub fn check_crate_hygiene(
    manifest: &str,
    root_src: Option<&str>,
    workspace_lints_ok: bool,
) -> Vec<String> {
    if manifest_inherits_workspace_lints(manifest) {
        if workspace_lints_ok {
            return Vec::new();
        }
        return vec![
            "crate inherits `[lints] workspace = true` but the workspace root defines no \
             `[workspace.lints.rust]` table with `unsafe_code` and `missing_docs`"
                .to_string(),
        ];
    }
    let src = root_src.unwrap_or("");
    let mut problems = Vec::new();
    if !src.contains("#![forbid(unsafe_code)]") {
        problems.push(
            "missing `#![forbid(unsafe_code)]` at the crate root (or `[lints] workspace = true` \
             in the crate manifest)"
                .to_string(),
        );
    }
    if !src.contains("#![deny(missing_docs)]") && !src.contains("#![warn(missing_docs)]") {
        problems.push(
            "missing `#![deny(missing_docs)]` / `#![warn(missing_docs)]` at the crate root (or \
             `[lints] workspace = true` in the crate manifest)"
                .to_string(),
        );
    }
    problems
}

// ---------------------------------------------------------------------------
// R5 — prob-hygiene
// ---------------------------------------------------------------------------

/// Is this identifier probability-carrying by naming convention?
fn prob_like(name: &str) -> bool {
    name.contains("prob")
        || name.starts_with("p_")
        || matches!(
            name,
            "p" | "pa" | "pb" | "pw" | "threshold" | "weight" | "mass"
        )
}

const LOSSY_CAST_TARGETS: [&str; 11] = [
    "f32", "i8", "i16", "i32", "i64", "isize", "u8", "u16", "u32", "u64", "usize",
];

/// R5: flags exact float (in)equality against probability-carrying values
/// and lossy `as` casts of probabilities.
pub fn check_prob_hygiene(file: &SourceFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let toks = lex(&line.code);
        for w in 0..toks.len() {
            match toks[w] {
                Tok::Punct(op @ ("==" | "!="), pos) => {
                    let lhs_prob = match w.checked_sub(1).map(|i| &toks[i]) {
                        Some(Tok::Ident(n, _)) => prob_like(n),
                        // `….probability(o) == lit` — closing paren: fall back
                        // to a line-level check for a probability accessor.
                        Some(Tok::Punct(")", _)) => line.code.contains("probability("),
                        _ => false,
                    };
                    let rhs = toks.get(w + 1);
                    let rhs_float = matches!(rhs, Some(Tok::Num(n, _)) if is_float_literal(n));
                    let lhs_float = matches!(w.checked_sub(1).map(|i| &toks[i]),
                                             Some(Tok::Num(n, _)) if is_float_literal(n));
                    let rhs_prob = matches!(rhs, Some(Tok::Ident(n, _)) if prob_like(n));
                    if (lhs_prob && rhs_float) || (lhs_float && rhs_prob) {
                        hits.push(Hit {
                            line: idx + 1,
                            col: pos + 1,
                            message: format!(
                                "exact `{op}` comparison between a probability and a float \
                                 literal — probabilities are accumulated floats; compare with \
                                 an epsilon or restructure, or suppress with a written reason"
                            ),
                        });
                    }
                }
                Tok::Ident("as", pos) => {
                    let src_prob = matches!(w.checked_sub(1).map(|i| &toks[i]),
                                            Some(Tok::Ident(n, _)) if prob_like(n));
                    let lossy = matches!(toks.get(w + 1),
                                         Some(Tok::Ident(t, _)) if LOSSY_CAST_TARGETS.contains(t));
                    if src_prob && lossy {
                        hits.push(Hit {
                            line: idx + 1,
                            col: pos + 1,
                            message: "lossy `as` cast of a probability-carrying value — keep \
                                      probabilities in f64 end to end"
                                .to_string(),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// R6 — atomic-persistence
// ---------------------------------------------------------------------------

const R6_TOKENS: [(&str, &str); 2] = [
    (
        "fs::write",
        "a single-call overwrite is torn by a crash mid-write; stage the bytes to a \
         sibling temp file and rename, i.e. `ripq_persist::write_atomic`",
    ),
    (
        "File::create",
        "truncates the destination before the new bytes land, so a crash loses both \
         the old and the new state; stage to a temp file and rename, i.e. \
         `ripq_persist::write_atomic`",
    ),
];

/// R6: flags non-atomic file writes (`fs::write`, `File::create`) in
/// non-test code. Checkpoint/snapshot state must survive a crash at any
/// byte, which a plain overwrite cannot guarantee.
pub fn check_atomic_persistence(file: &SourceFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (token, advice) in R6_TOKENS {
            for pos in token_positions(&line.code, token) {
                hits.push(Hit {
                    line: idx + 1,
                    col: pos + 1,
                    message: format!("`{token}` in library code — {advice}"),
                });
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(src)
    }

    #[test]
    fn token_boundaries() {
        assert_eq!(token_positions("thread_rng()", "thread_rng").len(), 1);
        assert_eq!(token_positions("my_thread_rng()", "thread_rng").len(), 0);
        assert_eq!(token_positions("Instant::now()", "Instant::now").len(), 1);
        assert_eq!(token_positions("MyInstant::now()", "Instant::now").len(), 0);
    }

    #[test]
    fn r1_ignores_comments_and_tests() {
        let f = parse("// thread_rng in comment\nfn f() { let r = thread_rng(); }\n");
        assert_eq!(check_no_nondeterminism(&f).len(), 1);
        let f = parse("#[cfg(test)]\nmod t { fn f() { let r = thread_rng(); } }\n");
        assert!(check_no_nondeterminism(&f).is_empty());
    }

    #[test]
    fn r2_detects_declared_containers_only() {
        let f = parse("let m: HashMap<u32, f64> = HashMap::new();\nfor v in m.values() {}\n");
        assert_eq!(check_ordered_iteration(&f).len(), 1);
        let f = parse("let v: Vec<u32> = vec![];\nfor x in v.iter() { }\n");
        assert!(check_ordered_iteration(&f).is_empty());
    }

    #[test]
    fn r2_sort_window_exempts() {
        let f = parse(
            "let m: HashMap<u32, f64> = HashMap::new();\n\
             let mut v: Vec<_> = m.iter().collect();\n\
             v.sort();\n",
        );
        assert!(check_ordered_iteration(&f).is_empty());
    }

    #[test]
    fn r3_matches_panics_not_fallbacks() {
        let f = parse("let x = o.unwrap();\nlet y = o.unwrap_or(0);\nlet z = o.expect(\"m\");\n");
        assert_eq!(check_no_panic_paths(&f).len(), 2);
        let f = parse("panic!(\"boom\");\nassert!(x > 0);\n");
        assert_eq!(check_no_panic_paths(&f).len(), 1);
    }

    #[test]
    fn r4_accepts_attrs_or_inheritance() {
        let attrs = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";
        assert!(check_crate_hygiene("[package]\nname = \"x\"", Some(attrs), false).is_empty());
        let inherit = "[package]\nname = \"x\"\n[lints]\nworkspace = true\n";
        assert!(check_crate_hygiene(inherit, None, true).is_empty());
        assert_eq!(check_crate_hygiene(inherit, None, false).len(), 1);
        assert_eq!(
            check_crate_hygiene("[package]\nname = \"x\"", Some(""), true).len(),
            2
        );
    }

    #[test]
    fn r6_flags_raw_writes_not_reads_or_tests() {
        let f = parse(
            "let _ = std::fs::write(&path, &bytes);\n\
             let f = std::fs::File::create(&path);\n\
             let text = std::fs::read_to_string(&path);\n",
        );
        assert_eq!(check_atomic_persistence(&f).len(), 2);
        // Identifier boundaries: `my_fs::write`-style lookalikes don't match.
        let f = parse("other_fs::write(&path, b\"x\");\nMyFile::create(&path);\n");
        assert!(check_atomic_persistence(&f).is_empty());
        // Test code is exempt — fixtures and corruption-planting are fine.
        let f = parse("#[cfg(test)]\nmod t { fn f() { std::fs::write(&p, b\"x\").unwrap(); } }\n");
        assert!(check_atomic_persistence(&f).is_empty());
    }

    #[test]
    fn r5_flags_exact_equality_and_lossy_casts() {
        let f = parse("if p != 0.0 { }\nif weight == 1.0 { }\nif offset == 0.0 { }\n");
        assert_eq!(check_prob_hygiene(&f).len(), 2);
        let f = parse("let q = prob as f32;\nlet r = count as f64;\n");
        assert_eq!(check_prob_hygiene(&f).len(), 1);
        // Threshold *ordering* comparisons are fine.
        let f = parse("if prob >= threshold { }\n");
        assert!(check_prob_hygiene(&f).is_empty());
    }
}
