//! The static, per-rule allowlist.
//!
//! Entries exempt whole files (by path prefix) from one rule, and every
//! entry must carry a written reason — this is the "justified residue"
//! left after the burn-down, reviewed like code. Prefer an inline
//! `// ripq-lint: allow(<rule>) -- reason` suppression for single sites;
//! use an allowlist entry only when a file's exemption is structural
//! (e.g. a benchmark harness whose whole purpose is wall-clock timing).
//!
//! Entries that match no diagnostic are reported by `cargo xtask lint` so
//! stale exemptions get pruned.

/// One allowlist entry: `rule` (rule *name*, e.g. `no-panic-paths`)
/// exempted for every file whose workspace-relative path starts with
/// `path_prefix`.
#[derive(Debug)]
pub struct AllowEntry {
    /// Rule name the entry applies to.
    pub rule: &'static str,
    /// Workspace-relative path prefix (unix separators).
    pub path_prefix: &'static str,
    /// Why this exemption is sound. Required.
    pub reason: &'static str,
}

/// The workspace allowlist. Keep this SHORT — every entry is debt.
pub const ALLOWLIST: &[AllowEntry] = &[
    AllowEntry {
        rule: "no-panic-paths",
        path_prefix: "src/bin/",
        reason: "CLI entry point: fail-fast process exit on malformed arguments/IO is the \
                 intended behavior, not a server panic path",
    },
    AllowEntry {
        rule: "no-panic-paths",
        path_prefix: "crates/bench/src/",
        reason: "benchmark/experiment harness: panicking on invalid experiment configs is \
                 acceptable in dev tooling that never serves queries",
    },
    AllowEntry {
        rule: "no-panic-paths",
        path_prefix: "crates/graph/src/",
        reason: "graph construction and traversal unwraps encode topology invariants \
                 (endpoints exist, binary-searched offsets are in range) established at \
                 build time and exercised by the cross-crate test suite; threading \
                 RipqError through Dijkstra inner loops would cost clarity for \
                 unreachable branches",
    },
    AllowEntry {
        rule: "no-panic-paths",
        path_prefix: "crates/rfid/src/",
        reason: "reader deployment and episode bookkeeping run at system construction / \
                 ingest time, before any query is served; failing fast on a malformed \
                 deployment or an impossible episode transition is the intended behavior",
    },
    AllowEntry {
        rule: "no-panic-paths",
        path_prefix: "crates/sim/src/",
        reason: "simulation and visualization tooling, not the query-serving path; most \
                 hits are fmt::Write into a String, which is infallible",
    },
    AllowEntry {
        rule: "atomic-persistence",
        path_prefix: "src/bin/",
        reason: "CLI report artifacts (plan/trace SVGs, metrics JSON) are regenerated on \
                 demand from a deterministic run; a torn write is visible and rerun by \
                 the user, never recovered from — checkpoint snapshots go through \
                 ripq-persist's atomic path instead",
    },
    AllowEntry {
        rule: "no-panic-paths",
        path_prefix: "crates/symbolic/src/",
        reason: "symbolic-model cell graphs are built once from a validated floor plan; \
                 the unwraps assert construction-time invariants (every door joins two \
                 known cells)",
    },
];
