//! A lossy, line-oriented model of a Rust source file.
//!
//! The lint rules are token-level, not AST-level: they need to know what
//! text is *code* (as opposed to comments and string-literal contents),
//! which lines belong to `#[cfg(test)]` regions, and which suppression
//! comments are in force. This module computes exactly that with a small
//! hand-rolled scanner — no syn, no proc-macro machinery — because the
//! build environment is hermetic and the rules only ever match identifier
//! tokens and simple punctuation patterns.
//!
//! Known (accepted) approximations, chosen to keep the scanner dependency
//! free and obviously correct:
//!
//! * char literals containing `'{'`/`'}'` are scrubbed, so they cannot
//!   corrupt brace tracking; lifetimes are passed through as code;
//! * a `#[cfg(test)]` attribute marks everything up to the end of the
//!   brace block that follows it (the idiomatic trailing `mod tests`
//!   layout), or up to a `;` for non-block items;
//! * doc comments count as comments — code inside ``` fences is never
//!   linted (rustdoc examples are test code in spirit).

/// One parsed suppression, from a comment of the form
/// `ripq-lint: allow(rule-a, rule-b) -- reason text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule name inside `allow(...)`, e.g. `no-panic-paths`.
    pub rule: String,
    /// The justification after ` -- `. A suppression without a reason does
    /// **not** suppress — the gate requires every exception to be written
    /// down.
    pub reason: Option<String>,
}

/// One line of a scanned source file.
#[derive(Debug)]
pub struct Line {
    /// The line exactly as it appears in the file.
    pub raw: String,
    /// The line with comments and string/char-literal *contents* replaced
    /// by spaces. Byte offsets are preserved, so a match column in `code`
    /// is a match column in `raw`.
    pub code: String,
    /// Concatenated comment text of the line (line + block comments).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Suppressions declared on this line's comment.
    pub suppressions: Vec<Suppression>,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// The scanned lines, in file order.
    pub lines: Vec<Line>,
}

/// Scanner state that persists across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Plain code.
    Code,
    /// Inside a (nesting) block comment.
    Block(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string literal closed by `"` + n `#`s.
    RawStr(u8),
}

impl SourceFile {
    /// Scans `text` into lines with code/comment separation, test-region
    /// marking and suppression extraction.
    pub fn parse(text: &str) -> SourceFile {
        let mut state = State::Code;
        let mut lines = Vec::new();
        for raw in text.lines() {
            let (code, comment, next) = scrub_line(raw, state);
            state = next;
            let suppressions = parse_suppressions(&comment);
            lines.push(Line {
                raw: raw.to_string(),
                code,
                comment,
                in_test: false,
                suppressions,
            });
        }
        mark_test_regions(&mut lines);
        SourceFile { lines }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Was the `"` at byte `i` preceded by a raw-string intro (`r`, `br`,
/// `r#...#`)? Returns the number of `#`s.
fn raw_string_intro(bytes: &[u8], i: usize) -> Option<u8> {
    let mut j = i;
    let mut hashes = 0u8;
    while j > 0 && bytes[j - 1] == b'#' {
        j -= 1;
        hashes = hashes.saturating_add(1);
    }
    if j == 0 || bytes[j - 1] != b'r' {
        return None;
    }
    j -= 1;
    if j > 0 && bytes[j - 1] == b'b' {
        j -= 1;
    }
    // `r` must start the identifier (`var"` / `har#"` are not raw strings).
    if j > 0 && is_ident_byte(bytes[j - 1]) {
        return None;
    }
    Some(hashes)
}

/// Scrubs one line: returns (code-with-blanks, comment text, next state).
fn scrub_line(raw: &str, mut state: State) -> (String, String, State) {
    let bytes = raw.as_bytes();
    let n = bytes.len();
    let mut code = vec![b' '; n];
    let mut comment: Vec<u8> = Vec::new();
    let mut i = 0;
    while i < n {
        match state {
            State::Block(depth) => {
                if bytes[i..].starts_with(b"*/") {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else if bytes[i..].starts_with(b"/*") {
                    state = State::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(bytes[i]);
                    i += 1;
                }
            }
            State::Str => {
                if bytes[i] == b'\\' {
                    i += 2; // skip the escaped byte (may run past end: ok)
                } else if bytes[i] == b'"' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(h) => {
                let h = h as usize;
                if bytes[i] == b'"'
                    && bytes[i + 1..].len() >= h
                    && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                {
                    state = State::Code;
                    i += 1 + h;
                } else {
                    i += 1;
                }
            }
            State::Code => {
                if bytes[i..].starts_with(b"//") {
                    comment.extend_from_slice(&bytes[i + 2..]);
                    i = n;
                } else if bytes[i..].starts_with(b"/*") {
                    state = State::Block(1);
                    i += 2;
                } else if bytes[i] == b'"' {
                    state = match raw_string_intro(bytes, i) {
                        Some(h) => State::RawStr(h),
                        None => State::Str,
                    };
                    i += 1;
                } else if bytes[i] == b'\'' {
                    // Char literal vs lifetime.
                    if i + 1 < n && bytes[i + 1] == b'\\' {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 3;
                        while j < n && bytes[j] != b'\'' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if i + 2 < n && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
                        i += 3; // 'x'
                    } else {
                        code[i] = b'\''; // lifetime: keep as code
                        i += 1;
                    }
                } else {
                    code[i] = bytes[i];
                    i += 1;
                }
            }
        }
    }
    (
        String::from_utf8_lossy(&code).into_owned(),
        String::from_utf8_lossy(&comment).into_owned(),
        state,
    )
}

/// Extracts `ripq-lint: allow(rule, ...) -- reason` suppressions from one
/// line's comment text.
pub fn parse_suppressions(comment: &str) -> Vec<Suppression> {
    const MARKER: &str = "ripq-lint:";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(MARKER) {
        let after = rest[pos + MARKER.len()..].trim_start();
        if let Some(args) = after.strip_prefix("allow(") {
            if let Some(close) = args.find(')') {
                let reason = args[close + 1..]
                    .trim_start()
                    .strip_prefix("--")
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty());
                for rule in args[..close].split(',') {
                    let rule = rule.trim();
                    if !rule.is_empty() {
                        out.push(Suppression {
                            rule: rule.to_string(),
                            reason: reason.clone(),
                        });
                    }
                }
            }
        }
        rest = &rest[pos + MARKER.len()..];
    }
    out
}

/// Marks lines belonging to `#[cfg(test)]` / `#[test]` regions by tracking
/// brace depth over the scrubbed code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Depths at which an active test region was opened.
    let mut regions: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("#[cfg(all(test")
            || line.code.contains("#[cfg(any(test")
            || line.code.contains("#[test]")
        {
            pending_attr = true;
        }
        let mut in_test = pending_attr || !regions.is_empty();
        for b in line.code.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    if pending_attr {
                        regions.push(depth);
                        pending_attr = false;
                    }
                }
                b'}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                b';' if pending_attr => {
                    // `#[cfg(test)] use …;` — attribute on a non-block item.
                    pending_attr = false;
                }
                _ => {}
            }
        }
        in_test = in_test || !regions.is_empty();
        line.in_test = in_test;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let f = SourceFile::parse("let x = 1; // thread_rng here\n/* Instant::now */ let y;\n");
        assert!(!f.lines[0].code.contains("thread_rng"));
        assert!(f.lines[0].comment.contains("thread_rng"));
        assert!(!f.lines[1].code.contains("Instant"));
        assert!(f.lines[1].code.contains("let y;"));
    }

    #[test]
    fn strips_string_contents_preserving_offsets() {
        let f = SourceFile::parse(r#"let s = "x.unwrap() inside"; s.len();"#);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("s.len()"));
        assert_eq!(f.lines[0].code.len(), f.lines[0].raw.len());
    }

    #[test]
    fn raw_strings_and_multiline_blocks() {
        let src = "let s = r#\"panic!(\"#;\n/* panic!\nstill comment */ let ok = 1;\n";
        let f = SourceFile::parse(src);
        assert!(!f.lines[0].code.contains("panic"));
        assert!(!f.lines[1].code.contains("panic"));
        assert!(f.lines[2].code.contains("let ok"));
    }

    #[test]
    fn char_literals_do_not_break_brace_tracking() {
        let src = "fn f() { let c = '{'; }\n#[cfg(test)]\nmod tests { fn g() {} }\nfn h() {}\n";
        let f = SourceFile::parse(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[3].in_test, "test region closed before h()");
    }

    #[test]
    fn cfg_test_on_use_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn live() {}\n";
        let f = SourceFile::parse(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn suppression_parsing() {
        let s = parse_suppressions(" ripq-lint: allow(no-panic-paths) -- held invariant");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].rule, "no-panic-paths");
        assert_eq!(s[0].reason.as_deref(), Some("held invariant"));

        let s = parse_suppressions(" ripq-lint: allow(a, b)");
        assert_eq!(s.len(), 2);
        assert!(s[0].reason.is_none(), "missing ` -- reason` is recorded");

        assert!(parse_suppressions("nothing to see").is_empty());
    }

    #[test]
    fn lifetimes_survive_scrubbing() {
        let f = SourceFile::parse("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("'a"));
    }
}
