//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Only the API surface RIPQ uses: the [`Distribution`] trait and the
//! [`Normal`] distribution (sampled with the Box–Muller transform so the
//! output depends solely on the generator's deterministic stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

/// Types that can draw samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`] with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was non-finite.
    MeanTooSmall,
    /// The standard deviation was negative or non-finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
            NormalError::BadVariance => {
                write!(f, "standard deviation is negative or not finite")
            }
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds `N(mean, std_dev²)`. Errors on non-finite parameters or a
    /// negative standard deviation (zero is allowed: a point mass).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one standard normal deviate. The
        // second deviate is discarded rather than cached so sampling is
        // stateless and the rng stream alone decides the output.
        let u1: f64 = loop {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u > 0.0 {
                break u;
            }
        };
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_match_parameters() {
        let n = Normal::new(1.2, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.2).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.3).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(n.sample(&mut a).to_bits(), n.sample(&mut b).to_bits());
        }
    }
}
