//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the API shape RIPQ's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `criterion_group!` /
//! `criterion_main!` — backed by a simple warmup + timed-batch harness
//! that prints median ns/iter. No statistics engine, plots or CLI
//! filtering; `cargo bench` runs every registered function.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How long each benchmark spends measuring (after warmup).
const MEASURE_TIME: Duration = Duration::from_millis(300);
/// How long each benchmark warms up before measuring.
const WARMUP_TIME: Duration = Duration::from_millis(100);
/// Number of timed batches the measurement window is split into.
const BATCHES: usize = 15;

/// Identifies one benchmark within a group, e.g. a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Median wall-clock nanoseconds per iteration, filled by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iter over several batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: estimate the per-iteration cost so batches are sized to
        // fill the measurement window without an unbounded first probe.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TIME {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (WARMUP_TIME.as_nanos() as f64 / warm_iters as f64).max(1.0);
        let batch_ns = MEASURE_TIME.as_nanos() as f64 / BATCHES as f64;
        let batch_iters = ((batch_ns / est_ns).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled by `id` within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter);
        self
    }

    /// Benchmarks `f`, labeled by `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.ns_per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

fn report(name: &str, ns: f64) {
    if ns >= 1_000_000.0 {
        println!("{name:<40} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("{name:<40} {:>12.3} µs/iter", ns / 1_000.0);
    } else {
        println!("{name:<40} {ns:>12.1} ns/iter");
    }
}

/// Re-export point used by generated harness code.
#[doc(hidden)]
pub mod __macro_support {
    pub use super::Criterion;
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
