//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest RIPQ's test suites use: the
//! [`strategy::Strategy`] trait (ranges, tuples, `prop_map`,
//! `collection::vec`, `option::of`), the `proptest!` macro family and
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, driven by a
//! deterministic per-test RNG (seeded from the test name) so failures
//! reproduce exactly. No shrinking: a failing case reports the values via
//! the assertion message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of an output type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy generating a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            debug_assert!(self.start < self.end);
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.start < self.end);
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as u64)
                        .wrapping_sub(lo as u64)
                        .wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy generating `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`
    /// (half-open, matching proptest's `vec(elem, lo..hi)` usage).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option<T>` values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(value)` three quarters of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Runner plumbing used by the `proptest!` macro expansion.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// `prop_assert!`-family failure; the test fails.
        Fail(String),
    }

    /// Deterministic generator for strategies: seeded from the test name,
    /// so every run (and every failure) reproduces the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// Builds the generator for the named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.rng.random::<f64>()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `use proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Accepts an optional leading
/// `#![proptest_config(..)]` followed by `#[test] fn name(arg in strategy,
/// ...) { body }` items, mirroring upstream proptest's macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body;
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(16).max(1024),
                            "proptest '{}': too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            passed,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body, failing the test (with
/// an optional formatted message) if it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {}", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!(
                        "assertion failed: {}: {}",
                        stringify!($cond),
                        format!($($fmt)+),
                    ),
                ),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(
                            format!("assertion failed: `{:?}` != `{:?}`", l, r),
                        ),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(
                            format!(
                                "assertion failed: `{:?}` != `{:?}`: {}",
                                l,
                                r,
                                format!($($fmt)+),
                            ),
                        ),
                    );
                }
            }
        }
    };
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!("assertion failed: `{:?}` == `{:?}`", l, r),
                    ));
                }
            }
        }
    };
}

/// Rejects the current generated case (retried with fresh inputs) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit() -> impl Strategy<Value = f64> {
        0.0f64..1.0
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Doc comments on cases must be accepted.
        #[test]
        fn ranges_stay_in_bounds(x in unit(), n in 1usize..=9, b in -5i64..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..=9).contains(&n), "n was {}", n);
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn composite_strategies_compose(
            v in crate::collection::vec((0u32..3, 0.0f64..1.0), 1..20),
            o in crate::option::of(0u32..2),
            mapped in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&(a, f)| a < 3 && (0.0..1.0).contains(&f)));
            if let Some(x) = o {
                prop_assert!(x < 2);
            }
            prop_assert!(mapped <= 8);
            prop_assert_eq!(mapped, mapped);
            prop_assert_ne!(mapped, mapped + 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
