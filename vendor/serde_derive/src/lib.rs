//! No-op derive macros for the vendored serde stub.
//!
//! Nothing in the workspace takes a `T: Serialize` bound, so the derives
//! only need to be accepted by the compiler — they expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
