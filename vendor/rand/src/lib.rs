//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the subset of `rand` the codebase actually uses is
//! implemented here: the [`Rng`] trait (with its [`RngExt`] alias),
//! [`SeedableRng`], and a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ seeded via SplitMix64.
//!
//! Determinism is the whole point: every generator in RIPQ is seeded
//! explicitly, and the test suite asserts bit-for-bit reproducibility of
//! full experiment runs. There is deliberately no `thread_rng` / OS
//! entropy here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's raw output
/// (the `rng.random::<T>()` family).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform value can be drawn from (the `rng.random_range(..)`
/// family).
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly within `self`.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        if lo == hi {
            return lo;
        }
        let u: f64 = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

/// A source of randomness. Mirrors the method names of modern `rand`
/// (`random`, `random_range`) so call sites match the real crate.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T` (`f64`/`f32` in `[0, 1)`, `bool`
    /// fair coin, integers over their full width).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Alias kept so `use rand::{Rng, RngExt}` imports — which predate the
/// method moves in upstream `rand` — keep compiling against this stub.
pub use Rng as RngExt;

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanded internally so
    /// that nearby seeds yield unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The SplitMix64 finalizer: expands/mixes a 64-bit value. Also exposed
/// for deriving independent stream seeds from a master seed.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix64, Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator — the stub's "standard" RNG.
    ///
    /// Not cryptographically secure (neither is upstream `StdRng` a
    /// stability guarantee); chosen for speed, quality and an exactly
    /// reproducible stream across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
                split_mix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream. Restoring via [`StdRng::from_state`] continues the
        /// exact output sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            mean += v;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.0f64..=3.5);
            assert!((-2.0..=3.5).contains(&f));
        }
        assert_eq!(rng.random_range(5u64..=5), 5);
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
