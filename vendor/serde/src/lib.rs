//! Offline vendored stand-in for the `serde` crate.
//!
//! RIPQ derives `Serialize`/`Deserialize` on its data types but never
//! actually serializes through a serde data format in-tree (persistence
//! is handled by the plan/trace text formats). In hermetic builds the
//! derives therefore only need to exist and type-check: this stub
//! provides empty marker traits and no-op derive macros so the
//! annotations stay in place for a future swap to real serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
