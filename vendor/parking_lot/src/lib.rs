//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with parking_lot's non-poisoning
//! API (`lock()`/`read()`/`write()` return guards directly). A poisoned
//! std lock means a panic already happened while the lock was held; the
//! wrappers recover the inner guard in that case, matching parking_lot's
//! behavior of not propagating poison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: later lockers still get the guard.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
