//! Landmark (ALT) distance oracle over the walking graph.
//!
//! The paper's query evaluators need shortest *network* distances on
//! `G(N, E)` (§4.2) at three granularities: point→point (candidate
//! pruning), point→many-anchors in ascending order (kNN frontier
//! expansion), and point→point *paths* (trajectory generation). The
//! memoized per-source Dijkstra behind [`crate::ShortestPathCache`]
//! answers all three by settling **every** node; this module answers
//! them goal-directed:
//!
//! * **Landmark tables** — `L` landmarks chosen by deterministic
//!   farthest-point selection, each with a full node-distance table. By
//!   the triangle inequality, `|d(l, v) − d(l, t)| ≤ d(v, t)` for every
//!   landmark `l`, so the tables yield an admissible A* heuristic
//!   (Goldberg & Harrelson, SODA 2005).
//! * **Exact unidirectional ALT** ([`DistanceOracle::distance`]) — A*
//!   with the landmark lower bound, engineered so the returned `f64` is
//!   *bit-identical* to [`crate::ShortestPaths::distance_to`]: the exact
//!   relaxation expressions are reused (left-to-right float sums), nodes
//!   may reopen, and the heuristic is deflated
//!   (`h = max(0, lb·(1−1e-9) − 1e-9)`) so float error in the tables can
//!   never make it inadmissible against float path sums. A bidirectional
//!   meet-in-the-middle variant would be faster still but sums path
//!   halves in a different order, which breaks bit-identity — the
//!   differential suite in `tests/oracle.rs` pins this choice.
//! * **Lazy ascending anchor scan** ([`DistanceOracle::scan`]) — a
//!   truncated Dijkstra that emits `(anchor, distance)` pairs in exactly
//!   the order a full sort of all anchor distances would produce,
//!   allowing kNN evaluation to stop as soon as enough probability mass
//!   has accumulated. Emission is safe because anchors sit at strictly
//!   interior edge offsets: any candidate produced by a future settle at
//!   distance `g` is ≥ `g`, so a pending anchor strictly below the node
//!   frontier can never be preempted.
//! * **Persistence** — tables are sealed through `ripq-persist` frames
//!   (see [`DistanceOracle::format_spec`]) keyed by a graph fingerprint,
//!   so checkpoint/recovery and the CLI reuse them instead of
//!   recomputing.

use crate::{AnchorId, AnchorSet, EdgeId, GraphPos, NodeId, Path, ShortestPaths, WalkingGraph};
use parking_lot::RwLock;
use ripq_persist::{
    crc32, load_snapshot, seal_snapshot, write_atomic, ByteReader, ByteWriter, PersistError,
};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};
use std::fmt;
use std::path::Path as FsPath;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Which distance machinery the query pipeline routes through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DistanceBackend {
    /// Memoized full-tree Dijkstra per source (the original pipeline).
    #[default]
    Dijkstra,
    /// Goal-directed landmark/ALT oracle; bit-identical answers with
    /// truncated search.
    Alt,
}

impl fmt::Display for DistanceBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DistanceBackend::Dijkstra => "dijkstra",
            DistanceBackend::Alt => "alt",
        })
    }
}

impl std::str::FromStr for DistanceBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dijkstra" => Ok(DistanceBackend::Dijkstra),
            "alt" => Ok(DistanceBackend::Alt),
            other => Err(format!("unknown distance backend {other:?} (dijkstra|alt)")),
        }
    }
}

/// Default number of landmarks ([`DistanceOracle::build`]).
pub const DEFAULT_LANDMARKS: usize = 8;

/// Snapshot format version of the serialized oracle payload.
const ORACLE_FORMAT_VERSION: u32 = 1;

/// Everything that can go wrong loading a serialized oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The snapshot frame itself was missing, torn, or corrupt.
    Persist(PersistError),
    /// The snapshot was built for a different walking graph.
    GraphMismatch {
        /// Fingerprint of the graph in memory.
        expected: u32,
        /// Fingerprint recorded in the file.
        found: u32,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Persist(e) => write!(f, "oracle snapshot: {e}"),
            OracleError::GraphMismatch { expected, found } => write!(
                f,
                "oracle snapshot built for a different graph (expected {expected:#010x}, found {found:#010x})"
            ),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<PersistError> for OracleError {
    fn from(e: PersistError) -> Self {
        OracleError::Persist(e)
    }
}

/// Logical-cost counters of a [`DistanceOracle`], mirroring the
/// `SpCacheStats` style: atomic adds, so totals are independent of
/// thread interleaving. Settle counts are the oracle's
/// distance-computation cost units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Point-to-point queries answered (including memoized ones).
    pub p2p_queries: u64,
    /// Point-to-point queries served from the memo table.
    pub p2p_memo_hits: u64,
    /// Nodes settled across all ALT point-to-point searches.
    pub p2p_settled: u64,
    /// Ascending anchor scans started.
    pub scan_queries: u64,
    /// Nodes settled across all anchor scans.
    pub scan_settled: u64,
    /// Anchor distance candidates evaluated by scans.
    pub scan_anchor_candidates: u64,
    /// Path-planning queries answered.
    pub path_queries: u64,
    /// Nodes settled across all truncated path searches.
    pub path_settled: u64,
}

#[derive(Debug, Default)]
struct Counters {
    p2p_queries: AtomicU64,
    p2p_memo_hits: AtomicU64,
    p2p_settled: AtomicU64,
    scan_queries: AtomicU64,
    scan_settled: AtomicU64,
    scan_anchor_candidates: AtomicU64,
    path_queries: AtomicU64,
    path_settled: AtomicU64,
}

/// A graph position as an exact hashable key (edge + offset bits), as in
/// `ShortestPathCache`.
type PosKey = (EdgeId, u64);

/// Landmark/ALT distance oracle. See the module docs for the design and
/// the exactness argument; `tests/oracle.rs` enforces both.
#[derive(Debug)]
pub struct DistanceOracle {
    landmarks: Vec<NodeId>,
    /// `tables[l][node.index()]` = shortest network distance from
    /// landmark `l`'s node to `node` (∞ when unreachable).
    tables: Vec<Vec<f64>>,
    fingerprint: u32,
    memo: RwLock<HashMap<(PosKey, PosKey), f64>>,
    counters: Counters,
}

impl DistanceOracle {
    /// Precomputes landmark tables for `graph`.
    ///
    /// Landmark selection is deterministic farthest-point: the first
    /// landmark is the node farthest from node 0 (ties → smallest id),
    /// then each subsequent landmark maximizes the minimum distance to
    /// the already-chosen set. Selection stops early when every node is
    /// at distance 0 from a landmark (tiny graphs).
    pub fn build(graph: &WalkingGraph, landmark_count: usize) -> Self {
        let n = graph.nodes().len();
        assert!(n > 0, "cannot build an oracle over an empty graph");
        let want = landmark_count.clamp(1, n);

        let mut landmarks: Vec<NodeId> = Vec::with_capacity(want);
        let mut tables: Vec<Vec<f64>> = Vec::with_capacity(want);
        let mut chosen = vec![false; n];
        let mut min_dist = vec![f64::INFINITY; n];

        let d0 = Self::node_distances(graph, NodeId::new(0));
        let mut next = Self::farthest(&d0, &chosen);
        loop {
            chosen[next] = true;
            let lm = NodeId::new(next as u32);
            let table = Self::node_distances(graph, lm);
            for (md, &d) in min_dist.iter_mut().zip(&table) {
                if d < *md {
                    *md = d;
                }
            }
            landmarks.push(lm);
            tables.push(table);
            if landmarks.len() == want {
                break;
            }
            next = Self::farthest(&min_dist, &chosen);
            if min_dist[next] <= 0.0 {
                break; // every remaining node coincides with a landmark
            }
        }

        DistanceOracle {
            landmarks,
            tables,
            fingerprint: graph_fingerprint(graph),
            memo: RwLock::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// Index of the largest entry (∞ allowed, ties → smallest index)
    /// among non-chosen nodes.
    fn farthest(dist: &[f64], chosen: &[bool]) -> usize {
        let mut best = usize::MAX;
        let mut best_d = f64::NEG_INFINITY;
        for (i, &d) in dist.iter().enumerate() {
            if !chosen[i] && d > best_d {
                best_d = d;
                best = i;
            }
        }
        if best == usize::MAX {
            // Everything chosen already (want == n); caller stops anyway.
            0
        } else {
            best
        }
    }

    /// Exact node-to-node Dijkstra distances from `src`, by seeding the
    /// standard position-based search at `src`'s end of an incident edge
    /// (distance 0 at the node itself).
    fn node_distances(graph: &WalkingGraph, src: NodeId) -> Vec<f64> {
        let n = graph.nodes().len();
        let incident = graph.edges_at(src);
        let Some(&eid) = incident.first() else {
            let mut d = vec![f64::INFINITY; n];
            d[src.index()] = 0.0;
            return d;
        };
        let e = graph.edge(eid);
        let off = if e.a == src { 0.0 } else { e.length() };
        let sp = ShortestPaths::from_pos(graph, GraphPos::new(eid, off));
        (0..n)
            .map(|i| sp.node_distance(NodeId::new(i as u32)))
            .collect()
    }

    /// The selected landmark nodes, in selection order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Fingerprint of the graph the tables were built for.
    pub fn fingerprint(&self) -> u32 {
        self.fingerprint
    }

    /// Counters accumulated since construction (or restore).
    pub fn stats(&self) -> OracleStats {
        let c = &self.counters;
        let ld = |a: &AtomicU64| a.load(AtomicOrdering::Relaxed);
        OracleStats {
            p2p_queries: ld(&c.p2p_queries),
            p2p_memo_hits: ld(&c.p2p_memo_hits),
            p2p_settled: ld(&c.p2p_settled),
            scan_queries: ld(&c.scan_queries),
            scan_settled: ld(&c.scan_settled),
            scan_anchor_candidates: ld(&c.scan_anchor_candidates),
            path_queries: ld(&c.path_queries),
            path_settled: ld(&c.path_settled),
        }
    }

    /// Per-landmark distance to an arbitrary graph position, using the
    /// same float expression as [`ShortestPaths::distance_to`].
    fn target_potentials(&self, graph: &WalkingGraph, to: GraphPos) -> Vec<f64> {
        let e = graph.edge(to.edge);
        let len = e.length();
        self.tables
            .iter()
            .map(|t| {
                let via_a = t[e.a.index()] + to.offset;
                let via_b = t[e.b.index()] + (len - to.offset).max(0.0);
                via_a.min(via_b)
            })
            .collect()
    }

    /// Landmark lower bound `max_l |d(l, v) − d(l, t)|` for a node
    /// against precomputed target potentials. `∞` is a *proof* of
    /// disconnection (one side reaches the landmark, the other does
    /// not); a landmark disconnected from both sides contributes
    /// nothing.
    fn lower_bound(&self, v: NodeId, potentials: &[f64]) -> f64 {
        let mut lb = 0.0f64;
        for (t, &dt) in self.tables.iter().zip(potentials) {
            let diff = (t[v.index()] - dt).abs();
            if diff > lb {
                lb = diff; // NaN (∞ − ∞) never passes the comparison
            }
        }
        lb
    }

    /// Deflates an admissible real-arithmetic lower bound far enough
    /// that float error in table entries and path sums can never make it
    /// overestimate a *float* path sum (relative 1e-9 + absolute 1e-9
    /// dwarf the ~1e-12 accumulation error of any realistic path).
    fn h_safe(lb: f64) -> f64 {
        if !lb.is_finite() {
            return lb;
        }
        (lb * (1.0 - 1e-9) - 1e-9).max(0.0)
    }

    /// Exact shortest network distance from `from` to `to`, bit-identical
    /// to `ShortestPaths::from_pos(graph, from).distance_to(graph, to)`.
    ///
    /// Repeated queries for the same (source, target) pair are served
    /// from a memo table, mirroring `ShortestPathCache`.
    pub fn distance(&self, graph: &WalkingGraph, from: GraphPos, to: GraphPos) -> f64 {
        self.counters
            .p2p_queries
            .fetch_add(1, AtomicOrdering::Relaxed);
        let key = (
            (from.edge, from.offset.to_bits()),
            (to.edge, to.offset.to_bits()),
        );
        if let Some(&d) = self.memo.read().get(&key) {
            self.counters
                .p2p_memo_hits
                .fetch_add(1, AtomicOrdering::Relaxed);
            return d;
        }
        let d = self.alt_distance(graph, from, to);
        self.memo.write().insert(key, d);
        d
    }

    /// Unidirectional ALT (A* + landmark bounds) with reopening.
    fn alt_distance(&self, graph: &WalkingGraph, from: GraphPos, to: GraphPos) -> f64 {
        let potentials = self.target_potentials(graph, to);
        let te = graph.edge(to.edge);
        let tlen = te.length();
        let n = graph.nodes().len();
        let mut g = vec![f64::INFINITY; n];
        let mut best = if to.edge == from.edge {
            (to.offset - from.offset).abs()
        } else {
            f64::INFINITY
        };
        // Exact expressions of `distance_to`, applied whenever a target
        // edge endpoint improves: min over improvements equals the value
        // on the final distance because x ↦ fl(x + c) is monotone.
        let update_best = |node: NodeId, d: f64, best: &mut f64| {
            if node == te.a {
                let via_a = d + to.offset;
                if via_a < *best {
                    *best = via_a;
                }
            }
            if node == te.b {
                let via_b = d + (tlen - to.offset).max(0.0);
                if via_b < *best {
                    *best = via_b;
                }
            }
        };

        let mut heap: BinaryHeap<AltEntry> = BinaryHeap::new();
        let se = graph.edge(from.edge);
        let slen = se.length();
        for (node, d) in [(se.a, from.offset), (se.b, (slen - from.offset).max(0.0))] {
            if d < g[node.index()] {
                g[node.index()] = d;
                update_best(node, d, &mut best);
                heap.push(AltEntry {
                    f: d + Self::h_safe(self.lower_bound(node, &potentials)),
                    g: d,
                    node,
                });
            }
        }

        let mut settled = 0u64;
        while let Some(AltEntry { f, g: gd, node }) = heap.pop() {
            if gd > g[node.index()] {
                continue; // stale entry
            }
            if f >= best {
                // Every remaining frontier entry has f' ≥ f; with the
                // deflated admissible heuristic no remaining path can
                // strictly improve `best`.
                break;
            }
            settled += 1;
            for &eid in graph.edges_at(node) {
                let e = graph.edge(eid);
                let other = e.other_end(node).expect("incident edge");
                let nd = gd + e.length();
                if nd < g[other.index()] {
                    g[other.index()] = nd;
                    update_best(other, nd, &mut best);
                    heap.push(AltEntry {
                        f: nd + Self::h_safe(self.lower_bound(other, &potentials)),
                        g: nd,
                        node: other,
                    });
                }
            }
        }
        self.counters
            .p2p_settled
            .fetch_add(settled, AtomicOrdering::Relaxed);
        best
    }

    /// Starts a lazy ascending anchor scan from `from`: emitted
    /// `(anchor, distance)` pairs are exactly the full list of anchor
    /// distances (every anchor, unreachable ones at ∞) ordered by
    /// `(distance, anchor id)`, with distances bit-identical to
    /// [`ShortestPaths::distance_to`] — but computed incrementally, so a
    /// consumer that stops early only pays for the frontier it touched.
    pub fn scan<'a>(
        &'a self,
        graph: &'a WalkingGraph,
        anchors: &'a AnchorSet,
        from: GraphPos,
    ) -> AnchorScan<'a> {
        AnchorScan::new(graph, anchors, from, &self.counters)
    }

    /// Distances from `from` to exactly the `needed` anchors, via one
    /// anchor scan truncated as soon as the last needed anchor is
    /// resolved. Values are bit-identical to `distance_to`.
    pub fn distances_to_anchors(
        &self,
        graph: &WalkingGraph,
        anchors: &AnchorSet,
        from: GraphPos,
        needed: &BTreeSet<AnchorId>,
    ) -> BTreeMap<AnchorId, f64> {
        let mut out = BTreeMap::new();
        if needed.is_empty() {
            return out;
        }
        for (a, d) in self.scan(graph, anchors, from) {
            if needed.contains(&a) {
                out.insert(a, d);
                if out.len() == needed.len() {
                    break;
                }
            }
        }
        out
    }

    /// Shortest path from `from` to `to`, identical leg-for-leg to
    /// `ShortestPaths::from_pos(..).path_to(..)` but computed by a
    /// Dijkstra truncated once both target-edge endpoints settle. Being
    /// plain Dijkstra underneath, the route is independent of the
    /// distance backend — trajectory generation must produce the same
    /// traces under both, or differential transcripts could never match.
    pub fn plan_path(&self, graph: &WalkingGraph, from: GraphPos, to: GraphPos) -> Option<Path> {
        self.counters
            .path_queries
            .fetch_add(1, AtomicOrdering::Relaxed);
        let (sp, settled) = ShortestPaths::from_pos_until_edge(graph, from, to.edge);
        self.counters
            .path_settled
            .fetch_add(settled, AtomicOrdering::Relaxed);
        sp.path_to(graph, to)
    }

    /// Serializes the landmark tables (unsealed payload). The memo table
    /// and counters are runtime state and are not persisted.
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(ORACLE_FORMAT_VERSION);
        w.put_u32(self.fingerprint);
        let nodes = self.tables.first().map_or(0, Vec::len);
        w.put_u64(nodes as u64);
        w.put_seq_len(self.landmarks.len());
        for (lm, table) in self.landmarks.iter().zip(&self.tables) {
            w.put_u32(lm.raw());
            for &d in table {
                w.put_f64(d);
            }
        }
        w.into_bytes()
    }

    /// Decodes an unsealed payload, validating it against `graph`.
    fn decode(payload: &[u8], graph: &WalkingGraph) -> Result<Self, OracleError> {
        let mut r = ByteReader::new(payload);
        let version = r.get_u32()?;
        if version != ORACLE_FORMAT_VERSION {
            return Err(PersistError::StaleVersion {
                found: version,
                supported: ORACLE_FORMAT_VERSION,
            }
            .into());
        }
        let found = r.get_u32()?;
        let expected = graph_fingerprint(graph);
        if found != expected {
            return Err(OracleError::GraphMismatch { expected, found });
        }
        let nodes = r.get_u64()? as usize;
        if nodes != graph.nodes().len() {
            return Err(OracleError::GraphMismatch { expected, found });
        }
        let count = r.get_seq_len(4 + nodes * 8)?;
        let mut landmarks = Vec::with_capacity(count);
        let mut tables = Vec::with_capacity(count);
        for _ in 0..count {
            landmarks.push(NodeId::new(r.get_u32()?));
            let mut table = Vec::with_capacity(nodes);
            for _ in 0..nodes {
                table.push(r.get_f64()?);
            }
            tables.push(table);
        }
        r.finish()?;
        Ok(DistanceOracle {
            landmarks,
            tables,
            fingerprint: found,
            memo: RwLock::new(HashMap::new()),
            counters: Counters::default(),
        })
    }

    /// Writes the oracle atomically as a sealed `ripq-persist` snapshot.
    pub fn save(&self, path: &FsPath) -> Result<(), PersistError> {
        write_atomic(path, &seal_snapshot(&self.encode()))
    }

    /// Loads a sealed oracle snapshot and validates it against `graph`.
    pub fn load(path: &FsPath, graph: &WalkingGraph) -> Result<Self, OracleError> {
        let payload = load_snapshot(path)?;
        Self::decode(&payload, graph)
    }

    /// Human-readable contract of the serialized oracle payload (the
    /// bytes *inside* the standard `ripq-persist` frame; see
    /// `ripq_persist::format_spec` for the frame itself).
    pub fn format_spec() -> String {
        format!(
            "ripq distance-oracle payload, version {ORACLE_FORMAT_VERSION}\n\
             all integers little-endian; f64 as raw IEEE-754 bits\n\
             \n\
             u32  payload format version ({ORACLE_FORMAT_VERSION})\n\
             u32  graph fingerprint: CRC32 over (node count u64, edge count u64,\n\
             \x20    then per edge: endpoint a u32, endpoint b u32, length f64)\n\
             u64  node count N (must match the graph on load)\n\
             u64  landmark count L (length-prefixed sequence)\n\
             repeated L times:\n\
             \x20  u32      landmark node id\n\
             \x20  f64 × N  distance table, indexed by node id (∞ = unreachable)\n\
             \n\
             memoized point-to-point results and counters are runtime\n\
             state and are never persisted"
        )
    }
}

/// CRC32 fingerprint of a walking graph's connectivity and metric: node
/// count, edge count, and each edge's endpoints and exact length bits.
/// Two graphs with equal fingerprints produce identical Dijkstra
/// results, so oracle tables keyed by it are safe to reuse.
pub fn graph_fingerprint(graph: &WalkingGraph) -> u32 {
    let mut w = ByteWriter::new();
    w.put_u64(graph.nodes().len() as u64);
    w.put_u64(graph.edges().len() as u64);
    for e in graph.edges() {
        w.put_u32(e.a.raw());
        w.put_u32(e.b.raw());
        w.put_f64(e.length());
    }
    crc32(&w.into_bytes())
}

/// ALT frontier entry: min-heap on `f`, then `g`, then node id. The tie
/// levels beyond `f` only make heap behaviour deterministic — the
/// returned distance is a min over all relaxations and does not depend
/// on pop order.
#[derive(PartialEq)]
struct AltEntry {
    f: f64,
    g: f64,
    node: NodeId,
}

impl Eq for AltEntry {}

impl Ord for AltEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.g.partial_cmp(&self.g).unwrap_or(Ordering::Equal))
            .then_with(|| other.node.raw().cmp(&self.node.raw()))
    }
}

impl PartialOrd for AltEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra frontier entry of the anchor scan: min (dist, node id).
#[derive(PartialEq)]
struct ScanNode {
    dist: f64,
    node: NodeId,
}

impl Eq for ScanNode {}

impl Ord for ScanNode {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.raw().cmp(&self.node.raw()))
    }
}

impl PartialOrd for ScanNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Pending anchor candidate: min (dist, anchor id) — the same ordering
/// the kNN evaluator's full heap uses, so emission order matches it
/// exactly, including ∞-distance ties broken by anchor id.
#[derive(PartialEq)]
struct ScanAnchor {
    dist: f64,
    anchor: AnchorId,
}

impl Eq for ScanAnchor {}

impl Ord for ScanAnchor {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.anchor.raw().cmp(&self.anchor.raw()))
    }
}

impl PartialOrd for ScanAnchor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lazy ascending anchor scan; see [`DistanceOracle::scan`].
///
/// An anchor is emitted only while its pending distance is *strictly*
/// below the node frontier's minimum: every candidate a future settle at
/// distance `g` can produce is `fl(g + offset) ≥ g` (offsets are
/// non-negative and float addition of non-negatives is monotone), so no
/// later candidate can precede — or tie and out-rank by id — an anchor
/// emitted under that rule. Once the node search is exhausted, remaining
/// anchors are resolved with the final-tree distance formula (∞ for
/// unreachable ones) and drained in heap order.
pub struct AnchorScan<'a> {
    graph: &'a WalkingGraph,
    anchors: &'a AnchorSet,
    source: GraphPos,
    node_dist: Vec<f64>,
    node_heap: BinaryHeap<ScanNode>,
    pending: BinaryHeap<ScanAnchor>,
    emitted: Vec<bool>,
    drained: bool,
    counters: &'a Counters,
}

impl<'a> AnchorScan<'a> {
    fn new(
        graph: &'a WalkingGraph,
        anchors: &'a AnchorSet,
        from: GraphPos,
        counters: &'a Counters,
    ) -> Self {
        counters.scan_queries.fetch_add(1, AtomicOrdering::Relaxed);
        let n = graph.nodes().len();
        let mut scan = AnchorScan {
            graph,
            anchors,
            source: from,
            node_dist: vec![f64::INFINITY; n],
            node_heap: BinaryHeap::new(),
            pending: BinaryHeap::new(),
            emitted: vec![false; anchors.anchors().len()],
            drained: false,
            counters,
        };
        // Same-edge direct candidates (the third arm of `distance_to`).
        for &aid in anchors.on_edge(from.edge) {
            let off = anchors.anchor(aid).pos.offset;
            scan.pending.push(ScanAnchor {
                dist: (off - from.offset).abs(),
                anchor: aid,
            });
            counters
                .scan_anchor_candidates
                .fetch_add(1, AtomicOrdering::Relaxed);
        }
        let se = graph.edge(from.edge);
        let slen = se.length();
        for (node, d) in [(se.a, from.offset), (se.b, (slen - from.offset).max(0.0))] {
            if d < scan.node_dist[node.index()] {
                scan.node_dist[node.index()] = d;
                scan.node_heap.push(ScanNode { dist: d, node });
            }
        }
        scan
    }

    /// Final-tree distance to every not-yet-emitted anchor, pushed into
    /// the pending heap. Only valid once the node search is exhausted.
    fn drain_remaining(&mut self) {
        for a in self.anchors.anchors() {
            if self.emitted[a.id.index()] {
                continue;
            }
            let e = self.graph.edge(a.pos.edge);
            let len = e.length();
            let via_a = self.node_dist[e.a.index()] + a.pos.offset;
            let via_b = self.node_dist[e.b.index()] + (len - a.pos.offset).max(0.0);
            let mut d = via_a.min(via_b);
            if a.pos.edge == self.source.edge {
                d = d.min((a.pos.offset - self.source.offset).abs());
            }
            self.pending.push(ScanAnchor {
                dist: d,
                anchor: a.id,
            });
        }
    }
}

impl Iterator for AnchorScan<'_> {
    type Item = (AnchorId, f64);

    fn next(&mut self) -> Option<(AnchorId, f64)> {
        loop {
            let threshold = self.node_heap.peek().map(|e| e.dist);
            if let Some(p) = self.pending.peek() {
                if threshold.is_none_or(|t| p.dist < t) {
                    let ScanAnchor { dist, anchor } =
                        self.pending.pop().expect("peeked entry present");
                    if self.emitted[anchor.index()] {
                        continue; // duplicate candidate of an emitted anchor
                    }
                    self.emitted[anchor.index()] = true;
                    return Some((anchor, dist));
                }
            }
            match threshold {
                None => {
                    if self.drained {
                        return None;
                    }
                    self.drained = true;
                    self.drain_remaining();
                    if self.pending.is_empty() {
                        return None;
                    }
                }
                Some(_) => {
                    let ScanNode { dist, node } =
                        self.node_heap.pop().expect("peeked entry present");
                    if dist > self.node_dist[node.index()] {
                        continue; // stale entry
                    }
                    self.counters
                        .scan_settled
                        .fetch_add(1, AtomicOrdering::Relaxed);
                    for &eid in self.graph.edges_at(node) {
                        let e = self.graph.edge(eid);
                        let len = e.length();
                        for &aid in self.anchors.on_edge(eid) {
                            if self.emitted[aid.index()] {
                                continue;
                            }
                            let off = self.anchors.anchor(aid).pos.offset;
                            // Exact via_a / via_b expressions of
                            // `distance_to`, with a settled (= final)
                            // endpoint distance.
                            let cand = if node == e.a {
                                dist + off
                            } else {
                                dist + (len - off).max(0.0)
                            };
                            self.pending.push(ScanAnchor {
                                dist: cand,
                                anchor: aid,
                            });
                            self.counters
                                .scan_anchor_candidates
                                .fetch_add(1, AtomicOrdering::Relaxed);
                        }
                        let other = e.other_end(node).expect("incident edge");
                        let nd = dist + len;
                        if nd < self.node_dist[other.index()] {
                            self.node_dist[other.index()] = nd;
                            self.node_heap.push(ScanNode {
                                dist: nd,
                                node: other,
                            });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_walking_graph;
    use ripq_floorplan::{office_building, OfficeParams};

    fn office() -> (ripq_floorplan::FloorPlan, WalkingGraph) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        (plan, g)
    }

    #[test]
    fn landmark_selection_is_deterministic_and_distinct() {
        let (_, g) = office();
        let a = DistanceOracle::build(&g, 8);
        let b = DistanceOracle::build(&g, 8);
        assert_eq!(a.landmarks(), b.landmarks());
        assert_eq!(a.landmarks().len(), 8);
        let set: BTreeSet<NodeId> = a.landmarks().iter().copied().collect();
        assert_eq!(set.len(), 8, "landmarks must be distinct");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn p2p_matches_dijkstra_bit_for_bit() {
        let (plan, g) = office();
        let oracle = DistanceOracle::build(&g, 8);
        for i in 0..plan.rooms().len() {
            let from = g.project(plan.rooms()[i].center());
            let sp = ShortestPaths::from_pos(&g, from);
            for j in (0..plan.rooms().len()).step_by(3) {
                let to = g.project(plan.rooms()[j].center());
                assert_eq!(
                    oracle.distance(&g, from, to).to_bits(),
                    sp.distance_to(&g, to).to_bits(),
                    "rooms {i} -> {j}"
                );
            }
        }
    }

    #[test]
    fn p2p_memoizes_repeat_queries() {
        let (plan, g) = office();
        let oracle = DistanceOracle::build(&g, 4);
        let from = g.project(plan.rooms()[0].center());
        let to = g.project(plan.rooms()[9].center());
        let d1 = oracle.distance(&g, from, to);
        let d2 = oracle.distance(&g, from, to);
        assert_eq!(d1.to_bits(), d2.to_bits());
        let s = oracle.stats();
        assert_eq!(s.p2p_queries, 2);
        assert_eq!(s.p2p_memo_hits, 1);
    }

    #[test]
    fn scan_emits_every_anchor_in_exact_full_sort_order() {
        let (plan, g) = office();
        let anchors = AnchorSet::generate(&g, &plan, 1.0);
        let oracle = DistanceOracle::build(&g, 8);
        for room in [0usize, 13, 29] {
            let from = g.project(plan.rooms()[room].center());
            let sp = ShortestPaths::from_pos(&g, from);
            // Reference: the eager all-anchors ordering the kNN
            // evaluator's heap would pop.
            let mut expect: Vec<(AnchorId, f64)> = anchors
                .anchors()
                .iter()
                .map(|a| (a.id, sp.distance_to(&g, a.pos)))
                .collect();
            expect.sort_by(|(ia, da), (ib, db)| {
                da.partial_cmp(db)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| ia.cmp(ib))
            });
            let got: Vec<(AnchorId, f64)> = oracle.scan(&g, &anchors, from).collect();
            assert_eq!(got.len(), expect.len());
            for (idx, ((ga, gd), (ea, ed))) in got.iter().zip(&expect).enumerate() {
                assert_eq!(ga, ea, "anchor order diverged at {idx} (room {room})");
                assert_eq!(gd.to_bits(), ed.to_bits(), "distance bits at {idx}");
            }
        }
    }

    #[test]
    fn truncated_scan_settles_fewer_nodes_than_full_dijkstra() {
        let (plan, g) = office();
        let anchors = AnchorSet::generate(&g, &plan, 1.0);
        let oracle = DistanceOracle::build(&g, 8);
        let from = g.project(plan.rooms()[15].center());
        let mut scan = oracle.scan(&g, &anchors, from);
        for _ in 0..10 {
            scan.next().expect("anchors available");
        }
        drop(scan);
        let s = oracle.stats();
        assert!(
            (s.scan_settled as usize) < g.nodes().len() / 2,
            "10 nearest anchors settled {} of {} nodes",
            s.scan_settled,
            g.nodes().len()
        );
    }

    #[test]
    fn distances_to_anchors_truncates_and_matches() {
        let (plan, g) = office();
        let anchors = AnchorSet::generate(&g, &plan, 1.0);
        let oracle = DistanceOracle::build(&g, 8);
        let from = g.project(plan.rooms()[4].center());
        let sp = ShortestPaths::from_pos(&g, from);
        let needed: BTreeSet<AnchorId> =
            [3u32, 17, 40, 99].into_iter().map(AnchorId::new).collect();
        let got = oracle.distances_to_anchors(&g, &anchors, from, &needed);
        assert_eq!(got.len(), needed.len());
        for (&a, &d) in &got {
            assert_eq!(
                d.to_bits(),
                sp.distance_to(&g, anchors.anchor(a).pos).to_bits()
            );
        }
    }

    #[test]
    fn lower_bound_is_admissible_for_node_pairs() {
        let (_, g) = office();
        let oracle = DistanceOracle::build(&g, 8);
        for v in g.nodes().iter().step_by(3) {
            let sp = DistanceOracle::node_distances(&g, v.id);
            for t in g.nodes().iter().step_by(5) {
                let pos = node_pos(&g, t.id);
                let potentials = oracle.target_potentials(&g, pos);
                let lb = DistanceOracle::h_safe(oracle.lower_bound(v.id, &potentials));
                let true_d = sp[t.id.index()];
                assert!(
                    lb <= true_d + 1e-9,
                    "lb {lb} > true {true_d} for {} -> {}",
                    v.id,
                    t.id
                );
            }
        }
    }

    /// A graph position sitting exactly on a node.
    fn node_pos(g: &WalkingGraph, n: NodeId) -> GraphPos {
        let eid = g.edges_at(n)[0];
        let e = g.edge(eid);
        let off = if e.a == n { 0.0 } else { e.length() };
        GraphPos::new(eid, off)
    }

    #[test]
    fn plan_path_matches_full_dijkstra_path() {
        let (plan, g) = office();
        let oracle = DistanceOracle::build(&g, 4);
        let from = g.project(plan.rooms()[6].center());
        for target in [2usize, 11, 28] {
            let to = g.project(plan.rooms()[target].center());
            let full = ShortestPaths::from_pos(&g, from)
                .path_to(&g, to)
                .expect("reachable");
            let fast = oracle.plan_path(&g, from, to).expect("reachable");
            assert_eq!(full.legs(), fast.legs());
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_tables() {
        let (plan, g) = office();
        let oracle = DistanceOracle::build(&g, 6);
        let dir = std::env::temp_dir().join(format!("ripq-oracle-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oracle.ckpt");
        oracle.save(&path).unwrap();
        let loaded = DistanceOracle::load(&path, &g).unwrap();
        assert_eq!(oracle.landmarks, loaded.landmarks);
        assert_eq!(oracle.tables.len(), loaded.tables.len());
        for (a, b) in oracle.tables.iter().zip(&loaded.tables) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let from = g.project(plan.rooms()[3].center());
        let to = g.project(plan.rooms()[20].center());
        assert_eq!(
            oracle.distance(&g, from, to).to_bits(),
            loaded.distance(&g, from, to).to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_a_different_graph() {
        let (_, g) = office();
        let oracle = DistanceOracle::build(&g, 4);
        let other_plan = office_building(&OfficeParams {
            horizontal_hallways: 2,
            ..OfficeParams::default()
        })
        .unwrap();
        let og = build_walking_graph(&other_plan);
        let dir = std::env::temp_dir().join(format!("ripq-oracle-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("oracle.ckpt");
        oracle.save(&path).unwrap();
        match DistanceOracle::load(&path, &og) {
            Err(OracleError::GraphMismatch { .. }) => {}
            other => panic!("expected GraphMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_spec_names_the_load_bearing_fields() {
        let spec = DistanceOracle::format_spec();
        for needle in ["fingerprint", "landmark", "distance table", "CRC32"] {
            assert!(spec.contains(needle), "spec missing {needle:?}:\n{spec}");
        }
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("alt".parse::<DistanceBackend>(), Ok(DistanceBackend::Alt));
        assert_eq!(
            "dijkstra".parse::<DistanceBackend>(),
            Ok(DistanceBackend::Dijkstra)
        );
        assert!("bfs".parse::<DistanceBackend>().is_err());
        assert_eq!(DistanceBackend::Alt.to_string(), "alt");
        assert_eq!(DistanceBackend::default(), DistanceBackend::Dijkstra);
    }
}
