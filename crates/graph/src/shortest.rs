//! Single-source shortest paths (Dijkstra) on the walking graph.
//!
//! The paper's distance metric for kNN queries is "the shortest spatial
//! network distance on G, which can then be calculated by many well-known
//! spatial network shortest path algorithms" (§4.2). This module provides
//! exactly that: Dijkstra from an arbitrary [`GraphPos`], distances to any
//! other position, and explicit path reconstruction for the trace
//! generator.

use crate::{EdgeId, GraphPos, NodeId, Path, WalkingGraph};
use parking_lot::RwLock;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Max-heap entry ordered so the smallest distance pops first.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse both fields: BinaryHeap is a max-heap, we want the
        // smallest distance first and, on exact distance ties, the
        // smallest node id. The node comparison must be reversed just
        // like the distance — comparing `self` to `other` here would
        // pop the *largest* id first on equal-distance frontiers.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.raw().cmp(&self.node.raw()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-path distances from a fixed source position to every node,
/// with enough bookkeeping to reconstruct paths.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: GraphPos,
    /// Distance from the source to each node (∞ when unreachable).
    node_dist: Vec<f64>,
    /// Predecessor edge used to reach each node (`None` at the roots).
    prev: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// Runs Dijkstra from `from`.
    pub fn from_pos(graph: &WalkingGraph, from: GraphPos) -> Self {
        Self::run(graph, from, None).0
    }

    /// Runs Dijkstra from `from` but stops as soon as both endpoints of
    /// `target` are settled (label-setting makes a settled node's
    /// distance and predecessor final, so [`Self::distance_to`] and
    /// [`Self::path_to`] for positions **on `target`** are bit-identical
    /// to the full-tree answers). Distances to other nodes may still be
    /// tentative. Returns the tree together with the number of settled
    /// nodes, the truncation's logical-cost measure.
    pub fn from_pos_until_edge(
        graph: &WalkingGraph,
        from: GraphPos,
        target: EdgeId,
    ) -> (Self, u64) {
        Self::run(graph, from, Some(target))
    }

    fn run(graph: &WalkingGraph, from: GraphPos, stop_edge: Option<EdgeId>) -> (Self, u64) {
        let n = graph.nodes().len();
        let mut node_dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        let mut settled = 0u64;
        let stop_nodes = stop_edge.map(|eid| {
            let e = graph.edge(eid);
            (e.a, e.b)
        });
        let mut stop_left = 2u8;

        let src_edge = graph.edge(from.edge);
        let len = src_edge.length();
        let seed = [
            (src_edge.a, from.offset),
            (src_edge.b, (len - from.offset).max(0.0)),
        ];
        for (node, d) in seed {
            if d < node_dist[node.index()] {
                node_dist[node.index()] = d;
                heap.push(HeapEntry { dist: d, node });
            }
        }

        while let Some(HeapEntry { dist, node }) = heap.pop() {
            if dist > node_dist[node.index()] {
                continue; // stale entry
            }
            settled += 1;
            for &eid in graph.edges_at(node) {
                let e = graph.edge(eid);
                let other = e.other_end(node).expect("incident edge");
                let nd = dist + e.length();
                if nd < node_dist[other.index()] {
                    node_dist[other.index()] = nd;
                    prev[other.index()] = Some((node, eid));
                    heap.push(HeapEntry {
                        dist: nd,
                        node: other,
                    });
                }
            }
            if let Some((a, b)) = stop_nodes {
                if node == a || node == b {
                    // A node settles at most once (label-setting), so two
                    // hits mean both target endpoints are final. A self-loop
                    // target (a == b) is final after its single settle.
                    stop_left = stop_left.saturating_sub(if a == b { 2 } else { 1 });
                    if stop_left == 0 {
                        break;
                    }
                }
            }
        }

        (
            ShortestPaths {
                source: from,
                node_dist,
                prev,
            },
            settled,
        )
    }

    /// The source position this instance was computed from.
    #[inline]
    pub fn source(&self) -> GraphPos {
        self.source
    }

    /// Distance from the source to a node.
    #[inline]
    pub fn node_distance(&self, n: NodeId) -> f64 {
        self.node_dist[n.index()]
    }

    /// Distance from the source to an arbitrary graph position.
    pub fn distance_to(&self, graph: &WalkingGraph, to: GraphPos) -> f64 {
        let e = graph.edge(to.edge);
        let len = e.length();
        let via_a = self.node_dist[e.a.index()] + to.offset;
        let via_b = self.node_dist[e.b.index()] + (len - to.offset).max(0.0);
        let mut best = via_a.min(via_b);
        if to.edge == self.source.edge {
            best = best.min((to.offset - self.source.offset).abs());
        }
        best
    }

    /// Reconstructs the shortest path from the source to `to` as a sequence
    /// of edge traversals, or `None` when unreachable.
    pub fn path_to(&self, graph: &WalkingGraph, to: GraphPos) -> Option<Path> {
        // Same-edge direct path, if it beats going around.
        let direct = if to.edge == self.source.edge {
            Some((to.offset - self.source.offset).abs())
        } else {
            None
        };

        let e = graph.edge(to.edge);
        let via_a = self.node_dist[e.a.index()] + to.offset;
        let via_b = self.node_dist[e.b.index()] + (e.length() - to.offset).max(0.0);
        let around = via_a.min(via_b);

        if let Some(d) = direct {
            if d <= around {
                return Some(Path::single_leg(
                    graph,
                    to.edge,
                    self.source.offset,
                    to.offset,
                ));
            }
        }
        if !around.is_finite() {
            return direct.map(|_| Path::single_leg(graph, to.edge, self.source.offset, to.offset));
        }

        // Walk back from the better entry node of the target edge.
        let (mut node, last_leg) = if via_a <= via_b {
            (e.a, (to.edge, 0.0, to.offset))
        } else {
            (e.b, (to.edge, e.length(), to.offset))
        };
        let mut legs_rev: Vec<(EdgeId, f64, f64)> = Vec::new();
        if (last_leg.1 - last_leg.2).abs() > 1e-12 {
            legs_rev.push(last_leg);
        }
        while let Some((pnode, peid)) = self.prev[node.index()] {
            let pe = graph.edge(peid);
            let from_off = pe.offset_of(pnode).expect("end node");
            let to_off = pe.offset_of(node).expect("end node");
            legs_rev.push((peid, from_off, to_off));
            node = pnode;
        }
        // First leg: from the source offset to the root node of the chain.
        let src_edge = graph.edge(self.source.edge);
        let root_off = src_edge
            .offset_of(node)
            .expect("Dijkstra roots are the source edge endpoints");
        if (self.source.offset - root_off).abs() > 1e-12 {
            legs_rev.push((self.source.edge, self.source.offset, root_off));
        }
        legs_rev.reverse();
        Some(Path::from_legs(graph, self.source, to, legs_rev))
    }
}

/// A source position as a hashable key: the edge plus the *bit pattern*
/// of the offset, so two sources compare equal exactly when Dijkstra
/// would produce identical results.
type SourceKey = (EdgeId, u64);

/// A concurrent memoization cache for [`ShortestPaths`].
///
/// Query evaluation and candidate pruning re-run Dijkstra from the same
/// fixed query points on every evaluation pass; this cache computes each
/// source once and hands out shared [`Arc`]s. All methods take `&self`
/// (reader-writer lock inside), so preprocessing/pruning threads can
/// share one instance. The cached result is the plain
/// [`ShortestPaths::from_pos`] output, so cached and fresh lookups are
/// bit-identical.
#[derive(Debug, Default)]
pub struct ShortestPathCache {
    entries: RwLock<HashMap<SourceKey, Arc<ShortestPaths>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Memoization counters of a [`ShortestPathCache`]. Counter updates are
/// atomic adds, so totals are independent of thread interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpCacheStats {
    /// Lookups served from a memoized Dijkstra tree.
    pub hits: u64,
    /// Lookups that ran Dijkstra.
    pub misses: u64,
}

impl ShortestPathCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shortest-path tree from `from`, computed on first use.
    pub fn paths(&self, graph: &WalkingGraph, from: GraphPos) -> Arc<ShortestPaths> {
        let key: SourceKey = (from.edge, from.offset.to_bits());
        if let Some(sp) = self.entries.read().get(&key) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Arc::clone(sp);
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        // Compute outside the write lock; racing computations of the same
        // source produce identical trees, and the entry API keeps the
        // first one inserted.
        let sp = Arc::new(ShortestPaths::from_pos(graph, from));
        let mut entries = self.entries.write();
        Arc::clone(entries.entry(key).or_insert(sp))
    }

    /// Number of distinct memoized sources.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// `true` when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops all memoized trees (e.g. after the graph changes). The
    /// hit/miss counters keep accumulating across clears.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Memoization counters accumulated since construction.
    pub fn stats(&self) -> SpCacheStats {
        SpCacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_walking_graph;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_geom::Point2;

    fn office() -> (ripq_floorplan::FloorPlan, WalkingGraph) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        (plan, g)
    }

    #[test]
    fn distance_to_self_is_zero() {
        let (_, g) = office();
        let p = g.project(Point2::new(10.0, 10.0));
        assert!(g.network_distance(p, p) < 1e-9);
    }

    #[test]
    fn symmetry_of_network_distance() {
        let (plan, g) = office();
        let a = g.project(plan.rooms()[0].center());
        let b = g.project(plan.rooms()[17].center());
        let d1 = g.network_distance(a, b);
        let d2 = g.network_distance(b, a);
        assert!(d1.is_finite());
        assert!((d1 - d2).abs() < 1e-6, "d1={d1} d2={d2}");
    }

    #[test]
    fn all_nodes_reachable_in_office() {
        let (_, g) = office();
        let p = g.project(Point2::new(31.0, 30.0));
        let sp = g.shortest_paths_from(p);
        for n in g.nodes() {
            assert!(
                sp.node_distance(n.id).is_finite(),
                "node {} unreachable",
                n.id
            );
        }
    }

    #[test]
    fn network_distance_at_least_euclidean() {
        let (plan, g) = office();
        for (i, j) in [(0usize, 5usize), (3, 22), (10, 29), (7, 7)] {
            let pa = plan.rooms()[i].center();
            let pb = plan.rooms()[j].center();
            let a = g.project(pa);
            let b = g.project(pb);
            let net = g.network_distance(a, b);
            let eucl = pa.distance(pb);
            assert!(
                net + 1e-6 >= eucl,
                "network {net} < euclidean {eucl} for rooms {i},{j}"
            );
        }
    }

    #[test]
    fn same_edge_direct_distance() {
        let (_, g) = office();
        // Two positions on the same hallway edge.
        let a = g.project(Point2::new(2.0, 10.0));
        let b = g.project(Point2::new(4.0, 10.0));
        if a.edge == b.edge {
            let d = g.network_distance(a, b);
            assert!((d - 2.0).abs() < 1e-6, "got {d}");
        }
    }

    #[test]
    fn path_reconstruction_matches_distance() {
        let (plan, g) = office();
        let from = g.project(plan.rooms()[2].center());
        for target in [5usize, 12, 25, 29] {
            let to = g.project(plan.rooms()[target].center());
            let sp = g.shortest_paths_from(from);
            let d = sp.distance_to(&g, to);
            let path = sp.path_to(&g, to).expect("reachable");
            assert!(
                (path.length() - d).abs() < 1e-6,
                "path length {} != distance {d}",
                path.length()
            );
            // Path starts and ends at the right points.
            assert!(g.point_of(path.start()).approx_eq(g.point_of(from)));
            assert!(g.point_of(path.end()).approx_eq(g.point_of(to)));
        }
    }

    #[test]
    fn path_pos_at_is_monotonic_along_route() {
        let (plan, g) = office();
        let from = g.project(plan.rooms()[0].center());
        let to = g.project(plan.rooms()[29].center());
        let path = g.shortest_paths_from(from).path_to(&g, to).unwrap();
        let mut prev_point = g.point_of(path.start());
        let mut travelled = 0.0;
        let step = path.length() / 50.0;
        for i in 1..=50 {
            let pos = path.pos_at(i as f64 * step);
            let pt = g.point_of(pos);
            let hop = prev_point.distance(pt);
            travelled += hop;
            // Each hop along the path is no longer than the arc step.
            assert!(hop <= step + 1e-6, "hop {hop} > step {step}");
            prev_point = pt;
        }
        // Total Euclidean polyline is close to (and never exceeds) the
        // network length.
        assert!(travelled <= path.length() + 1e-6);
        assert!(travelled > path.length() * 0.7);
    }

    #[test]
    fn unreachable_positions_are_infinite_and_pathless() {
        // Two disjoint buildings can't exist in one validated plan, so
        // construct a disconnected graph directly from two tiny plans'
        // pieces by querying across a room whose door link we never take:
        // instead, test the API contract on a single-edge sub-position via
        // an empty-adjacency node. Simplest honest setup: build a plan,
        // then ask for a path from an edge to itself (reachable) and
        // verify that distance_to on a *fresh* unreachable node map yields
        // infinity by zeroing the source edge. We emulate unreachability
        // by querying node distances of a node that Dijkstra never
        // relaxed: the ShortestPaths of an isolated single-edge graph.
        let mut b = ripq_floorplan::FloorPlanBuilder::new();
        let h0 = b.add_hallway(ripq_geom::Rect::new(0.0, 0.0, 10.0, 2.0), "H0");
        let r = b.add_room(ripq_geom::Rect::new(0.0, 2.0, 5.0, 5.0), "R");
        b.add_door(ripq_geom::Point2::new(2.5, 2.0), r, h0);
        let plan = b.build().unwrap();
        let g = build_walking_graph(&plan);
        // Everything reachable here; contract checks:
        let from = g.project(Point2::new(1.0, 1.0));
        let sp = g.shortest_paths_from(from);
        for n in g.nodes() {
            assert!(sp.node_distance(n.id).is_finite());
        }
        assert_eq!(sp.source().edge, from.edge);
        // path_to to the source itself is empty but Some.
        let p = sp.path_to(&g, from).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn equal_distance_frontier_pops_smallest_node_first() {
        // Regression pin for the HeapEntry tie-break: the distance field
        // is compared reversed (min-heap on a max-heap), and the node id
        // must be reversed the same way, or equal-distance frontiers pop
        // largest-id-first and path reconstruction picks tie routes
        // nondeterministically with respect to insertion order.
        let mut heap = BinaryHeap::new();
        for raw in [7u32, 3, 11, 5] {
            heap.push(HeapEntry {
                dist: 1.0,
                node: NodeId::new(raw),
            });
        }
        heap.push(HeapEntry {
            dist: 0.5,
            node: NodeId::new(9),
        });
        heap.push(HeapEntry {
            dist: 2.0,
            node: NodeId::new(0),
        });
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop())
            .map(|e| e.node.raw())
            .collect();
        assert_eq!(order, vec![9, 3, 5, 7, 11, 0]);
    }

    #[test]
    fn heap_entry_ordering_is_antisymmetric() {
        // `a.cmp(b)` and `b.cmp(a)` must be exact opposites even on
        // distance ties — the asymmetric form violated this, which is
        // undefined behaviourally for BinaryHeap ordering.
        let a = HeapEntry {
            dist: 1.0,
            node: NodeId::new(2),
        };
        let b = HeapEntry {
            dist: 1.0,
            node: NodeId::new(7),
        };
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        assert_eq!(
            a.cmp(&b),
            Ordering::Greater,
            "smaller id sorts greater (pops first)"
        );
    }

    #[test]
    fn truncated_dijkstra_matches_full_tree_on_target_edge() {
        let (plan, g) = office();
        let from = g.project(plan.rooms()[1].center());
        let full = ShortestPaths::from_pos(&g, from);
        for target in [0usize, 8, 19, 27] {
            let to = g.project(plan.rooms()[target].center());
            let (trunc, settled) = ShortestPaths::from_pos_until_edge(&g, from, to.edge);
            assert!(settled as usize <= g.nodes().len());
            assert_eq!(
                trunc.distance_to(&g, to).to_bits(),
                full.distance_to(&g, to).to_bits(),
                "truncated distance must be bit-identical"
            );
            let pf = full.path_to(&g, to).expect("reachable");
            let pt = trunc.path_to(&g, to).expect("reachable");
            assert_eq!(pf.legs(), pt.legs(), "truncated path must be identical");
        }
    }

    #[test]
    fn cache_memoizes_and_matches_fresh_dijkstra() {
        let (plan, g) = office();
        let cache = ShortestPathCache::new();
        let from = g.project(plan.rooms()[3].center());
        let to = g.project(plan.rooms()[21].center());
        assert!(cache.is_empty());
        let first = cache.paths(&g, from);
        let second = cache.paths(&g, from);
        assert!(Arc::ptr_eq(&first, &second), "second lookup is memoized");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), SpCacheStats { hits: 1, misses: 1 });
        let fresh = ShortestPaths::from_pos(&g, from);
        assert_eq!(first.distance_to(&g, to), fresh.distance_to(&g, to));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let (plan, g) = office();
        let cache = ShortestPathCache::new();
        let sources: Vec<GraphPos> = (0..8)
            .map(|i| g.project(plan.rooms()[i * 3].center()))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (cache, g, sources) = (&cache, &g, &sources);
                scope.spawn(move || {
                    for &s in sources {
                        let sp = cache.paths(g, s);
                        assert!(sp.node_distance(g.nodes()[0].id).is_finite());
                    }
                });
            }
        });
        assert!(cache.len() <= sources.len());
    }

    #[test]
    fn same_edge_path_is_single_leg() {
        let (_, g) = office();
        let a = g.project(Point2::new(2.0, 10.0));
        let b = g.project(Point2::new(6.0, 10.0));
        if a.edge == b.edge {
            let path = g.shortest_paths_from(a).path_to(&g, b).unwrap();
            assert_eq!(path.legs().len(), 1);
            assert!((path.length() - 4.0).abs() < 1e-6);
        }
    }
}
