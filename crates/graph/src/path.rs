//! Explicit paths on the walking graph, parameterized by arc length.
//!
//! The simulator's true-trace generator makes objects "walk along the
//! shortest path on the indoor walking graph from its current location to
//! the destination node" (§5.1). [`Path`] is that route: an ordered list of
//! edge traversals supporting constant-time-ish `pos_at(distance)` lookups
//! as the object advances second by second.

use crate::{EdgeId, GraphPos, WalkingGraph};
use serde::{Deserialize, Serialize};

/// One traversal of (part of) an edge, from arc offset `from` to `to`
/// (either direction).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLeg {
    /// The edge traversed.
    pub edge: EdgeId,
    /// Start offset on the edge.
    pub from: f64,
    /// End offset on the edge.
    pub to: f64,
}

impl PathLeg {
    /// Arc length of this leg.
    #[inline]
    pub fn length(&self) -> f64 {
        (self.to - self.from).abs()
    }
}

/// A route between two graph positions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    legs: Vec<PathLeg>,
    /// Cumulative length *before* each leg; `cum[i]` = distance travelled
    /// when leg `i` starts.
    cum: Vec<f64>,
    length: f64,
    start: GraphPos,
    end: GraphPos,
}

impl Path {
    /// A path that stays within a single edge.
    pub(crate) fn single_leg(_graph: &WalkingGraph, edge: EdgeId, from: f64, to: f64) -> Path {
        let leg = PathLeg { edge, from, to };
        Path {
            cum: vec![0.0],
            length: leg.length(),
            legs: vec![leg],
            start: GraphPos::new(edge, from),
            end: GraphPos::new(edge, to),
        }
    }

    /// Assembles a path from raw `(edge, from, to)` legs.
    pub(crate) fn from_legs(
        _graph: &WalkingGraph,
        start: GraphPos,
        end: GraphPos,
        raw: Vec<(EdgeId, f64, f64)>,
    ) -> Path {
        let legs: Vec<PathLeg> = raw
            .into_iter()
            .map(|(edge, from, to)| PathLeg { edge, from, to })
            .collect();
        let mut cum = Vec::with_capacity(legs.len());
        let mut acc = 0.0;
        for leg in &legs {
            cum.push(acc);
            acc += leg.length();
        }
        if legs.is_empty() {
            cum.push(0.0);
        }
        Path {
            legs,
            cum,
            length: acc,
            start,
            end,
        }
    }

    /// Total arc length of the route.
    #[inline]
    pub fn length(&self) -> f64 {
        self.length
    }

    /// The legs of the route, in travel order.
    #[inline]
    pub fn legs(&self) -> &[PathLeg] {
        &self.legs
    }

    /// Position where the route starts.
    #[inline]
    pub fn start(&self) -> GraphPos {
        self.start
    }

    /// Position where the route ends.
    #[inline]
    pub fn end(&self) -> GraphPos {
        self.end
    }

    /// The graph position after travelling `dist` along the route
    /// (clamped to `[0, length]`).
    pub fn pos_at(&self, dist: f64) -> GraphPos {
        if self.legs.is_empty() {
            return self.start;
        }
        if dist <= 0.0 {
            return self.start;
        }
        if dist >= self.length {
            return self.end;
        }
        // Find the leg containing `dist`.
        let i = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&dist).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let leg = &self.legs[i];
        let into = dist - self.cum[i];
        let offset = if leg.to >= leg.from {
            leg.from + into
        } else {
            leg.from - into
        };
        GraphPos::new(leg.edge, offset)
    }

    /// `true` when the route has zero length.
    pub fn is_empty(&self) -> bool {
        self.length <= 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_walking_graph;
    use ripq_floorplan::{office_building, OfficeParams};

    #[test]
    fn pos_at_endpoints() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let from = g.project(plan.rooms()[1].center());
        let to = g.project(plan.rooms()[20].center());
        let path = g.shortest_paths_from(from).path_to(&g, to).unwrap();
        assert_eq!(path.pos_at(-1.0), path.start());
        assert_eq!(path.pos_at(path.length() + 5.0), path.end());
    }

    #[test]
    fn cumulative_leg_lengths_sum_to_total() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let from = g.project(plan.rooms()[0].center());
        let to = g.project(plan.rooms()[29].center());
        let path = g.shortest_paths_from(from).path_to(&g, to).unwrap();
        let total: f64 = path.legs().iter().map(PathLeg::length).sum();
        assert!((total - path.length()).abs() < 1e-9);
        assert!(!path.is_empty());
    }

    #[test]
    fn zero_length_path_is_empty() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let from = g.project(plan.rooms()[0].center());
        let path = g.shortest_paths_from(from).path_to(&g, from).unwrap();
        assert!(path.is_empty());
        assert_eq!(path.pos_at(0.0), from);
    }
}
