//! Construction of the walking graph from a floor plan.

use crate::{Edge, EdgeId, EdgeKind, Node, NodeId, NodeKind, Polyline, WalkingGraph};
use ripq_floorplan::FloorPlan;
use ripq_geom::Point2;
use std::collections::HashMap;

/// Positions closer than this (per axis) merge into one node.
const SNAP: f64 = 1e-6;

fn snap_key(p: Point2) -> (i64, i64) {
    ((p.x / SNAP).round() as i64, (p.y / SNAP).round() as i64)
}

#[derive(Default)]
struct GraphAccum {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    by_pos: HashMap<(i64, i64), NodeId>,
}

impl GraphAccum {
    /// Gets or creates the node at `p`. On a duplicate position, a
    /// `Junction` kind upgrades a plain hallway kind (crossings win over
    /// endpoints), but never overwrites a door portal or room node.
    fn node_at(&mut self, p: Point2, kind: NodeKind) -> NodeId {
        if let Some(&id) = self.by_pos.get(&snap_key(p)) {
            let existing = &mut self.nodes[id.index()];
            let upgrade = match (existing.kind, kind) {
                (NodeKind::HallwayEnd(_), NodeKind::Junction) => true,
                (NodeKind::HallwayEnd(_), NodeKind::DoorPortal(_)) => true,
                (NodeKind::Junction, NodeKind::DoorPortal(_)) => false,
                _ => false,
            };
            if upgrade {
                existing.kind = kind;
            }
            return id;
        }
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            position: p,
            kind,
        });
        self.by_pos.insert(snap_key(p), id);
        id
    }

    fn add_edge(&mut self, a: NodeId, b: NodeId, kind: EdgeKind, points: Vec<Point2>) {
        // Drop consecutive duplicate waypoints so polylines stay clean.
        let mut pts: Vec<Point2> = Vec::with_capacity(points.len());
        for p in points {
            if pts.last().is_none_or(|l| !l.approx_eq(p)) {
                pts.push(p);
            }
        }
        if pts.len() < 2 {
            return; // degenerate edge: both ends coincide
        }
        let id = EdgeId::new(self.edges.len() as u32);
        self.edges.push(Edge {
            id,
            a,
            b,
            kind,
            geometry: Polyline::new(pts),
        });
    }
}

/// Builds the indoor walking graph of a validated floor plan.
///
/// Per §4.2 of the paper: hallway centerlines become edge chains with nodes
/// at dead ends, crossings and door projections; each room contributes a
/// room-center node linked through its door(s). The resulting graph "can
/// represent any accessible path in the environment".
pub fn build_walking_graph(plan: &FloorPlan) -> WalkingGraph {
    let mut acc = GraphAccum::default();

    // Crossing points between hallway pairs.
    let crossings = plan.hallway_crossings();

    // 1. Hallway chains.
    for hall in plan.hallways() {
        let line = hall.centerline();
        // Stations: (offset, node kind) along the centerline.
        let mut stations: Vec<(f64, NodeKind)> = vec![
            (0.0, NodeKind::HallwayEnd(hall.id())),
            (line.length(), NodeKind::HallwayEnd(hall.id())),
        ];
        for (a, b, c) in &crossings {
            if *a == hall.id() || *b == hall.id() {
                stations.push((line.project_offset(*c), NodeKind::Junction));
            }
        }
        for door in plan.doors_of_hallway(hall.id()) {
            stations.push((
                line.project_offset(door.position()),
                NodeKind::DoorPortal(door.id()),
            ));
        }
        stations.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite offsets"));
        // Merge stations that coincide; junctions take precedence so that a
        // door aligned with a crossing still yields one junction node.
        let mut merged: Vec<(f64, NodeKind)> = Vec::with_capacity(stations.len());
        for (off, kind) in stations {
            match merged.last_mut() {
                Some((last_off, last_kind)) if (off - *last_off).abs() <= SNAP => {
                    if matches!(kind, NodeKind::Junction) {
                        *last_kind = kind;
                    }
                }
                _ => merged.push((off, kind)),
            }
        }
        // Nodes + chain edges.
        let node_ids: Vec<NodeId> = merged
            .iter()
            .map(|&(off, kind)| acc.node_at(line.point_at(off), kind))
            .collect();
        for (w, ids) in merged.windows(2).zip(node_ids.windows(2)) {
            acc.add_edge(
                ids[0],
                ids[1],
                EdgeKind::Hallway(hall.id()),
                vec![line.point_at(w[0].0), line.point_at(w[1].0)],
            );
        }
    }

    // 1b. Junction links: when two crossing hallways have different
    // centerline projections of the crossing point (a narrow corridor
    // meeting a wide hall without reaching its centerline), bridge the two
    // chain nodes so the network stays connected.
    for (a, b, c) in &crossings {
        let pa = plan.hallway(*a).project_to_centerline(*c);
        let pb = plan.hallway(*b).project_to_centerline(*c);
        if pa.approx_eq(pb) {
            continue;
        }
        let na = *acc
            .by_pos
            .get(&snap_key(pa))
            .expect("crossing station was added to chain");
        let nb = *acc
            .by_pos
            .get(&snap_key(pb))
            .expect("crossing station was added to chain");
        if na != nb {
            acc.add_edge(na, nb, EdgeKind::Hallway(*a), vec![pa, pb]);
        }
    }

    // 2. Door links and room nodes.
    let mut room_nodes: HashMap<ripq_floorplan::RoomId, NodeId> = HashMap::new();
    for door in plan.doors() {
        let hall = plan.hallway(door.hallway());
        let portal_pos = hall.project_to_centerline(door.position());
        let portal = acc.node_at(portal_pos, NodeKind::DoorPortal(door.id()));
        let room = plan.room(door.room());
        let room_node = *room_nodes
            .entry(room.id())
            .or_insert_with(|| acc.node_at(room.center(), NodeKind::Room(room.id())));
        acc.add_edge(
            portal,
            room_node,
            EdgeKind::DoorLink {
                door: door.id(),
                room: room.id(),
            },
            vec![portal_pos, door.position(), room.center()],
        );
    }

    // 3. Adjacency.
    let mut adjacency = vec![Vec::new(); acc.nodes.len()];
    for e in &acc.edges {
        adjacency[e.a.index()].push(e.id);
        adjacency[e.b.index()].push(e.id);
    }

    let room_nodes_dense: Vec<NodeId> = plan.rooms().iter().map(|r| room_nodes[&r.id()]).collect();

    WalkingGraph {
        nodes: acc.nodes,
        edges: acc.edges,
        adjacency,
        room_nodes: room_nodes_dense,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, FloorPlanBuilder, OfficeParams};
    use ripq_geom::Rect;

    fn office() -> WalkingGraph {
        build_walking_graph(&office_building(&OfficeParams::default()).unwrap())
    }

    #[test]
    fn office_graph_is_connected() {
        let g = office();
        assert!(g.is_connected());
        assert!(!g.nodes().is_empty());
        assert!(!g.edges().is_empty());
    }

    #[test]
    fn one_room_node_per_room() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let room_nodes: Vec<_> = g.nodes().iter().filter(|n| n.kind.is_room()).collect();
        assert_eq!(room_nodes.len(), plan.rooms().len());
        // Each room node sits at the room center and has exactly one door
        // link in the default office (one door per room).
        for room in plan.rooms() {
            let n = g.room_node(room.id());
            assert!(g.node(n).position.approx_eq(room.center()));
            assert_eq!(g.degree(n), room.doors().len());
        }
    }

    #[test]
    fn junctions_where_connector_crosses() {
        let g = office();
        let junctions = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Junction))
            .count();
        assert_eq!(junctions, 3, "connector crosses 3 horizontal hallways");
        // Junction nodes have degree 4 (two horizontal sides + two vertical
        // sides) except the bottom/top crossing where the connector ends:
        // there the vertical side count is 1.
        for n in g.nodes() {
            if matches!(n.kind, NodeKind::Junction) {
                assert!(g.degree(n.id) >= 3, "junction degree >= 3");
            }
        }
    }

    #[test]
    fn door_portals_shared_by_facing_rooms() {
        // Rooms above and below a hallway share door x positions in the
        // office generator, so their portals coincide: portal degree is 4
        // (two hallway sides + two door links).
        let g = office();
        let portal_degrees: Vec<usize> = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::DoorPortal(_)))
            .map(|n| g.degree(n.id))
            .collect();
        assert!(!portal_degrees.is_empty());
        assert!(portal_degrees.iter().all(|&d| d >= 3));
        assert!(portal_degrees.contains(&4));
    }

    #[test]
    fn partial_overlap_crossings_stay_connected() {
        // A narrow corridor dips 1 m into a wide hall without reaching its
        // centerline: the two projection points differ and must be bridged
        // by a junction link.
        let mut b = FloorPlanBuilder::new();
        let wide = b.add_hallway(Rect::new(0.0, 0.0, 40.0, 6.0), "wide");
        let narrow = b.add_hallway(Rect::new(18.0, 5.0, 4.0, 15.0), "narrow");
        let r = b.add_room(Rect::new(8.0, 8.0, 10.0, 8.0), "R");
        b.add_door(ripq_geom::Point2::new(18.0, 10.0), r, narrow);
        let plan = b.build().unwrap();
        let g = build_walking_graph(&plan);
        assert!(g.is_connected(), "junction link must bridge the chains");
        // Walking from the wide hall into the narrow one is possible.
        let a = g.project(ripq_geom::Point2::new(2.0, 3.0));
        let bpos = g.project(ripq_geom::Point2::new(20.0, 18.0));
        let d = g.network_distance(a, bpos);
        assert!(d.is_finite());
        assert!(d > 20.0 && d < 60.0, "distance {d}");
        let _ = wide;
    }

    #[test]
    fn network_distance_straight_hallway() {
        // Single hallway, two rooms; distance along the centerline.
        let mut b = FloorPlanBuilder::new();
        let h = b.add_hallway(Rect::new(0.0, 9.0, 40.0, 2.0), "H0");
        let r1 = b.add_room(Rect::new(0.0, 1.0, 10.0, 8.0), "R0");
        let r2 = b.add_room(Rect::new(30.0, 1.0, 10.0, 8.0), "R1");
        b.add_door(ripq_geom::Point2::new(5.0, 9.0), r1, h);
        b.add_door(ripq_geom::Point2::new(35.0, 9.0), r2, h);
        let plan = b.build().unwrap();
        let g = build_walking_graph(&plan);

        // Distance between the two door portals = 30 m along the hallway.
        let p1 = g.project(ripq_geom::Point2::new(5.0, 10.0));
        let p2 = g.project(ripq_geom::Point2::new(35.0, 10.0));
        let d = g.network_distance(p1, p2);
        assert!((d - 30.0).abs() < 1e-6, "got {d}");

        // Room-center to room-center: 30 m hallway + 2 × (1 m door drop +
        // 4 m into the room) = 40 m.
        let c1 = g.project(plan.room(r1).center());
        let c2 = g.project(plan.room(r2).center());
        let d = g.network_distance(c1, c2);
        assert!((d - 40.0).abs() < 1e-6, "got {d}");
    }

    #[test]
    fn total_edge_length_reasonable() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let hall_len: f64 = plan.total_centerline_length();
        let total = g.total_edge_length();
        // Hallway chains cover the centerlines; door links add more.
        assert!(total > hall_len);
        assert!(total < hall_len + plan.rooms().len() as f64 * 10.0);
    }

    #[test]
    fn projection_of_room_interior_lands_on_door_link() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let room = &plan.rooms()[0];
        let pos = g.project(room.center());
        let e = g.edge(pos.edge);
        assert!(
            matches!(e.kind, EdgeKind::DoorLink { room: r, .. } if r == room.id()),
            "room center projects onto its own door link"
        );
    }
}
