//! Walking-graph edges and their polyline geometry.

use crate::{EdgeId, NodeId};
use ripq_floorplan::{DoorId, HallwayId, RoomId};
use ripq_geom::{Point2, Segment};
use serde::{Deserialize, Serialize};

/// What an edge runs through in the floor plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// A stretch of hallway centerline.
    Hallway(HallwayId),
    /// The link from a door portal, through the door, to the room center.
    DoorLink {
        /// The door the link passes through.
        door: DoorId,
        /// The room the link ends in.
        room: RoomId,
    },
}

impl EdgeKind {
    /// `true` for hallway edges.
    #[inline]
    pub fn is_hallway(&self) -> bool {
        matches!(self, EdgeKind::Hallway(_))
    }
}

/// A piecewise-linear curve parameterized by arc length.
///
/// Hallway edges are straight (2 waypoints); door-link edges bend at the
/// door (3 waypoints: portal → door → room center). Offsets are arc lengths
/// from the first waypoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Point2>,
    /// Cumulative arc length at each waypoint; `cum[0] = 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Creates a polyline through `points` (at least two).
    pub fn new(points: Vec<Point2>) -> Self {
        debug_assert!(points.len() >= 2, "polyline needs >= 2 points");
        let mut cum = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        cum.push(0.0);
        for w in points.windows(2) {
            acc += w[0].distance(w[1]);
            cum.push(acc);
        }
        Polyline { points, cum }
    }

    /// Total arc length.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("non-empty")
    }

    /// The waypoints.
    #[inline]
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Point at arc length `offset` (clamped to `[0, length]`).
    pub fn point_at(&self, offset: f64) -> Point2 {
        let len = self.length();
        if offset <= 0.0 || len <= ripq_geom::EPSILON {
            return self.points[0];
        }
        if offset >= len {
            return *self.points.last().expect("non-empty");
        }
        // Find the segment containing `offset`.
        let i = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&offset).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let seg_len = self.cum[i + 1] - self.cum[i];
        let t = if seg_len <= ripq_geom::EPSILON {
            0.0
        } else {
            (offset - self.cum[i]) / seg_len
        };
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// Arc-length offset of the point on the polyline closest to `p`,
    /// together with the squared Euclidean distance to it.
    pub fn project(&self, p: Point2) -> (f64, f64) {
        let mut best = (0.0, f64::INFINITY);
        for (i, w) in self.points.windows(2).enumerate() {
            let seg = Segment::new(w[0], w[1]);
            let off = seg.project_offset(p);
            let d2 = seg.point_at(off).distance_sq(p);
            if d2 < best.1 {
                best = (self.cum[i] + off, d2);
            }
        }
        best
    }
}

/// An edge of the indoor walking graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// This edge's identifier (dense index).
    pub id: EdgeId,
    /// Node at offset 0.
    pub a: NodeId,
    /// Node at offset `length`.
    pub b: NodeId,
    /// What the edge runs through.
    pub kind: EdgeKind,
    /// The edge's geometry.
    pub geometry: Polyline,
}

impl Edge {
    /// Arc length of the edge.
    #[inline]
    pub fn length(&self) -> f64 {
        self.geometry.length()
    }

    /// The 2-D point at arc length `offset` from node `a`.
    #[inline]
    pub fn point_at(&self, offset: f64) -> Point2 {
        self.geometry.point_at(offset)
    }

    /// The node at the other end from `n` (`None` if `n` is not an end).
    pub fn other_end(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Offset of node `n` on this edge (0 for `a`, `length` for `b`).
    pub fn offset_of(&self, n: NodeId) -> Option<f64> {
        if n == self.a {
            Some(0.0)
        } else if n == self.b {
            Some(self.length())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn straight_polyline_behaves_like_segment() {
        let pl = Polyline::new(vec![p(0.0, 0.0), p(10.0, 0.0)]);
        assert_eq!(pl.length(), 10.0);
        assert_eq!(pl.point_at(4.0), p(4.0, 0.0));
        assert_eq!(pl.point_at(-1.0), p(0.0, 0.0));
        assert_eq!(pl.point_at(11.0), p(10.0, 0.0));
    }

    #[test]
    fn bent_polyline_arclength() {
        // Portal (5,10) → door (5,9) → room center (5,5): lengths 1 + 4.
        let pl = Polyline::new(vec![p(5.0, 10.0), p(5.0, 9.0), p(5.0, 5.0)]);
        assert_eq!(pl.length(), 5.0);
        assert!(pl.point_at(0.5).approx_eq(p(5.0, 9.5)));
        assert!(pl.point_at(1.0).approx_eq(p(5.0, 9.0)));
        assert!(pl.point_at(3.0).approx_eq(p(5.0, 7.0)));
    }

    #[test]
    fn l_shaped_polyline() {
        let pl = Polyline::new(vec![p(0.0, 0.0), p(3.0, 0.0), p(3.0, 4.0)]);
        assert_eq!(pl.length(), 7.0);
        assert!(pl.point_at(3.0).approx_eq(p(3.0, 0.0)));
        assert!(pl.point_at(5.0).approx_eq(p(3.0, 2.0)));
    }

    #[test]
    fn projection_picks_nearest_segment() {
        let pl = Polyline::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0)]);
        let (off, d2) = pl.project(p(10.5, 3.0));
        assert!((off - 13.0).abs() < 1e-9);
        assert!((d2 - 0.25).abs() < 1e-9);
        let (off, _) = pl.project(p(2.0, -1.0));
        assert!((off - 2.0).abs() < 1e-9);
    }

    #[test]
    fn edge_other_end_and_offset() {
        let e = Edge {
            id: EdgeId::new(0),
            a: NodeId::new(1),
            b: NodeId::new(2),
            kind: EdgeKind::Hallway(HallwayId::new(0)),
            geometry: Polyline::new(vec![p(0.0, 0.0), p(10.0, 0.0)]),
        };
        assert_eq!(e.other_end(NodeId::new(1)), Some(NodeId::new(2)));
        assert_eq!(e.other_end(NodeId::new(2)), Some(NodeId::new(1)));
        assert_eq!(e.other_end(NodeId::new(3)), None);
        assert_eq!(e.offset_of(NodeId::new(1)), Some(0.0));
        assert_eq!(e.offset_of(NodeId::new(2)), Some(10.0));
        assert_eq!(e.offset_of(NodeId::new(9)), None);
    }

    proptest! {
        #[test]
        fn point_at_projection_roundtrip(
            x1 in -20.0..20.0f64, y1 in -20.0..20.0f64,
            x2 in -20.0..20.0f64, y2 in -20.0..20.0f64,
            x3 in -20.0..20.0f64, y3 in -20.0..20.0f64,
            t in 0.0..1.0f64,
        ) {
            let pl = Polyline::new(vec![p(x1, y1), p(x2, y2), p(x3, y3)]);
            prop_assume!(pl.length() > 0.1);
            let off = t * pl.length();
            let pt = pl.point_at(off);
            let (proj_off, d2) = pl.project(pt);
            // Projecting a point on the polyline lands back on it.
            prop_assert!(d2 < 1e-9);
            // And at a position mapping to the same 2-D point (offset may
            // differ where the polyline self-overlaps).
            prop_assert!(pl.point_at(proj_off).distance(pt) < 1e-6);
        }
    }
}
