//! The `APtoObjHT` hash table of the paper (§4.2).
//!
//! "A hash table APtoObjHT is maintained in our system with the key to be
//! the coordinates of an anchor point ap_j and returned value the list of
//! each object and its probability at the anchor point ⟨oᵢ, pᵢ(ap_j)⟩."
//!
//! We key by [`AnchorId`] instead of raw coordinates (ids are bijective
//! with coordinates and hash exactly), and additionally maintain the
//! inverse view (object → its anchor distribution) because both query
//! evaluation (anchor → objects) and accuracy metrics (object → anchors)
//! need fast access.

use crate::AnchorId;
use std::collections::BTreeMap;

/// Bidirectional anchor ↔ object probability index, generic over the
/// object key type (RIPQ instantiates it with its `ObjectId`).
///
/// Both views are ordered maps: every iteration — [`Self::objects`] in
/// particular — visits keys in their natural order, so downstream
/// consumers (PTkNN sampling, occupancy sums) behave identically across
/// runs with no per-call-site sorting.
#[derive(Debug, Clone)]
pub struct AnchorObjectIndex<K> {
    by_anchor: BTreeMap<AnchorId, Vec<(K, f64)>>,
    by_object: BTreeMap<K, Vec<(AnchorId, f64)>>,
}

impl<K> Default for AnchorObjectIndex<K> {
    fn default() -> Self {
        AnchorObjectIndex {
            by_anchor: BTreeMap::new(),
            by_object: BTreeMap::new(),
        }
    }
}

impl<K: Copy + Ord> AnchorObjectIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the distribution of `object` with `dist`.
    ///
    /// Entries with non-positive probability are dropped. Any previous
    /// distribution of the object is removed from the anchor side first, so
    /// repeated preprocessing runs never leave stale probabilities behind.
    pub fn set_object(&mut self, object: K, dist: Vec<(AnchorId, f64)>) {
        self.remove_object(&object);
        let dist: Vec<(AnchorId, f64)> = dist.into_iter().filter(|&(_, p)| p > 0.0).collect();
        for &(anchor, p) in &dist {
            self.by_anchor.entry(anchor).or_default().push((object, p));
        }
        if !dist.is_empty() {
            self.by_object.insert(object, dist);
        }
    }

    /// Removes an object's distribution entirely.
    pub fn remove_object(&mut self, object: &K) {
        if let Some(old) = self.by_object.remove(object) {
            for (anchor, _) in old {
                if let Some(list) = self.by_anchor.get_mut(&anchor) {
                    list.retain(|(k, _)| k != object);
                    if list.is_empty() {
                        self.by_anchor.remove(&anchor);
                    }
                }
            }
        }
    }

    /// The ⟨object, probability⟩ list at an anchor (empty when none).
    pub fn at_anchor(&self, anchor: AnchorId) -> &[(K, f64)] {
        self.by_anchor.get(&anchor).map_or(&[], Vec::as_slice)
    }

    /// An object's anchor distribution, if present.
    pub fn distribution(&self, object: &K) -> Option<&[(AnchorId, f64)]> {
        self.by_object.get(object).map(Vec::as_slice)
    }

    /// Total probability mass currently stored for `object` (0 when absent;
    /// ≈ 1 after a particle-filter run).
    pub fn total_probability(&self, object: &K) -> f64 {
        self.distribution(object)
            .map_or(0.0, |d| d.iter().map(|(_, p)| p).sum())
    }

    /// Iterator over all objects with a stored distribution, in key order.
    pub fn objects(&self) -> impl Iterator<Item = &K> {
        self.by_object.keys()
    }

    /// Number of objects with a stored distribution.
    pub fn object_count(&self) -> usize {
        self.by_object.len()
    }

    /// Number of anchors with at least one entry.
    pub fn anchor_count(&self) -> usize {
        self.by_anchor.len()
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.by_anchor.clear();
        self.by_object.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap(i: u32) -> AnchorId {
        AnchorId::new(i)
    }

    #[test]
    fn set_and_lookup() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 0.25), (ap(1), 0.75)]);
        idx.set_object(2, vec![(ap(1), 1.0)]);

        assert_eq!(idx.at_anchor(ap(0)), &[(1, 0.25)]);
        assert_eq!(idx.at_anchor(ap(1)), &[(1, 0.75), (2, 1.0)]);
        assert!(idx.at_anchor(ap(9)).is_empty());
        assert_eq!(idx.object_count(), 2);
        assert_eq!(idx.anchor_count(), 2);
        assert!((idx.total_probability(&1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replacing_removes_stale_entries() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 1.0)]);
        idx.set_object(1, vec![(ap(5), 1.0)]);
        assert!(idx.at_anchor(ap(0)).is_empty());
        assert_eq!(idx.at_anchor(ap(5)), &[(1, 1.0)]);
        assert_eq!(idx.object_count(), 1);
    }

    #[test]
    fn remove_object_cleans_both_sides() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 0.5), (ap(1), 0.5)]);
        idx.remove_object(&1);
        assert_eq!(idx.object_count(), 0);
        assert_eq!(idx.anchor_count(), 0);
        assert!(idx.distribution(&1).is_none());
    }

    #[test]
    fn zero_probability_entries_dropped() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 0.0), (ap(1), -0.5), (ap(2), 1.0)]);
        assert!(idx.at_anchor(ap(0)).is_empty());
        assert!(idx.at_anchor(ap(1)).is_empty());
        assert_eq!(idx.at_anchor(ap(2)), &[(1, 1.0)]);
    }

    #[test]
    fn empty_distribution_means_absent_object() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![]);
        assert_eq!(idx.object_count(), 0);
        assert_eq!(idx.total_probability(&1), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 1.0)]);
        idx.clear();
        assert_eq!(idx.object_count(), 0);
        assert_eq!(idx.anchor_count(), 0);
    }
}
