//! The `APtoObjHT` hash table of the paper (§4.2).
//!
//! "A hash table APtoObjHT is maintained in our system with the key to be
//! the coordinates of an anchor point ap_j and returned value the list of
//! each object and its probability at the anchor point ⟨oᵢ, pᵢ(ap_j)⟩."
//!
//! We key by [`AnchorId`] instead of raw coordinates (ids are bijective
//! with coordinates and hash exactly), and additionally maintain the
//! inverse view (object → its anchor distribution) because both query
//! evaluation (anchor → objects) and accuracy metrics (object → anchors)
//! need fast access.

use crate::AnchorId;
use std::collections::BTreeMap;

/// Bidirectional anchor ↔ object probability index, generic over the
/// object key type (RIPQ instantiates it with its `ObjectId`).
///
/// Both views are ordered maps: every iteration — [`Self::objects`] in
/// particular — visits keys in their natural order, so downstream
/// consumers (PTkNN sampling, occupancy sums) behave identically across
/// runs with no per-call-site sorting. Per-anchor object lists are kept
/// sorted by object key for the same reason, which also makes the index
/// *order-free*: applying deltas ([`Self::apply_object`],
/// [`Self::retain_objects`]) in any sequence converges to the same
/// structure as a from-scratch rebuild — the invariant the incremental
/// `APtoObjHT` maintenance relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchorObjectIndex<K> {
    by_anchor: BTreeMap<AnchorId, Vec<(K, f64)>>,
    by_object: BTreeMap<K, Vec<(AnchorId, f64)>>,
}

/// What a single [`AnchorObjectIndex::apply_object`] delta did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The object was not present before; its distribution was inserted.
    Inserted,
    /// The object was present with a different distribution; replaced.
    Updated,
    /// The stored distribution is bit-identical to the incoming one; no
    /// structural work was done.
    Unchanged,
}

/// Counters describing one incremental maintenance pass over the index
/// (the `index.delta_*` observability family).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexDeltaStats {
    /// Distributions inserted or replaced ([`DeltaOutcome::Inserted`] /
    /// [`DeltaOutcome::Updated`]).
    pub applied: u64,
    /// Objects dropped because they left the maintained set.
    pub retracted: u64,
    /// Deltas skipped because the stored distribution was bit-identical.
    pub unchanged: u64,
}

impl<K> Default for AnchorObjectIndex<K> {
    fn default() -> Self {
        AnchorObjectIndex {
            by_anchor: BTreeMap::new(),
            by_object: BTreeMap::new(),
        }
    }
}

impl<K: Copy + Ord> AnchorObjectIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the distribution of `object` with `dist`.
    ///
    /// Entries with non-positive probability are dropped. Any previous
    /// distribution of the object is removed from the anchor side first, so
    /// repeated preprocessing runs never leave stale probabilities behind.
    pub fn set_object(&mut self, object: K, dist: Vec<(AnchorId, f64)>) {
        self.remove_object(&object);
        let dist: Vec<(AnchorId, f64)> = dist.into_iter().filter(|&(_, p)| p > 0.0).collect();
        for &(anchor, p) in &dist {
            let list = self.by_anchor.entry(anchor).or_default();
            // Sorted insertion by object key: the list order must be a
            // function of the index *contents*, not of delta arrival
            // order, so incremental maintenance equals a rebuild.
            let at = list.partition_point(|&(k, _)| k < object);
            list.insert(at, (object, p));
        }
        if !dist.is_empty() {
            self.by_object.insert(object, dist);
        }
    }

    /// Applies one incremental delta: replaces `object`'s distribution,
    /// but skips all structural work when the stored distribution is
    /// bit-identical to the incoming one (compared after the same
    /// non-positive-probability filtering [`Self::set_object`] performs).
    ///
    /// Because per-anchor lists are sorted by key, any sequence of
    /// [`Self::apply_object`] / [`Self::remove_object`] calls leaves the
    /// index equal to a from-scratch rebuild of the same final state.
    pub fn apply_object(&mut self, object: K, dist: Vec<(AnchorId, f64)>) -> DeltaOutcome {
        let dist: Vec<(AnchorId, f64)> = dist.into_iter().filter(|&(_, p)| p > 0.0).collect();
        match self.by_object.get(&object) {
            Some(old) if old == &dist => DeltaOutcome::Unchanged,
            Some(_) => {
                self.set_object(object, dist);
                DeltaOutcome::Updated
            }
            None => {
                if dist.is_empty() {
                    return DeltaOutcome::Unchanged;
                }
                self.set_object(object, dist);
                DeltaOutcome::Inserted
            }
        }
    }

    /// Retracts every object whose key fails `keep`, returning how many
    /// were removed. Iteration is in key order (BTreeMap), so the work —
    /// and any observable side effect of it — is deterministic.
    pub fn retain_objects(&mut self, mut keep: impl FnMut(&K) -> bool) -> u64 {
        let stale: Vec<K> = self
            .by_object
            .keys()
            .filter(|k| !keep(k))
            .copied()
            .collect();
        for k in &stale {
            self.remove_object(k);
        }
        stale.len() as u64
    }

    /// Removes an object's distribution entirely.
    pub fn remove_object(&mut self, object: &K) {
        if let Some(old) = self.by_object.remove(object) {
            for (anchor, _) in old {
                if let Some(list) = self.by_anchor.get_mut(&anchor) {
                    list.retain(|(k, _)| k != object);
                    if list.is_empty() {
                        self.by_anchor.remove(&anchor);
                    }
                }
            }
        }
    }

    /// The ⟨object, probability⟩ list at an anchor (empty when none).
    pub fn at_anchor(&self, anchor: AnchorId) -> &[(K, f64)] {
        self.by_anchor.get(&anchor).map_or(&[], Vec::as_slice)
    }

    /// An object's anchor distribution, if present.
    pub fn distribution(&self, object: &K) -> Option<&[(AnchorId, f64)]> {
        self.by_object.get(object).map(Vec::as_slice)
    }

    /// Total probability mass currently stored for `object` (0 when absent;
    /// ≈ 1 after a particle-filter run).
    pub fn total_probability(&self, object: &K) -> f64 {
        self.distribution(object)
            .map_or(0.0, |d| d.iter().map(|(_, p)| p).sum())
    }

    /// Iterator over all objects with a stored distribution, in key order.
    pub fn objects(&self) -> impl Iterator<Item = &K> {
        self.by_object.keys()
    }

    /// Number of objects with a stored distribution.
    pub fn object_count(&self) -> usize {
        self.by_object.len()
    }

    /// Number of anchors with at least one entry.
    pub fn anchor_count(&self) -> usize {
        self.by_anchor.len()
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.by_anchor.clear();
        self.by_object.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap(i: u32) -> AnchorId {
        AnchorId::new(i)
    }

    #[test]
    fn set_and_lookup() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 0.25), (ap(1), 0.75)]);
        idx.set_object(2, vec![(ap(1), 1.0)]);

        assert_eq!(idx.at_anchor(ap(0)), &[(1, 0.25)]);
        assert_eq!(idx.at_anchor(ap(1)), &[(1, 0.75), (2, 1.0)]);
        assert!(idx.at_anchor(ap(9)).is_empty());
        assert_eq!(idx.object_count(), 2);
        assert_eq!(idx.anchor_count(), 2);
        assert!((idx.total_probability(&1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replacing_removes_stale_entries() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 1.0)]);
        idx.set_object(1, vec![(ap(5), 1.0)]);
        assert!(idx.at_anchor(ap(0)).is_empty());
        assert_eq!(idx.at_anchor(ap(5)), &[(1, 1.0)]);
        assert_eq!(idx.object_count(), 1);
    }

    #[test]
    fn remove_object_cleans_both_sides() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 0.5), (ap(1), 0.5)]);
        idx.remove_object(&1);
        assert_eq!(idx.object_count(), 0);
        assert_eq!(idx.anchor_count(), 0);
        assert!(idx.distribution(&1).is_none());
    }

    #[test]
    fn zero_probability_entries_dropped() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 0.0), (ap(1), -0.5), (ap(2), 1.0)]);
        assert!(idx.at_anchor(ap(0)).is_empty());
        assert!(idx.at_anchor(ap(1)).is_empty());
        assert_eq!(idx.at_anchor(ap(2)), &[(1, 1.0)]);
    }

    #[test]
    fn empty_distribution_means_absent_object() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![]);
        assert_eq!(idx.object_count(), 0);
        assert_eq!(idx.total_probability(&1), 0.0);
    }

    #[test]
    fn per_anchor_lists_sorted_regardless_of_insertion_order() {
        let mut fwd: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        let mut rev: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        for k in [1u64, 2, 3] {
            fwd.set_object(k, vec![(ap(0), 0.5)]);
        }
        for k in [3u64, 1, 2] {
            rev.set_object(k, vec![(ap(0), 0.5)]);
        }
        assert_eq!(fwd.at_anchor(ap(0)), rev.at_anchor(ap(0)));
        assert_eq!(fwd, rev);
    }

    #[test]
    fn apply_object_reports_outcomes() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        assert_eq!(
            idx.apply_object(1, vec![(ap(0), 0.5), (ap(1), 0.5)]),
            DeltaOutcome::Inserted
        );
        assert_eq!(
            idx.apply_object(1, vec![(ap(0), 0.5), (ap(1), 0.5)]),
            DeltaOutcome::Unchanged
        );
        // The non-positive filter runs before the comparison, so a delta
        // that only differs by dropped entries is still unchanged.
        assert_eq!(
            idx.apply_object(1, vec![(ap(0), 0.5), (ap(1), 0.5), (ap(2), 0.0)]),
            DeltaOutcome::Unchanged
        );
        assert_eq!(
            idx.apply_object(1, vec![(ap(0), 1.0)]),
            DeltaOutcome::Updated
        );
        assert_eq!(idx.apply_object(2, vec![]), DeltaOutcome::Unchanged);
        assert_eq!(idx.object_count(), 1);
    }

    #[test]
    fn retain_objects_retracts_stale_keys() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        for k in 0u64..5 {
            idx.set_object(k, vec![(ap(k as u32), 1.0)]);
        }
        let retracted = idx.retain_objects(|k| *k % 2 == 0);
        assert_eq!(retracted, 2);
        assert_eq!(idx.objects().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(idx.anchor_count(), 3);
    }

    #[test]
    fn delta_sequence_equals_rebuild() {
        let mut inc: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        inc.apply_object(5, vec![(ap(1), 0.3), (ap(2), 0.7)]);
        inc.apply_object(3, vec![(ap(2), 1.0)]);
        inc.apply_object(5, vec![(ap(2), 1.0)]);
        inc.apply_object(4, vec![(ap(0), 0.9)]);
        inc.remove_object(&3);
        inc.apply_object(1, vec![(ap(2), 0.4)]);

        let mut fresh: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        fresh.set_object(1, vec![(ap(2), 0.4)]);
        fresh.set_object(4, vec![(ap(0), 0.9)]);
        fresh.set_object(5, vec![(ap(2), 1.0)]);
        assert_eq!(inc, fresh);
    }

    #[test]
    fn clear_resets() {
        let mut idx: AnchorObjectIndex<u64> = AnchorObjectIndex::new();
        idx.set_object(1, vec![(ap(0), 1.0)]);
        idx.clear();
        assert_eq!(idx.object_count(), 0);
        assert_eq!(idx.anchor_count(), 0);
    }
}
