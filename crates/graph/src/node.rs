//! Walking-graph nodes.

use crate::NodeId;
use ripq_floorplan::{DoorId, HallwayId, RoomId};
use ripq_geom::Point2;
use serde::{Deserialize, Serialize};

/// What a walking-graph node represents in the floor plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A dead end of a hallway centerline.
    HallwayEnd(HallwayId),
    /// A crossing of two (or more) hallway centerlines.
    Junction,
    /// The projection of a door onto its hallway centerline; the hallway
    /// side of the door link edge.
    DoorPortal(DoorId),
    /// The center of a room; the room side of the door link edge. The
    /// paper's motion model treats particles at room nodes specially
    /// (stay probability 0.9 per second, Algorithm 2 lines 13–15).
    Room(RoomId),
}

impl NodeKind {
    /// `true` for room nodes.
    #[inline]
    pub fn is_room(&self) -> bool {
        matches!(self, NodeKind::Room(_))
    }
}

/// A node of the indoor walking graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's identifier (dense index).
    pub id: NodeId,
    /// Position in the plane.
    pub position: Point2,
    /// What the node represents.
    pub kind: NodeKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Room(RoomId::new(0)).is_room());
        assert!(!NodeKind::Junction.is_room());
        assert!(!NodeKind::DoorPortal(DoorId::new(1)).is_room());
        assert!(!NodeKind::HallwayEnd(HallwayId::new(0)).is_room());
    }
}
