//! Anchor points: the paper's discretization of the walking graph.
//!
//! "We define anchor points as a set AP of predefined points on E with a
//! uniform distance (such as 1 meter) to each other. … After particle
//! filtering is finished for an object oᵢ, every particle of oᵢ is assigned
//! to its nearest anchor point, so that the inferred object location can
//! only be on discrete locations instead of anywhere on E." (§4.2)

use crate::{AnchorId, EdgeId, GraphPos, WalkingGraph};
use ripq_floorplan::{Axis, FloorPlan, Hallway, HallwayId, Location, RoomId};
use ripq_geom::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// A single anchor point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnchorPoint {
    /// This anchor's identifier (dense index).
    pub id: AnchorId,
    /// Graph position of the anchor.
    pub pos: GraphPos,
    /// 2-D point of the anchor.
    pub point: Point2,
    /// Which floor-plan entity the anchor's point lies in.
    pub location: Location,
}

/// The full set of anchor points for a walking graph, with the lookup
/// structures query evaluation needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnchorSet {
    anchors: Vec<AnchorPoint>,
    /// Anchor ids per edge, ordered by increasing offset.
    per_edge: Vec<Vec<AnchorId>>,
    /// Anchor ids whose point lies inside each room (dense by room index).
    per_room: Vec<Vec<AnchorId>>,
    /// Anchor ids whose point lies inside each hallway (dense by hallway
    /// index).
    per_hallway: Vec<Vec<AnchorId>>,
    spacing: f64,
}

impl AnchorSet {
    /// Generates anchors along every edge of `graph` at (approximately)
    /// `spacing` meters apart.
    ///
    /// Each edge receives `max(1, round(len / spacing))` anchors placed at
    /// the midpoints of equal subdivisions, so every edge — including short
    /// door links — is represented by at least one anchor and anchors never
    /// coincide with nodes (which would make them ambiguous between edges).
    pub fn generate(graph: &WalkingGraph, plan: &FloorPlan, spacing: f64) -> Self {
        assert!(spacing > 0.0, "anchor spacing must be positive");
        let mut anchors = Vec::new();
        let mut per_edge = vec![Vec::new(); graph.edges().len()];
        let mut per_room = vec![Vec::new(); plan.rooms().len()];
        let mut per_hallway = vec![Vec::new(); plan.hallways().len()];

        for e in graph.edges() {
            let len = e.length();
            let n = ((len / spacing).round() as usize).max(1);
            let step = len / n as f64;
            for i in 0..n {
                let offset = (i as f64 + 0.5) * step;
                let point = e.point_at(offset);
                let location = plan.locate(point);
                let id = AnchorId::new(anchors.len() as u32);
                anchors.push(AnchorPoint {
                    id,
                    pos: GraphPos::new(e.id, offset),
                    point,
                    location,
                });
                per_edge[e.id.index()].push(id);
                match location {
                    Location::Room(r) => per_room[r.index()].push(id),
                    Location::Hallway(h) => per_hallway[h.index()].push(id),
                    Location::Outside => {}
                }
            }
        }

        AnchorSet {
            anchors,
            per_edge,
            per_room,
            per_hallway,
            spacing,
        }
    }

    /// All anchors, indexable by [`AnchorId::index`].
    #[inline]
    pub fn anchors(&self) -> &[AnchorPoint] {
        &self.anchors
    }

    /// Looks up an anchor.
    #[inline]
    pub fn anchor(&self, id: AnchorId) -> &AnchorPoint {
        &self.anchors[id.index()]
    }

    /// The requested generation spacing.
    #[inline]
    pub fn spacing(&self) -> f64 {
        self.spacing
    }

    /// Anchors on an edge, ordered by increasing offset.
    #[inline]
    pub fn on_edge(&self, e: EdgeId) -> &[AnchorId] {
        &self.per_edge[e.index()]
    }

    /// Anchors inside a room.
    #[inline]
    pub fn in_room(&self, r: RoomId) -> &[AnchorId] {
        &self.per_room[r.index()]
    }

    /// Anchors inside a hallway.
    #[inline]
    pub fn in_hallway(&self, h: HallwayId) -> &[AnchorId] {
        &self.per_hallway[h.index()]
    }

    /// The anchor nearest (by arc length along the same edge) to a graph
    /// position — the snap target of Algorithm 2 line 32.
    pub fn nearest(&self, pos: GraphPos) -> AnchorId {
        let list = &self.per_edge[pos.edge.index()];
        debug_assert!(!list.is_empty(), "every edge has at least one anchor");
        // Binary search over the ordered offsets.
        let mut lo = 0usize;
        let mut hi = list.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.anchors[list[mid].index()].pos.offset < pos.offset {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // The nearest is either list[lo-1] or list[lo].
        let mut best = list[lo.min(list.len() - 1)];
        let mut best_d = (self.anchors[best.index()].pos.offset - pos.offset).abs();
        if lo > 0 {
            let cand = list[lo - 1];
            let d = (self.anchors[cand.index()].pos.offset - pos.offset).abs();
            if d < best_d {
                best = cand;
                best_d = d;
            }
        }
        let _ = best_d;
        best
    }

    /// Hallway anchors covered by a query window's span along the hallway
    /// axis (Algorithm 3 / Fig. 6: "the anchor points which fall within q's
    /// vertical range" — anchors count when the window overlaps the hallway
    /// cross-section at their along-axis coordinate, even though the
    /// centerline itself may lie outside the window).
    pub fn hallway_anchors_in_window(&self, hallway: &Hallway, window: &Rect) -> Vec<AnchorId> {
        let Some(overlap) = hallway.footprint().intersection(window) else {
            return Vec::new();
        };
        let (lo, hi) = match hallway.axis() {
            Axis::Horizontal => (overlap.min().x, overlap.max().x),
            Axis::Vertical => (overlap.min().y, overlap.max().y),
        };
        self.per_hallway[hallway.id().index()]
            .iter()
            .copied()
            .filter(|&a| {
                let p = self.anchors[a.index()].point;
                let c = match hallway.axis() {
                    Axis::Horizontal => p.x,
                    Axis::Vertical => p.y,
                };
                c >= lo && c <= hi
            })
            .collect()
    }

    /// Snaps a full particle/probability cloud to anchors: sums the weight
    /// of all positions mapping to the same anchor. Output pairs are sorted
    /// by anchor id; weights preserve their total.
    pub fn snap_distribution(
        &self,
        positions: impl IntoIterator<Item = (GraphPos, f64)>,
    ) -> Vec<(AnchorId, f64)> {
        let mut acc = DenseAccumulator::new(self.anchors.len());
        for (pos, w) in positions {
            acc.add(self.nearest(pos), w);
        }
        acc.into_sorted()
    }

    /// Kernel-density variant of [`AnchorSet::snap_distribution`]: each
    /// position spreads its weight over the anchors of its edge within
    /// `bandwidth` arc-length meters, using a triangular kernel.
    ///
    /// A raw particle histogram is overconfident — with `Ns = 64`
    /// particles an anchor either gets a multiple of 1/64 or exactly 0.
    /// KDE smoothing is the standard particle→density conversion and
    /// keeps the total mass unchanged. `bandwidth <= 0` falls back to
    /// nearest-anchor snapping.
    pub fn kde_distribution(
        &self,
        positions: impl IntoIterator<Item = (GraphPos, f64)>,
        bandwidth: f64,
    ) -> Vec<(AnchorId, f64)> {
        if bandwidth <= 0.0 {
            return self.snap_distribution(positions);
        }
        let mut acc = DenseAccumulator::new(self.anchors.len());
        // Kernel scratch reused across positions to avoid re-allocating.
        let mut kernel: Vec<(AnchorId, f64)> = Vec::new();
        for (pos, w) in positions {
            let list = &self.per_edge[pos.edge.index()];
            // Collect kernel weights over in-bandwidth anchors.
            kernel.clear();
            let mut total = 0.0;
            for &a in list {
                let d = (self.anchors[a.index()].pos.offset - pos.offset).abs();
                if d < bandwidth {
                    let k = 1.0 - d / bandwidth;
                    kernel.push((a, k));
                    total += k;
                }
            }
            if total <= 0.0 {
                // No anchor in reach (very coarse anchor grids): snap.
                acc.add(self.nearest(pos), w);
            } else {
                for &(a, k) in &kernel {
                    acc.add(a, w * k / total);
                }
            }
        }
        acc.into_sorted()
    }
}

/// Dense weight accumulator used by the snap/KDE conversions.
///
/// Replaces the former per-call `HashMap<AnchorId, f64>`: a flat `f64`
/// slot per anchor plus a first-touch list. Per-anchor sums are built in
/// the exact position-iteration order (f64 addition is not associative,
/// so the order is part of the bit-for-bit determinism contract), and the
/// output is sorted by anchor id like before — only the hashing cost is
/// gone. `AnchorSet` itself stays read-only (`&self`) during conversion,
/// so parallel preprocessing workers share it without synchronization.
struct DenseAccumulator {
    weight: Vec<f64>,
    seen: Vec<bool>,
    /// Touched anchors in first-touch order.
    touched: Vec<AnchorId>,
}

impl DenseAccumulator {
    fn new(anchor_count: usize) -> Self {
        DenseAccumulator {
            weight: vec![0.0; anchor_count],
            seen: vec![false; anchor_count],
            touched: Vec::new(),
        }
    }

    #[inline]
    fn add(&mut self, a: AnchorId, w: f64) {
        let i = a.index();
        if !self.seen[i] {
            self.seen[i] = true;
            self.touched.push(a);
        }
        self.weight[i] += w;
    }

    fn into_sorted(mut self) -> Vec<(AnchorId, f64)> {
        self.touched.sort_unstable();
        self.touched
            .into_iter()
            .map(|a| (a, self.weight[a.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_walking_graph;
    use ripq_floorplan::{office_building, OfficeParams};

    fn setup() -> (FloorPlan, WalkingGraph, AnchorSet) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&g, &plan, 1.0);
        (plan, g, anchors)
    }

    #[test]
    fn every_edge_has_anchors() {
        let (_, g, anchors) = setup();
        for e in g.edges() {
            assert!(
                !anchors.on_edge(e.id).is_empty(),
                "edge {} without anchors",
                e.id
            );
        }
    }

    #[test]
    fn anchor_spacing_close_to_requested() {
        let (_, g, anchors) = setup();
        for e in g.edges() {
            let list = anchors.on_edge(e.id);
            if list.len() < 2 {
                continue;
            }
            for w in list.windows(2) {
                let d = anchors.anchor(w[1]).pos.offset - anchors.anchor(w[0]).pos.offset;
                assert!(d > 0.5 && d < 1.5, "spacing {d} out of range");
            }
        }
    }

    #[test]
    fn anchor_count_tracks_total_length() {
        let (_, g, anchors) = setup();
        let total = g.total_edge_length();
        let n = anchors.anchors().len() as f64;
        assert!(
            (n - total).abs() / total < 0.25,
            "count {n} vs length {total}"
        );
    }

    #[test]
    fn every_room_has_anchors() {
        let (plan, _, anchors) = setup();
        for room in plan.rooms() {
            assert!(
                !anchors.in_room(room.id()).is_empty(),
                "room {} without anchors",
                room.id()
            );
        }
    }

    #[test]
    fn nearest_returns_same_edge_closest() {
        let (_, g, anchors) = setup();
        for e in g.edges().iter().take(10) {
            let len = e.length();
            for f in [0.0, 0.25, 0.5, 0.9, 1.0] {
                let pos = GraphPos::new(e.id, len * f);
                let a = anchors.nearest(pos);
                let got = anchors.anchor(a);
                assert_eq!(got.pos.edge, e.id);
                // No other anchor on the edge is closer.
                for &other in anchors.on_edge(e.id) {
                    let od = (anchors.anchor(other).pos.offset - pos.offset).abs();
                    let gd = (got.pos.offset - pos.offset).abs();
                    assert!(gd <= od + 1e-9);
                }
            }
        }
    }

    #[test]
    fn snap_distribution_preserves_mass() {
        let (_, g, anchors) = setup();
        let e = g.edges()[0].id;
        let len = g.edge(e).length();
        let cloud: Vec<(GraphPos, f64)> = (0..100)
            .map(|i| (GraphPos::new(e, len * i as f64 / 100.0), 0.01))
            .collect();
        let snapped = anchors.snap_distribution(cloud);
        let total: f64 = snapped.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sorted by id, no duplicates.
        for w in snapped.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn window_covering_hallway_center_collects_anchors() {
        let (plan, _, anchors) = setup();
        let h = &plan.hallways()[0];
        let c = h.footprint().center();
        let window = Rect::centered(c, 10.0, 1.0);
        let got = anchors.hallway_anchors_in_window(h, &window);
        assert!(!got.is_empty());
        for a in &got {
            let p = anchors.anchor(*a).point;
            assert!((p.x - c.x).abs() <= 5.0 + 1e-9);
        }
    }

    #[test]
    fn window_touching_only_hallway_edge_still_collects() {
        // The paper's Fig. 6: a window overlapping only part of the hallway
        // width still collects the centerline anchors in its span.
        let (plan, _, anchors) = setup();
        let h = &plan.hallways()[0];
        let fp = h.footprint();
        // Thin window along the top edge of the hallway, off-centerline.
        let window = Rect::new(fp.min().x + 5.0, fp.max().y - 0.2, 8.0, 0.2);
        let got = anchors.hallway_anchors_in_window(h, &window);
        assert!(!got.is_empty(), "off-centerline window must still match");
    }

    #[test]
    fn disjoint_window_collects_nothing() {
        let (plan, _, anchors) = setup();
        let h = &plan.hallways()[0];
        let window = Rect::new(-50.0, -50.0, 10.0, 10.0);
        assert!(anchors.hallway_anchors_in_window(h, &window).is_empty());
    }
}
