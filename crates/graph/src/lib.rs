//! # ripq-graph — indoor walking graph and anchor-point indexing for RIPQ
//!
//! Implements the two "novel models" of the EDBT 2013 paper (§4.2):
//!
//! * **Indoor walking graph model** — a graph `G(N, E)` abstracted from the
//!   regular walking patterns in an indoor space. Hallway centerlines
//!   become chains of edges with nodes at endpoints, hallway crossings and
//!   doors; each room contributes a *room node* at its center linked to the
//!   hallway through its door. Restricting objects and particles to `E`
//!   "greatly simplif\[ies\] the object movement model while … preserving the
//!   inference accuracy of particle filters", and the kNN distance metric is
//!   the shortest network distance on `G` ([`WalkingGraph::network_distance`]).
//!
//! * **Anchor point indexing model** — anchor points discretize the
//!   continuous edges at a uniform spacing (1 m by default). Inferred
//!   object distributions live on anchors, indexed by the
//!   [`AnchorObjectIndex`] hash table (`APtoObjHT` in the paper: anchor →
//!   list of ⟨object, probability⟩).
//!
//! # Example
//!
//! ```
//! use ripq_floorplan::{office_building, OfficeParams};
//! use ripq_graph::{build_walking_graph, AnchorSet};
//!
//! let plan = office_building(&OfficeParams::default()).unwrap();
//! let graph = build_walking_graph(&plan);
//! assert!(graph.is_connected());
//!
//! // Shortest indoor walking distance between two room centers.
//! let a = graph.project(plan.rooms()[0].center());
//! let b = graph.project(plan.rooms()[29].center());
//! let d = graph.network_distance(a, b);
//! assert!(d > plan.rooms()[0].center().distance(plan.rooms()[29].center()));
//!
//! // 1 m anchor points discretize every edge.
//! let anchors = AnchorSet::generate(&graph, &plan, 1.0);
//! assert!(anchors.anchors().len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anchor;
mod builder;
mod edge;
mod graph;
mod ids;
mod index;
mod node;
mod oracle;
mod path;
mod shortest;

pub use anchor::{AnchorPoint, AnchorSet};
pub use builder::build_walking_graph;
pub use edge::{Edge, EdgeKind, Polyline};
pub use graph::{GraphPos, WalkingGraph};
pub use ids::{AnchorId, EdgeId, NodeId};
pub use index::{AnchorObjectIndex, DeltaOutcome, IndexDeltaStats};
pub use node::{Node, NodeKind};
pub use oracle::{
    graph_fingerprint, AnchorScan, DistanceBackend, DistanceOracle, OracleError, OracleStats,
    DEFAULT_LANDMARKS,
};
pub use path::Path;
pub use shortest::{ShortestPathCache, ShortestPaths, SpCacheStats};
