//! The indoor walking graph `G(N, E)`.

use crate::{Edge, EdgeId, Node, NodeId, NodeKind, ShortestPaths};
use ripq_floorplan::RoomId;
use ripq_geom::Point2;
use serde::{Deserialize, Serialize};

/// A position on the walking graph: an edge plus an arc-length offset from
/// the edge's `a` node.
///
/// All object, particle and anchor positions in RIPQ are `GraphPos`es —
/// the paper restricts movement to the edges of `G` (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphPos {
    /// The edge the position lies on.
    pub edge: EdgeId,
    /// Arc length from the edge's `a` node, in `[0, edge.length]`.
    pub offset: f64,
}

impl GraphPos {
    /// Creates a graph position.
    #[inline]
    pub const fn new(edge: EdgeId, offset: f64) -> Self {
        GraphPos { edge, offset }
    }
}

/// The indoor walking graph: nodes, edges and adjacency.
///
/// Build one from a floor plan with [`crate::build_walking_graph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalkingGraph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) edges: Vec<Edge>,
    /// For each node, the edges incident to it.
    pub(crate) adjacency: Vec<Vec<EdgeId>>,
    /// Room center node for each room id (dense by room index).
    pub(crate) room_nodes: Vec<NodeId>,
}

impl WalkingGraph {
    /// All nodes, indexable by [`NodeId::index`].
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges, indexable by [`EdgeId::index`].
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Looks up a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up an edge.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Edges incident to `n`.
    #[inline]
    pub fn edges_at(&self, n: NodeId) -> &[EdgeId] {
        &self.adjacency[n.index()]
    }

    /// Degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// The room-center node of `room`.
    #[inline]
    pub fn room_node(&self, room: RoomId) -> NodeId {
        self.room_nodes[room.index()]
    }

    /// The 2-D point of a graph position.
    pub fn point_of(&self, pos: GraphPos) -> Point2 {
        self.edge(pos.edge).point_at(pos.offset)
    }

    /// Clamps a graph position's offset into the valid range of its edge.
    pub fn clamp_pos(&self, pos: GraphPos) -> GraphPos {
        let len = self.edge(pos.edge).length();
        GraphPos::new(pos.edge, ripq_geom::clamp(pos.offset, 0.0, len))
    }

    /// Projects an arbitrary 2-D point onto the graph: the nearest point on
    /// any edge. Used to snap query points ("the query point is
    /// approximated to the nearest edge", §4.6) and to initialize object
    /// traces.
    pub fn project(&self, p: Point2) -> GraphPos {
        let mut best = (GraphPos::new(EdgeId::new(0), 0.0), f64::INFINITY);
        for e in &self.edges {
            let (off, d2) = e.geometry.project(p);
            if d2 < best.1 {
                best = (GraphPos::new(e.id, off), d2);
            }
        }
        best.0
    }

    /// The node a position coincides with, if its offset is (within
    /// `tol`) at either end of its edge.
    pub fn node_at_pos(&self, pos: GraphPos, tol: f64) -> Option<NodeId> {
        let e = self.edge(pos.edge);
        if pos.offset <= tol {
            Some(e.a)
        } else if pos.offset >= e.length() - tol {
            Some(e.b)
        } else {
            None
        }
    }

    /// Single-source shortest-path distances (Dijkstra) from a graph
    /// position; see [`ShortestPaths`] for point-to-point queries.
    pub fn shortest_paths_from(&self, from: GraphPos) -> ShortestPaths {
        ShortestPaths::from_pos(self, from)
    }

    /// Shortest network distance between two graph positions — the paper's
    /// "minimum indoor walking distance" metric for kNN queries.
    pub fn network_distance(&self, from: GraphPos, to: GraphPos) -> f64 {
        self.shortest_paths_from(from).distance_to(self, to)
    }

    /// Total length of all edges.
    pub fn total_edge_length(&self) -> f64 {
        self.edges.iter().map(Edge::length).sum()
    }

    /// Returns `true` when every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &eid in self.edges_at(n) {
                let other = self.edge(eid).other_end(n).expect("incident edge");
                if !seen[other.index()] {
                    seen[other.index()] = true;
                    count += 1;
                    stack.push(other);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Iterator over room nodes.
    pub fn room_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.room_nodes.iter().copied()
    }

    /// `true` when the position's edge is a door link and the offset is at
    /// the room end (i.e. the object is "in a room node" in the paper's
    /// terms — Algorithm 2 line 13).
    pub fn is_at_room_node(&self, pos: GraphPos, tol: f64) -> bool {
        match self.node_at_pos(pos, tol) {
            Some(n) => matches!(self.node(n).kind, NodeKind::Room(_)),
            None => false,
        }
    }
}
