//! Typed identifiers for walking-graph entities.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for direct `Vec` indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a [`crate::Node`] in a walking graph.
    NodeId,
    "n"
);
define_id!(
    /// Identifier of an [`crate::Edge`] in a walking graph.
    EdgeId,
    "e"
);
define_id!(
    /// Identifier of an [`crate::AnchorPoint`] in an anchor set.
    AnchorId,
    "ap"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeId::new(0).to_string(), "e0");
        assert_eq!(AnchorId::new(12).to_string(), "ap12");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(EdgeId::new(1) < EdgeId::new(9));
        assert_eq!(AnchorId::new(5).index(), 5);
    }
}
