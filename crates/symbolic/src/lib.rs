//! # ripq-symbolic — the symbolic-model baseline (§3.3)
//!
//! The paper compares its particle-filter inference against "the only
//! \[other\] method of drawing the probability distribution of an object's
//! location for the purpose of indoor spatial queries in the literature":
//! the symbolic model of Yang, Lu and Jensen ([29, 30] in the paper).
//!
//! In that model the indoor space is carved into **cells** by the deployed
//! positioning devices; an object that left reader `d` at time `t_last` is
//! assumed to be **uniformly distributed over all the reachable locations
//! constrained by its maximum speed** — it may be anywhere it could have
//! walked to without being detected by another reader.
//!
//! This crate reimplements that model on the *same* anchor-point
//! discretization RIPQ uses for its own inference, which makes the two
//! methods directly comparable anchor-by-anchor (the paper does the same by
//! evaluating both through identical queries):
//!
//! * [`CellDecomposition`] — anchors covered by each reader, connected
//!   uncovered regions (cells), and the deployment-graph adjacency between
//!   readers and cells;
//! * [`DeviceKind`] / device classification — presence vs. (un)directed
//!   partitioning devices (§3.3's taxonomy);
//! * [`SymbolicModel`] — Cases 1–4 inference: reader-range-restricted
//!   shortest-path distances and the uniform reachable-region distribution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod device;
mod inference;

pub use cells::{AnchorRegion, CellDecomposition, CellId};
pub use device::{classify_device, DeviceKind};
pub use inference::SymbolicModel;
