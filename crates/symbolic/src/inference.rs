//! Symbolic-model location inference (§3.3, Cases 1–4).
//!
//! "Symbolic model-based location inference assumes an object's position is
//! uniformly distributed over all possible locations": within the detecting
//! reader's range while observed (Case 1), and over every location the
//! object could have walked to *without being detected by another reader*
//! once it leaves the range (Cases 2–4), bounded by the maximum walking
//! speed — "a moving object is uniformly distributed over all the reachable
//! locations constrained by its maximum speed" (§2.1).

use crate::CellDecomposition;
use ripq_graph::{AnchorId, AnchorObjectIndex, AnchorSet, WalkingGraph};
use ripq_rfid::{ObjectId, Reader, ReaderId, ReadingStore};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The symbolic-model baseline, precomputed for a fixed deployment.
#[derive(Debug, Clone)]
pub struct SymbolicModel {
    cells: CellDecomposition,
    /// `restricted[r][a]` = shortest anchor-graph distance from reader
    /// `r`'s covered region to anchor `a`, traversing only anchors not
    /// covered by *other* readers (∞ where unreachable undetected).
    restricted: Vec<Vec<f64>>,
    /// Maximum walking speed `u_max` (m/s) used to bound reachability.
    max_speed: f64,
}

impl SymbolicModel {
    /// Builds the model: cell decomposition plus, per reader, the
    /// detection-free shortest distances to every anchor.
    pub fn new(
        graph: &WalkingGraph,
        anchors: &AnchorSet,
        readers: &[Reader],
        max_speed: f64,
    ) -> Self {
        assert!(max_speed > 0.0, "max speed must be positive");
        let cells = CellDecomposition::build(graph, anchors, readers);
        let n = anchors.anchors().len();
        let mut restricted = Vec::with_capacity(readers.len());
        for r in readers {
            restricted.push(Self::restricted_dijkstra(&cells, n, r.id()));
        }
        SymbolicModel {
            cells,
            restricted,
            max_speed,
        }
    }

    fn restricted_dijkstra(cells: &CellDecomposition, n: usize, reader: ReaderId) -> Vec<f64> {
        #[derive(PartialEq)]
        struct E(f64, AnchorId);
        impl Eq for E {}
        impl Ord for E {
            fn cmp(&self, other: &Self) -> Ordering {
                other.0.partial_cmp(&self.0).unwrap_or(Ordering::Equal)
            }
        }
        impl PartialOrd for E {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        for a in cells.anchors_of_reader(reader) {
            dist[a.index()] = 0.0;
            heap.push(E(0.0, a));
        }
        while let Some(E(d, a)) = heap.pop() {
            if d > dist[a.index()] {
                continue;
            }
            for &(b, w) in &cells.adjacency()[a.index()] {
                // Blocked by another reader's range: the object would have
                // been detected there.
                if cells.covering_reader(b).is_some_and(|r| r != reader) {
                    continue;
                }
                let nd = d + w;
                if nd < dist[b.index()] {
                    dist[b.index()] = nd;
                    heap.push(E(nd, b));
                }
            }
        }
        dist
    }

    /// The underlying cell decomposition.
    pub fn cells(&self) -> &CellDecomposition {
        &self.cells
    }

    /// The configured maximum walking speed.
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// Infers the uniform location distribution of an object last detected
    /// by `reader`, `elapsed` seconds ago (0 = currently observed).
    ///
    /// Returns anchor/probability pairs summing to 1; the support is every
    /// anchor within `u_max · elapsed` of the reader's range, reachable
    /// without crossing another reader.
    pub fn infer(&self, reader: ReaderId, elapsed: u64) -> Vec<(AnchorId, f64)> {
        let lmax = self.max_speed * elapsed as f64;
        let dist = &self.restricted[reader.index()];
        let support: Vec<AnchorId> = dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d <= lmax)
            .map(|(i, _)| AnchorId::new(i as u32))
            .collect();
        if support.is_empty() {
            return Vec::new();
        }
        let p = 1.0 / support.len() as f64;
        support.into_iter().map(|a| (a, p)).collect()
    }

    /// Builds the full anchor ↔ object index for every object the
    /// collector knows, evaluated at time `now` — the symbolic counterpart
    /// of the particle preprocessor's output, consumed by the same query
    /// evaluation code.
    pub fn build_index<S: ReadingStore + ?Sized>(
        &self,
        collector: &S,
        objects: &[ObjectId],
        now: u64,
    ) -> AnchorObjectIndex<ObjectId> {
        let mut index = AnchorObjectIndex::new();
        for &o in objects {
            if let Some((reader, t_last)) = collector.last_detection(o) {
                let elapsed = now.saturating_sub(t_last);
                index.set_object(o, self.infer(reader, elapsed));
            }
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;
    use ripq_rfid::{deploy_uniform, DataCollector};

    fn setup() -> (WalkingGraph, AnchorSet, Vec<Reader>, SymbolicModel) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let model = SymbolicModel::new(&graph, &anchors, &readers, 1.5);
        (graph, anchors, readers, model)
    }

    #[test]
    fn currently_observed_object_confined_to_range() {
        let (_, anchors, readers, model) = setup();
        let r = &readers[4];
        let dist = model.infer(r.id(), 0);
        assert!(!dist.is_empty());
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (a, _) in dist {
            assert!(
                r.position().distance(anchors.anchor(a).point) <= r.activation_range() + 1e-9,
                "Case 1: all mass inside the activation range"
            );
        }
    }

    #[test]
    fn support_grows_with_elapsed_time() {
        let (_, _, readers, model) = setup();
        let r = readers[7].id();
        let s0 = model.infer(r, 0).len();
        let s5 = model.infer(r, 5).len();
        let s20 = model.infer(r, 20).len();
        assert!(s0 < s5, "{s0} !< {s5}");
        assert!(s5 < s20, "{s5} !< {s20}");
    }

    #[test]
    fn uniform_probabilities() {
        let (_, _, readers, model) = setup();
        let dist = model.infer(readers[3].id(), 10);
        let p0 = dist[0].1;
        assert!(dist.iter().all(|&(_, p)| (p - p0).abs() < 1e-12));
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn other_readers_block_reachability() {
        // No anchor covered by a *different* reader may appear in the
        // support: the object would have been detected there.
        let (_, _, readers, model) = setup();
        let r = readers[9].id();
        let dist = model.infer(r, 60);
        for (a, _) in dist {
            if let Some(covering) = model.cells().covering_reader(a) {
                assert_eq!(covering, r, "support crossed reader {covering}");
            }
        }
    }

    #[test]
    fn long_elapsed_still_bounded_by_blocking_readers() {
        // Even after a very long time the support cannot grow past the
        // neighboring readers' ranges — the defining property that makes
        // this baseline weaker than the particle filter.
        let (_, anchors, readers, model) = setup();
        let r = readers[9].id();
        let huge = model.infer(r, 100_000);
        assert!(
            huge.len() < anchors.anchors().len(),
            "support must not cover the whole building"
        );
    }

    #[test]
    fn build_index_covers_detected_objects() {
        let (_, _, readers, model) = setup();
        let mut collector = DataCollector::new();
        let o1 = ObjectId::new(0);
        let o2 = ObjectId::new(1);
        collector.ingest_second(0, &[(o1, readers[0].id())]);
        collector.ingest_second(1, &[(o2, readers[5].id())]);
        collector.ingest_second(2, &[]);
        let index = model.build_index(&collector, &[o1, o2, ObjectId::new(9)], 4);
        assert_eq!(index.object_count(), 2);
        assert!((index.total_probability(&o1) - 1.0).abs() < 1e-9);
        assert!((index.total_probability(&o2) - 1.0).abs() < 1e-9);
    }
}
