//! Device taxonomy of the symbolic model (§3.3).

use crate::CellDecomposition;
use ripq_rfid::ReaderId;
use serde::{Deserialize, Serialize};

/// The three positioning-device classes defined by Yang et al. and quoted
/// in §3.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// "It simply senses objects within its detection range, but does not
    /// partition the space into different cells" — one adjacent cell.
    Presence,
    /// "It separates two cells but cannot differentiate the moving
    /// directions of objects" — two or more adjacent cells.
    UndirectedPartitioning,
    /// "It consists of an entry/exit pair of devices, and is able to not
    /// only partition cells but also infer the moving directions of objects
    /// by the reading sequence." RIPQ's uniform single-reader deployments
    /// never produce this class, but callers building custom deployments
    /// with paired readers can classify them as such.
    DirectedPartitioning,
}

/// Classifies a reader by the number of cells adjacent to its covered
/// region in the deployment decomposition.
pub fn classify_device(cells: &CellDecomposition, reader: ReaderId) -> DeviceKind {
    match cells.cells_of_reader(reader).len() {
        0 | 1 => DeviceKind::Presence,
        _ => DeviceKind::UndirectedPartitioning,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::{build_walking_graph, AnchorSet};
    use ripq_rfid::deploy_uniform;

    #[test]
    fn office_readers_mostly_partition() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let cells = CellDecomposition::build(&graph, &anchors, &readers);
        let partitioning = readers
            .iter()
            .filter(|r| classify_device(&cells, r.id()) == DeviceKind::UndirectedPartitioning)
            .count();
        // Mid-hallway readers split the hallway in two.
        assert!(
            partitioning >= 15,
            "expected most of 19 readers to partition, got {partitioning}"
        );
    }
}
