//! Cell decomposition of the anchor set by reader coverage.
//!
//! §3.3: "entities that can be accessed without having to be detected by
//! any device are represented by one cell in the graph, and edges
//! connecting two cells in the graph represent the device(s) which separate
//! them." We compute this decomposition on the anchor points: an anchor is
//! either inside some reader's activation disk or belongs to exactly one
//! *cell* — a maximal region reachable without crossing any reader's range.

use ripq_graph::{AnchorId, AnchorSet, WalkingGraph};
use ripq_rfid::{Reader, ReaderId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a cell in the deployment decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(u32);

impl CellId {
    /// Wraps a raw dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        CellId(raw)
    }

    /// The raw dense index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// Where an anchor falls in the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnchorRegion {
    /// Inside the activation disk of the given reader (ties broken by the
    /// closest reader).
    Covered(ReaderId),
    /// In the given cell.
    InCell(CellId),
}

/// The anchor-level cell decomposition plus the weighted anchor adjacency
/// used for restricted shortest paths.
#[derive(Debug, Clone)]
pub struct CellDecomposition {
    region: Vec<AnchorRegion>,
    cell_count: usize,
    /// Weighted adjacency between anchors (arc-length gaps along edges and
    /// across shared nodes).
    adjacency: Vec<Vec<(AnchorId, f64)>>,
    /// Cells adjacent to each reader's covered region.
    reader_cells: Vec<Vec<CellId>>,
}

impl CellDecomposition {
    /// Builds the decomposition for a reader deployment.
    pub fn build(graph: &WalkingGraph, anchors: &AnchorSet, readers: &[Reader]) -> Self {
        let n = anchors.anchors().len();

        // 1. Coverage: nearest covering reader per anchor.
        let mut covered: Vec<Option<ReaderId>> = vec![None; n];
        for a in anchors.anchors() {
            let mut best: Option<(ReaderId, f64)> = None;
            for r in readers {
                let d = r.position().distance(a.point);
                if d <= r.activation_range() && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((r.id(), d));
                }
            }
            covered[a.id.index()] = best.map(|(id, _)| id);
        }

        // 2. Anchor adjacency: consecutive anchors on each edge, plus the
        // end anchors of edges sharing a node.
        let mut adjacency: Vec<Vec<(AnchorId, f64)>> = vec![Vec::new(); n];
        for e in graph.edges() {
            let list = anchors.on_edge(e.id);
            for w in list.windows(2) {
                let d = anchors.anchor(w[1]).pos.offset - anchors.anchor(w[0]).pos.offset;
                adjacency[w[0].index()].push((w[1], d));
                adjacency[w[1].index()].push((w[0], d));
            }
        }
        for node in graph.nodes() {
            let incident = graph.edges_at(node.id);
            // End anchor + its gap to the node, per incident edge.
            let mut ends: Vec<(AnchorId, f64)> = Vec::with_capacity(incident.len());
            for &eid in incident {
                let e = graph.edge(eid);
                let list = anchors.on_edge(eid);
                if list.is_empty() {
                    continue;
                }
                let (aid, gap) = if e.a == node.id {
                    let a = list[0];
                    (a, anchors.anchor(a).pos.offset)
                } else {
                    let a = *list.last().expect("non-empty");
                    (a, e.length() - anchors.anchor(a).pos.offset)
                };
                ends.push((aid, gap.max(0.0)));
            }
            for (i, &(ai, gi)) in ends.iter().enumerate() {
                for &(aj, gj) in &ends[i + 1..] {
                    if ai == aj {
                        continue;
                    }
                    adjacency[ai.index()].push((aj, gi + gj));
                    adjacency[aj.index()].push((ai, gi + gj));
                }
            }
        }

        // 3. Cells: connected components of uncovered anchors.
        let mut region: Vec<Option<AnchorRegion>> = covered
            .iter()
            .map(|c| c.map(AnchorRegion::Covered))
            .collect();
        let mut cell_count = 0usize;
        for start in 0..n {
            if region[start].is_some() {
                continue;
            }
            let cell = CellId::new(cell_count as u32);
            cell_count += 1;
            let mut stack = vec![AnchorId::new(start as u32)];
            region[start] = Some(AnchorRegion::InCell(cell));
            while let Some(a) = stack.pop() {
                for &(b, _) in &adjacency[a.index()] {
                    if region[b.index()].is_none() {
                        region[b.index()] = Some(AnchorRegion::InCell(cell));
                        stack.push(b);
                    }
                }
            }
        }
        let region: Vec<AnchorRegion> = region
            .into_iter()
            .map(|r| r.expect("every anchor assigned"))
            .collect();

        // 4. Reader ↔ cell adjacency (deployment-graph edges).
        let mut reader_cells: Vec<HashSet<CellId>> = vec![HashSet::new(); readers.len()];
        for (i, r) in region.iter().enumerate() {
            if let AnchorRegion::Covered(reader) = r {
                for &(b, _) in &adjacency[i] {
                    if let AnchorRegion::InCell(c) = region[b.index()] {
                        reader_cells[reader.index()].insert(c);
                    }
                }
            }
        }
        let reader_cells: Vec<Vec<CellId>> = reader_cells
            .into_iter()
            .map(|s| {
                let mut v: Vec<CellId> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();

        CellDecomposition {
            region,
            cell_count,
            adjacency,
            reader_cells,
        }
    }

    /// Number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cell_count
    }

    /// Where anchor `a` falls.
    #[inline]
    pub fn region_of(&self, a: AnchorId) -> AnchorRegion {
        self.region[a.index()]
    }

    /// The cell containing `a`, or `None` when `a` is reader-covered.
    pub fn cell_of(&self, a: AnchorId) -> Option<CellId> {
        match self.region[a.index()] {
            AnchorRegion::InCell(c) => Some(c),
            AnchorRegion::Covered(_) => None,
        }
    }

    /// The reader covering `a`, if any.
    pub fn covering_reader(&self, a: AnchorId) -> Option<ReaderId> {
        match self.region[a.index()] {
            AnchorRegion::Covered(r) => Some(r),
            AnchorRegion::InCell(_) => None,
        }
    }

    /// Cells adjacent to a reader's covered region (the deployment-graph
    /// neighbors of the device).
    #[inline]
    pub fn cells_of_reader(&self, r: ReaderId) -> &[CellId] {
        &self.reader_cells[r.index()]
    }

    /// Weighted anchor adjacency (arc-length hop distances).
    #[inline]
    pub fn adjacency(&self) -> &[Vec<(AnchorId, f64)>] {
        &self.adjacency
    }

    /// Anchors covered by reader `r`.
    pub fn anchors_of_reader(&self, r: ReaderId) -> Vec<AnchorId> {
        self.region
            .iter()
            .enumerate()
            .filter(|(_, reg)| matches!(reg, AnchorRegion::Covered(x) if *x == r))
            .map(|(i, _)| AnchorId::new(i as u32))
            .collect()
    }

    /// Number of anchors per cell.
    pub fn cell_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.cell_count];
        for r in &self.region {
            if let AnchorRegion::InCell(c) = r {
                sizes[c.index()] += 1;
            }
        }
        sizes
    }

    /// Summary map: cell → rooms/hallways it spans is left to callers; this
    /// returns cell → anchor list for inspection.
    pub fn anchors_by_cell(&self) -> HashMap<CellId, Vec<AnchorId>> {
        let mut out: HashMap<CellId, Vec<AnchorId>> = HashMap::new();
        for (i, r) in self.region.iter().enumerate() {
            if let AnchorRegion::InCell(c) = r {
                out.entry(*c).or_default().push(AnchorId::new(i as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;
    use ripq_rfid::deploy_uniform;

    fn setup() -> (WalkingGraph, AnchorSet, Vec<Reader>, CellDecomposition) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let cells = CellDecomposition::build(&graph, &anchors, &readers);
        (graph, anchors, readers, cells)
    }

    #[test]
    fn every_anchor_assigned_exactly_once() {
        let (_, anchors, _, cells) = setup();
        for a in anchors.anchors() {
            // region_of never panics and is internally consistent.
            match cells.region_of(a.id) {
                AnchorRegion::Covered(r) => {
                    assert_eq!(cells.covering_reader(a.id), Some(r));
                    assert_eq!(cells.cell_of(a.id), None);
                }
                AnchorRegion::InCell(c) => {
                    assert_eq!(cells.cell_of(a.id), Some(c));
                    assert_eq!(cells.covering_reader(a.id), None);
                }
            }
        }
    }

    #[test]
    fn readers_partition_hallways_into_many_cells() {
        let (_, _, readers, cells) = setup();
        // 19 disjoint readers on the hallway network create many cells.
        assert!(
            cells.cell_count() >= 10,
            "expected rich cell structure, got {}",
            cells.cell_count()
        );
        // Every reader is adjacent to at least one cell; readers mid-hallway
        // partition space, so most have ≥ 2 adjacent cells.
        let mut multi = 0;
        for r in &readers {
            let adj = cells.cells_of_reader(r.id());
            assert!(!adj.is_empty(), "reader {} isolated", r.id());
            if adj.len() >= 2 {
                multi += 1;
            }
        }
        assert!(multi >= 10, "most readers partition: got {multi}");
    }

    #[test]
    fn covered_anchors_really_in_range() {
        let (_, anchors, readers, cells) = setup();
        for a in anchors.anchors() {
            if let Some(rid) = cells.covering_reader(a.id) {
                let r = &readers[rid.index()];
                assert!(r.position().distance(a.point) <= r.activation_range() + 1e-9);
            }
        }
    }

    #[test]
    fn cell_sizes_sum_to_uncovered_count() {
        let (_, anchors, _, cells) = setup();
        let uncovered = anchors
            .anchors()
            .iter()
            .filter(|a| cells.covering_reader(a.id).is_none())
            .count();
        let total: usize = cells.cell_sizes().iter().sum();
        assert_eq!(total, uncovered);
        assert!(cells.cell_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn adjacency_is_symmetric_and_positive() {
        let (_, anchors, _, cells) = setup();
        let adj = cells.adjacency();
        for (i, list) in adj.iter().enumerate() {
            let ai = AnchorId::new(i as u32);
            for &(b, d) in list {
                assert!(d >= 0.0);
                assert!(
                    adj[b.index()].iter().any(|&(x, _)| x == ai),
                    "asymmetric adjacency {ai} -> {b}"
                );
            }
        }
        let _ = anchors;
    }

    #[test]
    fn anchors_of_reader_nonempty_for_all() {
        let (_, _, readers, cells) = setup();
        for r in &readers {
            assert!(
                !cells.anchors_of_reader(r.id()).is_empty(),
                "reader {} covers no anchors",
                r.id()
            );
        }
    }

    #[test]
    fn most_rooms_join_their_hallway_cell() {
        // A room with no reader at its door shares a cell with the hallway
        // anchors outside the door. A handful of rooms have a reader
        // parked right at their door (which *does* cut them off — that is
        // correct cell semantics), so we assert the property for the
        // majority rather than for every room.
        let (graph, anchors, _, cells) = setup();
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut joined = 0;
        for room in plan.rooms() {
            let room_anchor = *anchors.in_room(room.id()).last().expect("room anchors");
            let room_cell = cells
                .cell_of(room_anchor)
                .expect("room-center anchors are uncovered");
            let same_cell_hallway = anchors.anchors().iter().any(|a| {
                cells.cell_of(a.id) == Some(room_cell)
                    && matches!(a.location, ripq_floorplan::Location::Hallway(_))
            });
            if same_cell_hallway {
                joined += 1;
            }
        }
        assert!(
            joined >= plan.rooms().len() / 3,
            "only {joined}/30 rooms share a cell with their hallway"
        );
        assert!(
            joined < plan.rooms().len(),
            "some rooms must be cut off by a door-side reader"
        );
        let _ = graph;
    }
}
