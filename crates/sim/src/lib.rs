//! # ripq-sim — simulator, ground truth and accuracy metrics
//!
//! Implements the seven-component simulator of §5.1 (Fig. 8):
//!
//! * [`TraceGenerator`] — the *true trace generator*: every object
//!   repeatedly picks a random room as its destination and walks the
//!   shortest indoor path there at a Gaussian N(1 m/s, 0.1) speed,
//!   dwelling in rooms between trips; true locations are recorded every
//!   second.
//! * [`ReadingGenerator`] — the *raw reading generator*: checks each
//!   object against the reader deployment through the stochastic
//!   [`ripq_rfid::SensingModel`] and emits per-second detections.
//! * [`FaultPlan`] / [`FaultInjector`] — a deterministic fault-injection
//!   layer between the reading generator and the collector: seeded
//!   drops, duplicates, bounded delivery jitter and per-reader burst
//!   outages for chaos testing the pipeline's robustness contract.
//! * [`GroundTruth`] — the *ground truth query evaluation* module: exact
//!   range memberships and exact network-distance kNN sets from the true
//!   traces.
//! * [`metrics`] — the *KL divergence* and *top-k success* modules plus
//!   kNN hit rates (§5.1's three accuracy metrics).
//! * [`Experiment`] / [`ExperimentParams`] — the harness that wires all of
//!   the above to both probabilistic methods (particle filter vs. symbolic
//!   model) and produces the numbers behind every figure of §5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod experiment;
mod faults;
mod ground_truth;
pub mod metrics;
mod params;
mod readings;
mod trace;
pub mod transcript;
pub mod viz;
mod world;

pub use checkpoint::RecoveryOutcome;
pub use experiment::{AccuracyAccumulator, AccuracyReport, Experiment};
pub use faults::{derive_fault_seed, random_outages, FaultInjector, FaultPlan, TaggedReading};
pub use ground_truth::GroundTruth;
pub use params::ExperimentParams;
pub use readings::{ReaderOutage, ReadingGenerator};
pub use trace::{TraceGenerator, TrueTrace};
pub use transcript::{record_transcript, Transcript, TranscriptSpec};
pub use viz::SvgScene;
pub use world::SimWorld;
