//! Accuracy metrics (§5.1): KL divergence, kNN hit rate, top-k success.
//!
//! The paper names three metrics:
//!
//! 1. **KL divergence** for range queries, "commonly used to evaluate the
//!    difference between two probability distributions" — here between the
//!    ground-truth membership distribution and a method's probabilistic
//!    result ([`range_kl`]).
//! 2. **Average hit rate** for kNN queries — the fraction of the true kNN
//!    set a method's returned set covers ([`knn_hit_rate`]).
//! 3. **Top-k success rate** — whether an object's true location matches
//!    the top-k predicted locations of the reconstructed distribution
//!    ([`top_k_success`]); we measure it at *partition* granularity (a
//!    room, or a hallway section delimited by readers — the natural
//!    resolution of the system), using the deployment decomposition.

use ripq_core::ResultSet;
use ripq_graph::{AnchorId, AnchorSet, GraphPos};
use ripq_rfid::ObjectId;
use ripq_symbolic::{AnchorRegion, CellDecomposition};
use std::collections::{HashMap, HashSet};

/// Smoothing constant for KL divergence (avoids log(0) on disjoint
/// supports).
///
/// Chosen at the natural probability granularity of the system: one
/// particle out of the default 64 carries ≈ 0.016 probability, so
/// per-object probabilities below ~0.01 are not resolvable by either
/// method and are floored rather than letting a single unresolvable miss
/// contribute an unbounded `ln(1/ε)` term to the average.
pub const KL_EPSILON: f64 = 1e-2;

/// `D_KL(P ‖ Q) = Σᵢ P(i) ln(P(i)/Q(i))` over ε-smoothed, re-normalized
/// distributions.
///
/// Returns `None` when the inputs are not comparable — different
/// supports (lengths) or an empty support — instead of panicking, per
/// the no-panic-paths policy (lint rule R3).
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Option<f64> {
    if p.len() != q.len() || p.is_empty() {
        return None;
    }
    let sp: f64 = p.iter().sum::<f64>() + KL_EPSILON * p.len() as f64;
    let sq: f64 = q.iter().sum::<f64>() + KL_EPSILON * q.len() as f64;
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let pn = (pi + KL_EPSILON) / sp;
        let qn = (qi + KL_EPSILON) / sq;
        kl += pn * (pn / qn).ln();
    }
    Some(kl.max(0.0))
}

/// KL divergence of a probabilistic range-query result against the ground
/// truth membership set, over the `universe` of objects.
///
/// `P` puts equal mass on each true member; `Q` is the method's reported
/// probability per object. Returns `None` when the true result is empty
/// (the paper averages only over meaningful queries).
pub fn range_kl(
    truth: &HashSet<ObjectId>,
    result: &ResultSet,
    universe: &[ObjectId],
) -> Option<f64> {
    if truth.is_empty() {
        return None;
    }
    let p: Vec<f64> = universe
        .iter()
        .map(|o| if truth.contains(o) { 1.0 } else { 0.0 })
        .collect();
    let q: Vec<f64> = universe.iter().map(|o| result.probability(*o)).collect();
    kl_divergence(&p, &q)
}

/// kNN hit rate: `|returned ∩ truth| / k`.
pub fn knn_hit_rate(
    returned: impl IntoIterator<Item = ObjectId>,
    truth: &HashSet<ObjectId>,
    k: usize,
) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = returned
        .into_iter()
        .filter(|o| truth.contains(o))
        .count()
        .min(k);
    hits as f64 / k as f64
}

/// The maximum-probability k-set of a probabilistic result — what the
/// paper uses for the symbolic baseline's hit rate ("we only consider the
/// maximum probability result set").
pub fn top_k_objects(result: &ResultSet, k: usize) -> Vec<ObjectId> {
    result.top(k).into_iter().map(|r| r.object).collect()
}

/// Whether the partition truly containing `true_pos` is among the `k`
/// partitions carrying the most probability mass in `distribution`.
///
/// Partitions are the regions of the deployment decomposition: a reader's
/// covered patch, or a cell (room + adjoining hallway section).
pub fn top_k_success(
    cells: &CellDecomposition,
    anchors: &AnchorSet,
    distribution: &[(AnchorId, f64)],
    true_pos: GraphPos,
    k: usize,
) -> bool {
    if distribution.is_empty() || k == 0 {
        return false;
    }
    let true_region = cells.region_of(anchors.nearest(true_pos));
    let mut mass: HashMap<AnchorRegion, f64> = HashMap::new();
    for &(a, p) in distribution {
        *mass.entry(cells.region_of(a)).or_insert(0.0) += p;
    }
    let mut ranked: Vec<(AnchorRegion, f64)> = mass.into_iter().collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| region_order(&a.0).cmp(&region_order(&b.0)))
    });
    ranked
        .iter()
        .take(k)
        .any(|(region, _)| *region == true_region)
}

fn region_order(r: &AnchorRegion) -> (u8, u32) {
    match r {
        AnchorRegion::Covered(id) => (0, id.raw()),
        AnchorRegion::InCell(id) => (1, id.raw()),
    }
}

/// Mean localization error: the expected Euclidean distance between an
/// inferred anchor distribution and the true position.
pub fn expected_error(
    anchors: &AnchorSet,
    distribution: &[(AnchorId, f64)],
    truth: ripq_geom::Point2,
) -> f64 {
    let mut total = 0.0;
    let mut mass = 0.0;
    for &(a, p) in distribution {
        total += p * anchors.anchor(a).point.distance(truth);
        mass += p;
    }
    if mass > 0.0 {
        total / mass
    } else {
        0.0
    }
}

/// Incremental mean over f64 samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    sum: f64,
    n: u64,
}

impl Mean {
    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.sum += x;
        self.n += 1;
    }

    /// The mean (0 when no samples).
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The raw `(sum, count)` accumulator state, for checkpointing.
    pub fn state(&self) -> (f64, u64) {
        (self.sum, self.n)
    }

    /// Rebuilds an accumulator from [`Mean::state`] output.
    pub fn from_state((sum, n): (f64, u64)) -> Self {
        Mean { sum, n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.25, 0.25, 0.5];
        assert!(kl_divergence(&p, &p).unwrap() < 1e-12);
    }

    #[test]
    fn kl_positive_and_asymmetric() {
        let p = [1.0, 0.0, 0.0];
        let q = [0.2, 0.4, 0.4];
        let d1 = kl_divergence(&p, &q).unwrap();
        let d2 = kl_divergence(&q, &p).unwrap();
        assert!(d1 > 0.0);
        assert!(d2 > 0.0);
        assert!((d1 - d2).abs() > 1e-6, "KL is not symmetric");
    }

    #[test]
    fn kl_decreases_as_q_approaches_p() {
        let p = [1.0, 0.0];
        let far = kl_divergence(&p, &[0.5, 0.5]).unwrap();
        let near = kl_divergence(&p, &[0.9, 0.1]).unwrap();
        assert!(near < far);
    }

    #[test]
    fn kl_rejects_incomparable_supports_without_panicking() {
        assert!(kl_divergence(&[0.5, 0.5], &[1.0]).is_none());
        assert!(kl_divergence(&[], &[]).is_none());
    }

    #[test]
    fn range_kl_none_on_empty_truth() {
        let truth = HashSet::new();
        let rs = ResultSet::new();
        assert!(range_kl(&truth, &rs, &[o(0), o(1)]).is_none());
    }

    #[test]
    fn range_kl_prefers_correct_result() {
        let universe: Vec<ObjectId> = (0..4).map(o).collect();
        let truth: HashSet<ObjectId> = [o(0), o(1)].into_iter().collect();
        let good: ResultSet = [(o(0), 0.9), (o(1), 0.8)].into_iter().collect();
        let bad: ResultSet = [(o(2), 0.9), (o(3), 0.8)].into_iter().collect();
        let kl_good = range_kl(&truth, &good, &universe).unwrap();
        let kl_bad = range_kl(&truth, &bad, &universe).unwrap();
        assert!(kl_good < kl_bad);
    }

    #[test]
    fn hit_rate_basic() {
        let truth: HashSet<ObjectId> = [o(0), o(1), o(2)].into_iter().collect();
        assert_eq!(knn_hit_rate([o(0), o(1), o(2)], &truth, 3), 1.0);
        assert_eq!(knn_hit_rate([o(0), o(5)], &truth, 3), 1.0 / 3.0);
        assert_eq!(knn_hit_rate([o(7)], &truth, 3), 0.0);
        // Oversized returns cannot exceed 1.
        assert_eq!(knn_hit_rate([o(0), o(1), o(2), o(0)], &truth, 3), 1.0);
        assert_eq!(knn_hit_rate([o(0)], &truth, 0), 0.0);
    }

    #[test]
    fn top_k_objects_ordering() {
        let rs: ResultSet = [(o(0), 0.1), (o(1), 0.9), (o(2), 0.5)]
            .into_iter()
            .collect();
        assert_eq!(top_k_objects(&rs, 2), vec![o(1), o(2)]);
    }

    #[test]
    fn expected_error_basics() {
        use crate::{ExperimentParams, SimWorld};
        let w = SimWorld::build(&ExperimentParams::smoke());
        let a = w.anchors.anchors()[3];
        // Concentrated at the truth: zero error.
        let dist = vec![(a.id, 1.0)];
        assert!(expected_error(&w.anchors, &dist, a.point) < 1e-9);
        // Split between the truth and an anchor d meters away: error d/2.
        let b = w
            .anchors
            .anchors()
            .iter()
            .find(|x| x.point.distance(a.point) > 5.0)
            .expect("far anchor exists");
        let d = b.point.distance(a.point);
        let dist = vec![(a.id, 0.5), (b.id, 0.5)];
        let e = expected_error(&w.anchors, &dist, a.point);
        assert!((e - d / 2.0).abs() < 1e-9);
        // Empty distribution: defined as zero.
        assert_eq!(expected_error(&w.anchors, &[], a.point), 0.0);
    }

    #[test]
    fn mean_accumulates() {
        let mut m = Mean::default();
        assert_eq!(m.value(), 0.0);
        m.push(1.0);
        m.push(3.0);
        assert_eq!(m.value(), 2.0);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn top_k_success_on_real_world() {
        use crate::{ExperimentParams, SimWorld};
        let w = SimWorld::build(&ExperimentParams::smoke());
        let cells = w.symbolic.cells();
        // Distribution concentrated on one anchor: top-1 success exactly
        // when the true position maps to the same region.
        let a = w.anchors.anchors()[10];
        let dist = vec![(a.id, 1.0)];
        assert!(top_k_success(cells, &w.anchors, &dist, a.pos, 1));
        // A distant anchor in a different region fails at k=1.
        let far = w
            .anchors
            .anchors()
            .iter()
            .find(|b| cells.region_of(b.id) != cells.region_of(a.id))
            .expect("multiple regions exist");
        assert!(!top_k_success(cells, &w.anchors, &dist, far.pos, 1));
        // Empty distribution never succeeds.
        assert!(!top_k_success(cells, &w.anchors, &[], a.pos, 1));
    }
}
