//! The raw reading generator (§5.1).
//!
//! "The raw reading generator module checks whether each object is detected
//! by a reader according to the deployment of readers and the current
//! location of the object. Whenever a reading occurs, the raw reading
//! generator will feed the reading … to the two probabilistic query
//! evaluation modules."

use crate::TrueTrace;
use rand::Rng;
use ripq_graph::WalkingGraph;
use ripq_rfid::{ObjectId, Reader, ReaderId, SensingModel};

/// A reader outage: `reader` produces no readings during
/// `[from, until]` (inclusive). Models hardware failures and maintenance
/// windows for robustness testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaderOutage {
    /// The failed reader.
    pub reader: ReaderId,
    /// First silent second.
    pub from: u64,
    /// Last silent second.
    pub until: u64,
}

/// Generates per-second detections from true traces through the stochastic
/// sensing model.
pub struct ReadingGenerator<'a> {
    graph: &'a WalkingGraph,
    readers: &'a [Reader],
    sensing: SensingModel,
    outages: Vec<ReaderOutage>,
}

impl<'a> ReadingGenerator<'a> {
    /// Creates a generator for a fixed deployment.
    pub fn new(graph: &'a WalkingGraph, readers: &'a [Reader], sensing: SensingModel) -> Self {
        ReadingGenerator {
            graph,
            readers,
            sensing,
            outages: Vec::new(),
        }
    }

    /// Adds reader outages (failure injection).
    pub fn with_outages(mut self, outages: Vec<ReaderOutage>) -> Self {
        self.outages = outages;
        self
    }

    fn is_down(&self, reader: ReaderId, second: u64) -> bool {
        self.outages
            .iter()
            .any(|o| o.reader == reader && (o.from..=o.until).contains(&second))
    }

    /// The aggregated detections of one second: for each object whose true
    /// position is inside some reader's range *and* which at least one
    /// sample detected, the pair `(object, reader)`.
    pub fn detections_at<R: Rng>(
        &self,
        rng: &mut R,
        traces: &[TrueTrace],
        second: u64,
    ) -> Vec<(ObjectId, ReaderId)> {
        let mut out = Vec::new();
        for trace in traces {
            let p = trace.point_at(self.graph, second);
            if let Some(reader) = self.sensing.detect_second(rng, p, self.readers) {
                if !self.is_down(reader, second) {
                    out.push((trace.object, reader));
                }
            }
        }
        out
    }

    /// All per-second detections for `0..=duration`, precomputed (index by
    /// second).
    pub fn detections_all<R: Rng>(
        &self,
        rng: &mut R,
        traces: &[TrueTrace],
        duration: u64,
    ) -> Vec<Vec<(ObjectId, ReaderId)>> {
        (0..=duration)
            .map(|s| self.detections_at(rng, traces, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentParams, SimWorld, TraceGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn detections_match_coverage() {
        let params = ExperimentParams::smoke();
        let w = SimWorld::build(&params);
        let mut rng = StdRng::seed_from_u64(6);
        let traces =
            TraceGenerator::new(5.0).generate(&mut rng, &w.graph, w.plan.rooms().len(), 10, 120);
        let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
        let mut any = false;
        for s in 0..=120u64 {
            for (obj, rid) in gen.detections_at(&mut rng, &traces, s) {
                any = true;
                let trace = &traces[obj.index()];
                let p = trace.point_at(&w.graph, s);
                let reader = &w.readers[rid.index()];
                assert!(reader.covers(p), "detection outside range at second {s}");
            }
        }
        assert!(any, "objects walking the hallways must be detected");
    }

    #[test]
    fn detections_all_has_one_entry_per_second() {
        let params = ExperimentParams::smoke();
        let w = SimWorld::build(&params);
        let mut rng = StdRng::seed_from_u64(7);
        let traces =
            TraceGenerator::new(5.0).generate(&mut rng, &w.graph, w.plan.rooms().len(), 5, 60);
        let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing);
        let all = gen.detections_all(&mut rng, &traces, 60);
        assert_eq!(all.len(), 61);
    }

    #[test]
    fn outages_silence_the_failed_reader_only() {
        let params = ExperimentParams::smoke();
        let w = SimWorld::build(&params);
        let mut rng = StdRng::seed_from_u64(9);
        let traces =
            TraceGenerator::new(5.0).generate(&mut rng, &w.graph, w.plan.rooms().len(), 20, 150);
        let dead = w.readers[3].id();
        let gen = ReadingGenerator::new(&w.graph, &w.readers, params.sensing).with_outages(vec![
            ReaderOutage {
                reader: dead,
                from: 50,
                until: 100,
            },
        ]);
        let mut dead_before = 0;
        let mut dead_during = 0;
        let mut others_during = 0;
        for s in 0..=150u64 {
            for (_, r) in gen.detections_at(&mut rng, &traces, s) {
                match (r == dead, (50..=100).contains(&s)) {
                    (true, true) => dead_during += 1,
                    (true, false) => dead_before += 1,
                    (false, true) => others_during += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(dead_during, 0, "failed reader silent during the outage");
        assert!(dead_before > 0, "reader works outside the outage window");
        assert!(others_during > 0, "other readers unaffected");
    }

    #[test]
    fn zero_detection_probability_detects_nothing() {
        let params = ExperimentParams::smoke();
        let w = SimWorld::build(&params);
        let mut rng = StdRng::seed_from_u64(8);
        let traces =
            TraceGenerator::new(5.0).generate(&mut rng, &w.graph, w.plan.rooms().len(), 5, 30);
        let dead = SensingModel {
            samples_per_second: 10,
            detection_probability: 0.0,
            ..Default::default()
        };
        let gen = ReadingGenerator::new(&w.graph, &w.readers, dead);
        for s in 0..=30u64 {
            assert!(gen.detections_at(&mut rng, &traces, s).is_empty());
        }
    }
}
