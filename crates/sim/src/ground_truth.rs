//! Ground-truth query evaluation (§5.1).
//!
//! Evaluates range and kNN queries against the *true* traces, forming "a
//! basis to evaluate the accuracy of the results returned by the two
//! probabilistic query evaluation modules".

use crate::TrueTrace;
use ripq_geom::{Point2, Rect};
use ripq_graph::WalkingGraph;
use ripq_rfid::ObjectId;
use std::collections::HashSet;

/// Exact query answers from true traces.
pub struct GroundTruth<'a> {
    graph: &'a WalkingGraph,
    traces: &'a [TrueTrace],
}

impl<'a> GroundTruth<'a> {
    /// Creates a ground-truth evaluator.
    pub fn new(graph: &'a WalkingGraph, traces: &'a [TrueTrace]) -> Self {
        GroundTruth { graph, traces }
    }

    /// The objects truly inside `window` at `second`.
    pub fn range(&self, window: &Rect, second: u64) -> HashSet<ObjectId> {
        self.traces
            .iter()
            .filter(|t| window.contains(t.point_at(self.graph, second)))
            .map(|t| t.object)
            .collect()
    }

    /// The `k` objects truly nearest to `q` by shortest network distance
    /// at `second` (ties broken by object id for determinism).
    pub fn knn(&self, q: Point2, k: usize, second: u64) -> HashSet<ObjectId> {
        let qpos = self.graph.project(q);
        let sp = self.graph.shortest_paths_from(qpos);
        let mut dists: Vec<(f64, ObjectId)> = self
            .traces
            .iter()
            .map(|t| (sp.distance_to(self.graph, t.at(second)), t.object))
            .collect();
        dists.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        dists.into_iter().take(k).map(|(_, o)| o).collect()
    }

    /// The true network distance from `q` to every object at `second`.
    pub fn distances(&self, q: Point2, second: u64) -> Vec<(ObjectId, f64)> {
        let qpos = self.graph.project(q);
        let sp = self.graph.shortest_paths_from(qpos);
        self.traces
            .iter()
            .map(|t| (t.object, sp.distance_to(self.graph, t.at(second))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentParams, SimWorld, TraceGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SimWorld, Vec<TrueTrace>) {
        let params = ExperimentParams::smoke();
        let w = SimWorld::build(&params);
        let mut rng = StdRng::seed_from_u64(10);
        let traces =
            TraceGenerator::new(8.0).generate(&mut rng, &w.graph, w.plan.rooms().len(), 20, 120);
        (w, traces)
    }

    #[test]
    fn whole_building_window_contains_everyone() {
        let (w, traces) = setup();
        let gt = GroundTruth::new(&w.graph, &traces);
        let all = gt.range(&w.plan.bounds(), 60);
        assert_eq!(all.len(), traces.len());
    }

    #[test]
    fn empty_window_contains_no_one() {
        let (w, traces) = setup();
        let gt = GroundTruth::new(&w.graph, &traces);
        let none = gt.range(&Rect::new(-50.0, -50.0, 1.0, 1.0), 60);
        assert!(none.is_empty());
    }

    #[test]
    fn knn_returns_exactly_k() {
        let (w, traces) = setup();
        let gt = GroundTruth::new(&w.graph, &traces);
        for k in [1usize, 3, 7] {
            let res = gt.knn(Point2::new(31.0, 30.0), k, 60);
            assert_eq!(res.len(), k);
        }
        // k larger than the population: everyone.
        let res = gt.knn(Point2::new(31.0, 30.0), 500, 60);
        assert_eq!(res.len(), traces.len());
    }

    #[test]
    fn knn_set_is_the_k_smallest_distances() {
        let (w, traces) = setup();
        let gt = GroundTruth::new(&w.graph, &traces);
        let q = Point2::new(10.0, 10.0);
        let k = 5;
        let result = gt.knn(q, k, 80);
        let dists = gt.distances(q, 80);
        let max_in = dists
            .iter()
            .filter(|(o, _)| result.contains(o))
            .map(|&(_, d)| d)
            .fold(0.0f64, f64::max);
        let min_out = dists
            .iter()
            .filter(|(o, _)| !result.contains(o))
            .map(|&(_, d)| d)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_in <= min_out + 1e-9,
            "kNN set not distance-consistent: {max_in} > {min_out}"
        );
    }

    #[test]
    fn range_membership_matches_point_containment() {
        let (w, traces) = setup();
        let gt = GroundTruth::new(&w.graph, &traces);
        let window = Rect::new(0.0, 0.0, 31.0, 30.0);
        let members = gt.range(&window, 100);
        for t in &traces {
            let inside = window.contains(t.point_at(&w.graph, 100));
            assert_eq!(inside, members.contains(&t.object));
        }
    }
}
