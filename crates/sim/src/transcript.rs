//! Socket-transcript recording for the streaming server's replay
//! harness.
//!
//! A *transcript* is the full client side of a daemon session: the
//! ordered JSON frame payloads (logical timestamps — the `second`
//! fields — live inside the frames). Because `ripq-server`'s engine is
//! deterministic, a transcript pins down the entire response stream;
//! the replay tests re-feed a recorded transcript and byte-compare the
//! output against a golden fixture.
//!
//! The on-disk format is deliberately line-oriented and reviewable:
//!
//! ```text
//! # ripq-transcript/v1
//! {"op":"subscribe","sub":1,"range":[...]}
//! {"op":"reading","second":0,"readings":[[0,4],[2,11]]}
//! ...
//! ```
//!
//! This module composes frames as plain strings — it does not depend on
//! `ripq-server`; the integration tests in the root crate close the
//! loop between the two.

use crate::{ExperimentParams, ReadingGenerator, SimWorld, TraceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ripq_persist::{write_atomic, PersistError};
use std::fmt::Write as _;
use std::path::Path;

/// The transcript file header / version marker.
pub const TRANSCRIPT_HEADER: &str = "# ripq-transcript/v1";

/// A recorded client session: one JSON frame payload per entry, in send
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transcript {
    /// Frame payloads (JSON text, no length prefix).
    pub frames: Vec<String>,
}

impl Transcript {
    /// Renders the line-oriented transcript file.
    pub fn to_text(&self) -> String {
        let mut out =
            String::with_capacity(self.frames.iter().map(|f| f.len() + 1).sum::<usize>() + 32);
        out.push_str(TRANSCRIPT_HEADER);
        out.push('\n');
        for frame in &self.frames {
            out.push_str(frame);
            out.push('\n');
        }
        out
    }

    /// Parses a transcript file: header line required, blank lines and
    /// further `#` comments ignored.
    pub fn from_text(text: &str) -> Result<Transcript, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(first) if first.trim() == TRANSCRIPT_HEADER => {}
            Some(first) => {
                return Err(format!(
                    "bad transcript header {first:?}, expected {TRANSCRIPT_HEADER:?}"
                ))
            }
            None => return Err("empty transcript".to_string()),
        }
        let frames = lines
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Ok(Transcript { frames })
    }

    /// Writes the transcript atomically.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        write_atomic(path, self.to_text().as_bytes())
    }

    /// Loads a transcript file.
    pub fn load(path: &Path) -> Result<Transcript, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let text = String::from_utf8(bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_text(&text)
    }

    /// The frames as raw payload bytes, ready for length-prefix framing.
    pub fn payloads(&self) -> Vec<Vec<u8>> {
        self.frames.iter().map(|f| f.clone().into_bytes()).collect()
    }
}

/// What [`record_transcript`] simulates. All fields feed deterministic
/// generators, so equal specs record equal transcripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranscriptSpec {
    /// Master seed for traces and sensing.
    pub seed: u64,
    /// Moving objects in the simulated world.
    pub objects: usize,
    /// Simulated duration in seconds (one `reading` frame per second).
    pub seconds: u64,
    /// Evaluate (emit a `tick` frame) every this many seconds.
    pub tick_every: u64,
    /// Range subscriptions, windowed around distinct readers.
    pub range_subs: usize,
    /// kNN subscriptions (k = 3), anchored at distinct readers.
    pub knn_subs: usize,
    /// Emit an explicit `checkpoint` frame after the first tick at or
    /// past this second.
    pub checkpoint_after: Option<u64>,
    /// Emit a final `metrics` frame before `shutdown`. Off for the
    /// crash-recovery golden: restored metrics counters legitimately
    /// encode a different history (`recovery.resumed` vs the original
    /// life's checkpoint counters), so a resumed stream can only be
    /// byte-equal to the golden's suffix without this frame.
    pub metrics_frame: bool,
    /// Per-request deadline attached to every `tick` frame (the
    /// protocol's `budget` field). `None` records plain ticks — the
    /// v1-compatible shape every existing golden uses.
    pub tick_budget: Option<u64>,
}

impl Default for TranscriptSpec {
    fn default() -> Self {
        TranscriptSpec {
            seed: 42,
            objects: 12,
            seconds: 120,
            tick_every: 10,
            range_subs: 2,
            knn_subs: 1,
            checkpoint_after: Some(60),
            metrics_frame: true,
            tick_budget: None,
        }
    }
}

/// Records a transcript: simulated objects walk the default office
/// world, readers sense them through the stochastic [`ripq_rfid::SensingModel`],
/// and the resulting per-second detections become `reading` frames
/// interleaved with subscriptions, periodic `tick`s, an optional
/// `checkpoint`, and a final `metrics` + `shutdown`.
///
/// The world matches what `ripq-server` builds for the default office
/// plan (19 uniformly deployed readers), so reader ids in the frames
/// are meaningful to the daemon.
pub fn record_transcript(spec: &TranscriptSpec) -> Transcript {
    let params = ExperimentParams {
        num_objects: spec.objects,
        duration: spec.seconds,
        seed: spec.seed,
        ..ExperimentParams::default()
    };
    let world = SimWorld::build(&params);
    let mut rng_trace = StdRng::seed_from_u64(params.seed.wrapping_add(1));
    let mut rng_sense = StdRng::seed_from_u64(params.seed.wrapping_add(2));
    let traces = TraceGenerator::new(params.room_dwell_mean).generate(
        &mut rng_trace,
        &world.graph,
        world.plan.rooms().len(),
        spec.objects,
        spec.seconds,
    );
    let sensor = ReadingGenerator::new(&world.graph, &world.readers, params.sensing);

    let mut frames = Vec::new();
    let mut sub = 1u64;
    // Subscriptions window/anchor on distinct readers, spread across the
    // deployment so transcripts exercise different hallways.
    let readers = &world.readers;
    for i in 0..spec.range_subs {
        let Some(reader) = readers.get((i * 5 + 2) % readers.len()) else {
            break;
        };
        let window = ripq_geom::Rect::centered(reader.position(), 14.0, 9.0);
        let mut f = String::new();
        let _ = write!(
            f,
            "{{\"op\":\"subscribe\",\"sub\":{sub},\"range\":[{},{},{},{}]}}",
            window.min().x,
            window.min().y,
            window.width(),
            window.height()
        );
        frames.push(f);
        sub += 1;
    }
    for i in 0..spec.knn_subs {
        let Some(reader) = readers.get((i * 7 + 4) % readers.len()) else {
            break;
        };
        let p = reader.position();
        frames.push(format!(
            "{{\"op\":\"subscribe\",\"sub\":{sub},\"point\":[{},{}],\"k\":3}}",
            p.x, p.y
        ));
        sub += 1;
    }

    let mut checkpoint_pending = spec.checkpoint_after;
    for second in 0..spec.seconds {
        let detections = sensor.detections_at(&mut rng_sense, &traces, second);
        let mut f = String::new();
        let _ = write!(f, "{{\"op\":\"reading\",\"second\":{second},\"readings\":[");
        for (i, (object, reader)) in detections.iter().enumerate() {
            if i > 0 {
                f.push(',');
            }
            let _ = write!(f, "[{},{}]", object.raw(), reader.raw());
        }
        f.push_str("]}");
        frames.push(f);
        if spec.tick_every > 0 && (second + 1) % spec.tick_every == 0 {
            frames.push(match spec.tick_budget {
                Some(budget) => {
                    format!("{{\"op\":\"tick\",\"second\":{second},\"budget\":{budget}}}")
                }
                None => format!("{{\"op\":\"tick\",\"second\":{second}}}"),
            });
            if checkpoint_pending.is_some_and(|at| second >= at) {
                checkpoint_pending = None;
                frames.push("{\"op\":\"checkpoint\"}".to_string());
            }
        }
    }
    if spec.metrics_frame {
        frames.push("{\"op\":\"metrics\"}".to_string());
    }
    frames.push("{\"op\":\"shutdown\"}".to_string());
    Transcript { frames }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_is_deterministic() {
        let spec = TranscriptSpec {
            objects: 5,
            seconds: 30,
            ..TranscriptSpec::default()
        };
        let a = record_transcript(&spec);
        let b = record_transcript(&spec);
        assert_eq!(a, b);
        assert!(a.frames.len() > 30, "readings + subs + ticks + tail");
        assert_eq!(
            a.frames.last().map(String::as_str),
            Some("{\"op\":\"shutdown\"}")
        );
        let other = record_transcript(&TranscriptSpec {
            seed: 43,
            objects: 5,
            seconds: 30,
            ..TranscriptSpec::default()
        });
        assert_ne!(a, other, "seed must matter");
    }

    #[test]
    fn text_round_trip_preserves_frames() {
        let spec = TranscriptSpec {
            objects: 3,
            seconds: 12,
            ..TranscriptSpec::default()
        };
        let t = record_transcript(&spec);
        let text = t.to_text();
        assert!(text.starts_with(TRANSCRIPT_HEADER));
        let back = Transcript::from_text(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.payloads().len(), t.frames.len());
    }

    #[test]
    fn parser_rejects_bad_headers_and_skips_comments() {
        assert!(Transcript::from_text("").is_err());
        assert!(Transcript::from_text("{\"op\":\"metrics\"}\n").is_err());
        let t = Transcript::from_text("# ripq-transcript/v1\n\n# note\n{\"op\":\"metrics\"}\n")
            .unwrap();
        assert_eq!(t.frames, vec!["{\"op\":\"metrics\"}".to_string()]);
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("ripq_transcript_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        let t = record_transcript(&TranscriptSpec {
            objects: 2,
            seconds: 8,
            ..TranscriptSpec::default()
        });
        t.save(&path).unwrap();
        assert_eq!(Transcript::load(&path).unwrap(), t);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tick_budget_lands_on_every_tick_frame() {
        let t = record_transcript(&TranscriptSpec {
            objects: 2,
            seconds: 20,
            tick_every: 10,
            checkpoint_after: None,
            tick_budget: Some(500),
            ..TranscriptSpec::default()
        });
        let ticks: Vec<&String> = t
            .frames
            .iter()
            .filter(|f| f.contains("\"op\":\"tick\""))
            .collect();
        assert_eq!(ticks.len(), 2);
        assert!(
            ticks.iter().all(|f| f.ends_with(",\"budget\":500}")),
            "{ticks:?}"
        );
    }

    #[test]
    fn checkpoint_frame_lands_after_the_requested_tick() {
        let t = record_transcript(&TranscriptSpec {
            objects: 2,
            seconds: 40,
            tick_every: 10,
            checkpoint_after: Some(15),
            ..TranscriptSpec::default()
        });
        let idx = t
            .frames
            .iter()
            .position(|f| f == "{\"op\":\"checkpoint\"}")
            .expect("checkpoint frame present");
        assert_eq!(t.frames[idx - 1], "{\"op\":\"tick\",\"second\":19}");
        assert_eq!(
            t.frames
                .iter()
                .filter(|f| *f == "{\"op\":\"checkpoint\"}")
                .count(),
            1
        );
    }
}
