//! Experiment parameters — Table 2 of the paper plus simulation knobs.

use crate::FaultPlan;
use ripq_graph::DistanceBackend;
use ripq_rfid::{DeploymentStrategy, SensingModel};
use serde::{Deserialize, Serialize};

/// All knobs of one simulated experiment.
///
/// The `Default` implementation reproduces **Table 2** ("Default values of
/// parameters"): 64 particles, 2 % query window, 200 moving objects,
/// k = 3, 2 m activation range — in the 30-room / 4-hallway single floor
/// with 19 uniformly deployed readers of §5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Number of particles per object (Table 2: 64).
    pub num_particles: usize,
    /// Range-query window area as a fraction of the total floor area
    /// (Table 2: 2 % → 0.02).
    pub query_window_fraction: f64,
    /// Number of moving objects (Table 2: 200).
    pub num_objects: usize,
    /// `k` for kNN queries (Table 2: 3).
    pub k: usize,
    /// Reader activation range in meters (Table 2: 2 m).
    pub activation_range: f64,
    /// Number of readers deployed uniformly on hallways (§5: 19).
    pub reader_count: u32,
    /// Reader placement strategy (paper: uniform spacing).
    pub deployment: DeploymentStrategy,
    /// Anchor-point spacing in meters (§4.2: 1 m).
    pub anchor_spacing: f64,
    /// Maximum walking speed `u_max` used by the symbolic model's
    /// reachability bound and by candidate pruning. The trace speeds are
    /// N(1, 0.1), so 1.5 m/s is an ~5σ upper bound.
    pub max_speed: f64,
    /// Sensing model (sample rate / per-sample detection probability).
    pub sensing: SensingModel,
    /// Simulated duration in seconds.
    pub duration: u64,
    /// Seconds to skip before the first evaluation timestamp (objects need
    /// reading history before inference is meaningful).
    pub warmup: u64,
    /// Number of evaluation timestamps, spread uniformly over
    /// `[warmup, duration]` (paper: 50).
    pub eval_timestamps: usize,
    /// Range-query windows generated per evaluation timestamp (paper: 100).
    pub range_queries_per_timestamp: usize,
    /// kNN query points (paper: 30), re-evaluated at every timestamp.
    pub knn_query_points: usize,
    /// Mean seconds an object dwells inside a destination room.
    pub room_dwell_mean: f64,
    /// Particle filter: use negative observations (see
    /// [`ripq_pf::PreprocessorConfig::negative_evidence`]); ablation knob.
    pub negative_evidence: bool,
    /// Particle filter: ESS resampling threshold (1.0 = the paper's
    /// resample-every-observation SIR); ablation knob.
    pub resample_threshold: f64,
    /// Particle filter: probability of turning into a room at a door
    /// portal; ablation knob.
    pub room_enter_probability: f64,
    /// Particle filter: maximum coasting seconds past the last reading
    /// (Algorithm 2 uses 60); ablation knob.
    pub coast_seconds: u64,
    /// Particle filter: KDE bandwidth for the particle→anchor conversion
    /// (0 = the paper's raw nearest-anchor snap); ablation knob.
    pub kde_bandwidth: f64,
    /// Particle filter: KLD-adaptive particle counts (Fox 2001) instead of
    /// the paper's fixed `Ns`; ablation knob.
    pub kld_adaptive: bool,
    /// Worker threads for particle-filter preprocessing (`None` =
    /// sequential). Accuracy results are bit-identical for every setting:
    /// each object filters on its own deterministic RNG stream.
    pub parallelism: Option<usize>,
    /// Fault injection applied between the reading generator and the
    /// collector (see [`FaultPlan`]). [`FaultPlan::none`] (the default)
    /// keeps the stream clean and the classic ingestion path —
    /// fault-free runs are bit-identical to what they were before the
    /// fault layer existed.
    pub faults: FaultPlan,
    /// Write a crash-recovery checkpoint every this many simulated seconds
    /// (0 = never). Takes effect only when the experiment also has a
    /// checkpoint directory configured via
    /// [`Experiment::with_checkpoint_dir`](crate::Experiment::with_checkpoint_dir).
    pub checkpoint_every: u64,
    /// Deadline budget per evaluation pass, in logical cost units
    /// (`coasted seconds × particle count` per object). `None` = always
    /// run the full filter; `Some(b)` lets the preprocessor degrade
    /// answers (reduced particle counts, then the uniform pruning-circle
    /// fallback) once the budget is spent. Deterministic: the cost model
    /// counts logical work, never wall-clock time.
    pub query_budget: Option<u64>,
    /// Distance-computation backend for trace routing and kNN
    /// evaluation: memoized full-tree Dijkstra (the paper's pipeline) or
    /// the goal-directed landmark/ALT oracle. Result-neutral by
    /// construction — the oracle is bit-identical to Dijkstra — so,
    /// like `parallelism`, it is excluded from the checkpoint
    /// fingerprint and a run may resume under either backend.
    pub distance_backend: DistanceBackend,
    /// Collect pipeline metrics during the run (see
    /// [`Experiment::run_with_metrics`](crate::Experiment::run_with_metrics)).
    /// Off by default: the disabled recorder reduces every instrument
    /// point to a no-op branch.
    pub observability: bool,
    /// Master RNG seed; every derived generator is seeded from it.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            num_particles: 64,
            query_window_fraction: 0.02,
            num_objects: 200,
            k: 3,
            activation_range: 2.0,
            reader_count: 19,
            deployment: DeploymentStrategy::Uniform,
            anchor_spacing: 1.0,
            max_speed: 1.5,
            sensing: SensingModel::default(),
            duration: 400,
            warmup: 60,
            eval_timestamps: 50,
            range_queries_per_timestamp: 100,
            knn_query_points: 30,
            room_dwell_mean: 10.0,
            negative_evidence: true,
            resample_threshold: 0.5,
            room_enter_probability: 0.3,
            coast_seconds: 60,
            kde_bandwidth: 2.0,
            kld_adaptive: false,
            parallelism: None,
            faults: FaultPlan::none(),
            checkpoint_every: 0,
            query_budget: None,
            distance_backend: DistanceBackend::Dijkstra,
            observability: false,
            seed: 0xED8_2013,
        }
    }
}

impl ExperimentParams {
    /// A lighter configuration for unit tests and smoke runs: fewer
    /// objects, timestamps and queries. Accuracy trends remain visible but
    /// each run completes in well under a second.
    pub fn smoke() -> Self {
        ExperimentParams {
            num_objects: 30,
            duration: 150,
            warmup: 40,
            eval_timestamps: 5,
            range_queries_per_timestamp: 20,
            knn_query_points: 8,
            ..Default::default()
        }
    }

    /// The evaluation timestamps implied by `warmup`, `duration` and
    /// `eval_timestamps`.
    pub fn timestamps(&self) -> Vec<u64> {
        let n = self.eval_timestamps.max(1) as u64;
        let span = self.duration.saturating_sub(self.warmup).max(1);
        (1..=n)
            .map(|i| self.warmup + span * i / n)
            .map(|t| t.min(self.duration))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let p = ExperimentParams::default();
        assert_eq!(p.num_particles, 64);
        assert!((p.query_window_fraction - 0.02).abs() < 1e-12);
        assert_eq!(p.num_objects, 200);
        assert_eq!(p.k, 3);
        assert_eq!(p.activation_range, 2.0);
        assert_eq!(p.reader_count, 19);
    }

    #[test]
    fn timestamps_within_bounds_and_increasing() {
        let p = ExperimentParams::default();
        let ts = p.timestamps();
        assert_eq!(ts.len(), 50);
        assert!(ts[0] >= p.warmup);
        assert!(*ts.last().unwrap() <= p.duration);
        for w in ts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn smoke_is_smaller() {
        let s = ExperimentParams::smoke();
        let d = ExperimentParams::default();
        assert!(s.num_objects < d.num_objects);
        assert!(s.eval_timestamps < d.eval_timestamps);
        // But keeps Table-2 accuracy-relevant defaults.
        assert_eq!(s.num_particles, 64);
        assert_eq!(s.k, 3);
    }
}
