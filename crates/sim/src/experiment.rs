//! The end-to-end accuracy experiment: the harness behind every figure of
//! §5.
//!
//! One [`Experiment::run`] reproduces the paper's measurement procedure:
//! generate true traces, stream noisy readings into the collector, and at
//! each evaluation timestamp compare the particle-filter method (PF) and
//! the symbolic-model baseline (SM) against ground truth on randomly
//! generated range and kNN queries.

use crate::{
    checkpoint,
    metrics::{self, Mean},
    ExperimentParams, FaultInjector, GroundTruth, ReadingGenerator, SimWorld, TraceGenerator,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ripq_core::{
    evaluate_knn, evaluate_knn_with_oracle, evaluate_range, DistanceBackend, DistanceOracle,
    KnnQuery, QueryId, RecoveryOutcome,
};
use ripq_geom::{Point2, Rect};
use ripq_obs::{MetricsSnapshot, Recorder};
use ripq_pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig, SupervisionOptions};
use ripq_rfid::{DataCollector, ObjectId};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Mutex;

/// Averaged accuracy results of one experiment — one point on each curve
/// of Figures 9–13.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Range-query KL divergence, particle-filter method.
    pub range_kl_pf: f64,
    /// Range-query KL divergence, symbolic-model baseline.
    pub range_kl_sm: f64,
    /// kNN average hit rate, particle-filter method.
    pub knn_hit_pf: f64,
    /// kNN average hit rate, symbolic-model baseline.
    pub knn_hit_sm: f64,
    /// Top-1 success rate of the particle filter's location inference.
    pub top1_success: f64,
    /// Top-2 success rate of the particle filter's location inference.
    pub top2_success: f64,
    /// Mean localization error (expected Euclidean distance between the
    /// inferred distribution and the true position, meters) — particle
    /// filter. One of the paper's §6 "more performance evaluation
    /// metrics".
    pub mean_error_pf: f64,
    /// Mean localization error, symbolic baseline.
    pub mean_error_sm: f64,
    /// Range queries that contributed to the KL averages.
    pub range_queries_evaluated: u64,
    /// kNN query evaluations performed.
    pub knn_queries_evaluated: u64,
}

/// Streaming accumulator for [`AccuracyReport`]s across repeated runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct AccuracyAccumulator {
    kl_pf: Mean,
    kl_sm: Mean,
    hit_pf: Mean,
    hit_sm: Mean,
    top1: Mean,
    top2: Mean,
    err_pf: Mean,
    err_sm: Mean,
    range_n: u64,
    knn_n: u64,
}

impl AccuracyAccumulator {
    /// Adds one run's report.
    pub fn push(&mut self, r: &AccuracyReport) {
        self.kl_pf.push(r.range_kl_pf);
        self.kl_sm.push(r.range_kl_sm);
        self.hit_pf.push(r.knn_hit_pf);
        self.hit_sm.push(r.knn_hit_sm);
        self.top1.push(r.top1_success);
        self.top2.push(r.top2_success);
        self.err_pf.push(r.mean_error_pf);
        self.err_sm.push(r.mean_error_sm);
        self.range_n += r.range_queries_evaluated;
        self.knn_n += r.knn_queries_evaluated;
    }

    /// The averaged report.
    pub fn report(&self) -> AccuracyReport {
        AccuracyReport {
            range_kl_pf: self.kl_pf.value(),
            range_kl_sm: self.kl_sm.value(),
            knn_hit_pf: self.hit_pf.value(),
            knn_hit_sm: self.hit_sm.value(),
            top1_success: self.top1.value(),
            top2_success: self.top2.value(),
            mean_error_pf: self.err_pf.value(),
            mean_error_sm: self.err_sm.value(),
            range_queries_evaluated: self.range_n,
            knn_queries_evaluated: self.knn_n,
        }
    }
}

/// One fully-specified accuracy experiment.
pub struct Experiment {
    params: ExperimentParams,
    world: SimWorld,
    /// Directory holding the crash-recovery snapshot (`experiment.ckpt`);
    /// `None` disables both checkpointing and resume.
    checkpoint_dir: Option<PathBuf>,
    /// Simulated-crash knob: abandon the run at the top of this second,
    /// before any checkpoint due there is written. For recovery tests.
    kill_after: Option<u64>,
    /// What the most recent run found on disk (behind a mutex only to
    /// keep `Experiment: Sync`; `run` takes `&self`).
    last_recovery: Mutex<Option<RecoveryOutcome>>,
}

impl Experiment {
    /// Builds the world for `params`.
    pub fn new(params: ExperimentParams) -> Self {
        let world = SimWorld::build(&params);
        Experiment::with_world(params, world)
    }

    /// Runs the experiment over a caller-supplied world (any floor plan).
    pub fn with_world(params: ExperimentParams, world: SimWorld) -> Self {
        Experiment {
            params,
            world,
            checkpoint_dir: None,
            kill_after: None,
            last_recovery: Mutex::new(None),
        }
    }

    /// Enables crash recovery: `run` first tries to resume from
    /// `dir/experiment.ckpt` (quarantining a damaged or mismatched file),
    /// then writes a fresh snapshot there every
    /// [`ExperimentParams::checkpoint_every`] simulated seconds.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The configured checkpoint directory, if any.
    pub fn checkpoint_dir(&self) -> Option<&std::path::Path> {
        self.checkpoint_dir.as_deref()
    }

    /// Simulates a crash: the run loop abandons everything at the top of
    /// `second`, before writing any checkpoint due there. The partial
    /// report it returns is exactly what a killed process would never get
    /// to use; a subsequent `run` on a checkpoint-enabled experiment
    /// resumes from the last durable snapshot.
    pub fn with_kill_after(mut self, second: u64) -> Self {
        self.kill_after = Some(second);
        self
    }

    /// What the most recent `run` found on disk: `None` before any run or
    /// when no checkpoint directory is configured.
    pub fn last_recovery(&self) -> Option<RecoveryOutcome> {
        self.last_recovery
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default()
    }

    /// The parameters in use.
    pub fn params(&self) -> &ExperimentParams {
        &self.params
    }

    /// The simulated world.
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Generates a random query window of the configured area fraction,
    /// fully inside the floor-plan bounds.
    fn random_window<R: rand::Rng + RngExt>(&self, rng: &mut R) -> Rect {
        let bounds = self.world.plan.bounds();
        let area = bounds.area() * self.params.query_window_fraction;
        let side = area.sqrt();
        let w = side.min(bounds.width());
        let h = (area / w).min(bounds.height());
        let x = rng.random_range(bounds.min().x..=(bounds.max().x - w).max(bounds.min().x));
        let y = rng.random_range(bounds.min().y..=(bounds.max().y - h).max(bounds.min().y));
        Rect::new(x, y, w, h)
    }

    /// Generates the fixed kNN query points (random indoor locations).
    fn knn_points<R: rand::Rng + RngExt>(&self, rng: &mut R) -> Vec<Point2> {
        let bounds = self.world.plan.bounds();
        (0..self.params.knn_query_points)
            .map(|_| {
                // Rejection-sample an indoor point; fall back to the raw
                // point (it is snapped to the graph anyway).
                for _ in 0..32 {
                    let p = Point2::new(
                        rng.random_range(bounds.min().x..=bounds.max().x),
                        rng.random_range(bounds.min().y..=bounds.max().y),
                    );
                    if !matches!(self.world.plan.locate(p), ripq_floorplan::Location::Outside) {
                        return p;
                    }
                }
                bounds.center()
            })
            .collect()
    }

    /// Runs the experiment and returns the averaged accuracy metrics.
    pub fn run(&self) -> AccuracyReport {
        self.run_inner(&Recorder::disabled())
    }

    /// Runs the experiment with pipeline observability controlled by
    /// [`ExperimentParams::observability`], returning the accuracy report
    /// together with the metrics snapshot (`None` when observability is
    /// off).
    ///
    /// The snapshot covers every instrumented stage the run exercises —
    /// collector ingestion, particle-filter preprocessing, plus the
    /// harness's own `sim.*` counters — and is deterministic: same
    /// params, same snapshot, regardless of `parallelism`.
    pub fn run_with_metrics(&self) -> (AccuracyReport, Option<MetricsSnapshot>) {
        let recorder = Recorder::from_flag(self.params.observability);
        let report = self.run_inner(&recorder);
        let snapshot = recorder.is_enabled().then(|| recorder.snapshot());
        (report, snapshot)
    }

    fn run_inner(&self, recorder: &Recorder) -> AccuracyReport {
        // Wall-clock spans are only taken when the recorder is live, so an
        // observability-off run never touches the clock. Span *durations*
        // are the one non-deterministic part of a sim snapshot (span
        // counts and every counter/gauge/histogram are exact); the core
        // system facade offers fully logical timing instead.
        use std::time::Instant;
        let obs_on = recorder.is_enabled();
        // ripq-lint: allow(no-nondeterminism) -- wall-clock span timing, only taken when the recorder is live; accuracy results never read it
        let t_run = obs_on.then(Instant::now);
        let p = &self.params;
        let w = &self.world;
        // The ALT oracle, when selected. Pure precomputation over the
        // immutable world graph — built before the loop, never part of
        // the checkpoint (a resumed run rebuilds it identically).
        let oracle = (p.distance_backend == DistanceBackend::Alt)
            .then(|| DistanceOracle::build(&w.graph, ripq_graph::DEFAULT_LANDMARKS));
        let mut rng_trace = StdRng::seed_from_u64(p.seed.wrapping_add(1));
        let mut rng_sense = StdRng::seed_from_u64(p.seed.wrapping_add(2));
        let mut rng_pf = StdRng::seed_from_u64(p.seed.wrapping_add(3));
        let mut rng_query = StdRng::seed_from_u64(p.seed.wrapping_add(4));

        // 1. True traces and noisy detections.
        let traces = TraceGenerator::new(p.room_dwell_mean).generate_routed(
            &mut rng_trace,
            &w.graph,
            w.plan.rooms().len(),
            p.num_objects,
            p.duration,
            oracle.as_ref(),
        );
        let reading_gen = ReadingGenerator::new(&w.graph, &w.readers, p.sensing);
        let ground_truth = GroundTruth::new(&w.graph, &traces);
        let objects: Vec<ObjectId> = traces.iter().map(|t| t.object).collect();
        let knn_points = self.knn_points(&mut rng_query);

        // 2. Stream seconds into the collector; evaluate at timestamps.
        let mut collector = DataCollector::new();
        collector.set_recorder(recorder);

        // Fault layer (off by default). When active, readings pass through
        // the injector and the collector ingests delivery-tagged batches
        // behind a reorder window matching the injector's jitter bound;
        // evaluation then happens at the *watermark* (delivery second
        // minus the window), the moment a logical second is final. With
        // `W = 0` faults the watermark equals the second, and an inactive
        // plan takes the exact classic path.
        let mut injector = p.faults.is_active().then(|| {
            let mut inj = FaultInjector::new(p.faults, w.readers.len(), p.duration);
            inj.set_recorder(recorder);
            inj
        });
        let jitter = p.faults.max_delay_seconds;
        if let Some(inj) = &injector {
            collector.set_reorder_window(jitter);
            for o in inj.outages() {
                collector.note_outage(o.reader, o.from, o.until);
            }
        }
        let mut cache = ParticleCache::new();
        let pf_config = PreprocessorConfig {
            num_particles: p.num_particles,
            negative_evidence: p.negative_evidence,
            resample_threshold: p.resample_threshold,
            coast_seconds: p.coast_seconds,
            kde_bandwidth: p.kde_bandwidth,
            adaptive: p.kld_adaptive.then(ripq_pf::KldConfig::default),
            motion: ripq_pf::MotionModel {
                room_enter_probability: p.room_enter_probability,
                ..Default::default()
            },
            ..Default::default()
        };
        let preprocessor = ParticlePreprocessor::new(&w.graph, &w.anchors, &w.readers, pf_config)
            .with_recorder(recorder);

        let timestamps = p.timestamps();
        let mut next_ts = 0usize;

        let mut kl_pf = Mean::default();
        let mut kl_sm = Mean::default();
        let mut hit_pf = Mean::default();
        let mut hit_sm = Mean::default();
        let mut top1 = Mean::default();
        let mut top2 = Mean::default();
        let mut err_pf = Mean::default();
        let mut err_sm = Mean::default();

        // Crash recovery. Everything above this point — traces, readers,
        // ground truth, query points, the outage schedule — is a pure
        // function of the params and was regenerated identically; the
        // snapshot restores only what the loop below mutates, then the
        // loop re-enters at the checkpointed second. A fingerprint check
        // inside the decoder quarantines snapshots from other parameter
        // sets.
        let fingerprint = checkpoint::params_fingerprint(p);
        let ckpt_path = self
            .checkpoint_dir
            .as_deref()
            .map(checkpoint::snapshot_path);
        let mut start_second = 0u64;
        if let Some(path) = &ckpt_path {
            let (outcome, restored) = checkpoint::load_or_quarantine(path, fingerprint, recorder);
            if let Some(ck) = restored {
                collector = ck.collector;
                collector.set_recorder(recorder);
                cache = ParticleCache::from_shared(ck.cache);
                rng_sense = StdRng::from_state(ck.rng_sense);
                rng_pf = StdRng::from_state(ck.rng_pf);
                rng_query = StdRng::from_state(ck.rng_query);
                next_ts = ck.next_ts as usize;
                [kl_pf, kl_sm, hit_pf, hit_sm, top1, top2, err_pf, err_sm] =
                    ck.means.map(Mean::from_state);
                if let Some(inj) = injector.as_mut() {
                    inj.restore_pending(ck.pending);
                }
                // Update-in-place: handles resolved above (collector,
                // injector, preprocessor) stay live across the restore.
                recorder.restore(&ck.metrics);
                start_second = ck.next_second;
            }
            if let Ok(mut slot) = self.last_recovery.lock() {
                *slot = Some(outcome);
            }
        }

        let supervision = SupervisionOptions {
            budget: p.query_budget,
            ..SupervisionOptions::default()
        };

        let horizon = if injector.is_some() {
            p.duration + jitter
        } else {
            p.duration
        };
        for second in start_second..=horizon {
            // Simulated crash — before the checkpoint due this second, so
            // recovery replays from the previous snapshot, never this one.
            if self.kill_after == Some(second) {
                break;
            }
            if let Some(path) = &ckpt_path {
                if p.checkpoint_every > 0 && second > 0 && second.is_multiple_of(p.checkpoint_every)
                {
                    let metrics = recorder.snapshot();
                    let view = checkpoint::CheckpointView {
                        fingerprint,
                        next_second: second,
                        next_ts: next_ts as u64,
                        collector: &collector,
                        cache: cache.shared(),
                        rng_sense: rng_sense.state(),
                        rng_pf: rng_pf.state(),
                        rng_query: rng_query.state(),
                        means: [kl_pf, kl_sm, hit_pf, hit_sm, top1, top2, err_pf, err_sm]
                            .map(|m| m.state()),
                        pending: injector.as_ref().map(|inj| inj.pending()),
                        metrics: &metrics,
                    };
                    match checkpoint::save(path, &view) {
                        Ok(()) => recorder.add("recovery.checkpoints_written", 1),
                        // Best effort: a full disk must degrade durability,
                        // not kill the run.
                        Err(_) => recorder.add("recovery.checkpoint_errors", 1),
                    }
                }
            }
            match injector.as_mut() {
                None => {
                    let detections = reading_gen.detections_at(&mut rng_sense, &traces, second);
                    collector.ingest_second(second, &detections);
                }
                Some(inj) => {
                    // Past `duration` nothing new is generated; the extra
                    // seconds only drain the injector's jitter buffer.
                    let detections = if second <= p.duration {
                        reading_gen.detections_at(&mut rng_sense, &traces, second)
                    } else {
                        Vec::new()
                    };
                    let delivered = inj.step(second, &detections);
                    collector.ingest_delivery(second, &delivered);
                }
            }
            let watermark = if injector.is_some() {
                second.saturating_sub(jitter)
            } else {
                second
            };

            while next_ts < timestamps.len() && timestamps[next_ts] == watermark {
                next_ts += 1;
                let now = watermark;
                recorder.add("sim.timestamps_evaluated", 1);

                // Both probabilistic indexes over all objects. One pass
                // seed per timestamp; each object then filters on its own
                // derived RNG stream, so `parallelism` never changes the
                // numbers.
                let pass_seed: u64 = rng_pf.random();
                // ripq-lint: allow(no-nondeterminism) -- wall-clock span timing, recorder-gated, never feeds results
                let t_pf = obs_on.then(Instant::now);
                // The supervised path adds panic isolation and the
                // deadline-budget degradation ladder; with the default
                // budget (`None`) it is the exact streamed pass.
                let supervised = preprocessor.process_supervised(
                    pass_seed,
                    &collector,
                    &objects,
                    now,
                    Some(cache.shared()),
                    p.parallelism,
                    &supervision,
                );
                // Lazily counted so fault-free goldens never see the name.
                if !supervised.degradation.is_empty() {
                    recorder.add("sim.objects_degraded", supervised.degradation.len() as u64);
                }
                let pf_index = supervised.index;
                if let Some(t) = t_pf {
                    recorder.record_span("run/pf_index", t.elapsed());
                }
                // ripq-lint: allow(no-nondeterminism) -- wall-clock span timing, recorder-gated, never feeds results
                let t_sm = obs_on.then(Instant::now);
                let sm_index = w.symbolic.build_index(&collector, &objects, now);
                if let Some(t) = t_sm {
                    recorder.record_span("run/sm_index", t.elapsed());
                }
                // ripq-lint: allow(no-nondeterminism) -- wall-clock span timing, recorder-gated, never feeds results
                let t_queries = obs_on.then(Instant::now);

                // Range queries.
                recorder.add(
                    "sim.range_queries_issued",
                    p.range_queries_per_timestamp as u64,
                );
                for _ in 0..p.range_queries_per_timestamp {
                    let window = self.random_window(&mut rng_query);
                    let truth = ground_truth.range(&window, now);
                    if truth.is_empty() {
                        continue;
                    }
                    let pf_rs = evaluate_range(&w.plan, &w.anchors, &pf_index, &window);
                    let sm_rs = evaluate_range(&w.plan, &w.anchors, &sm_index, &window);
                    if let Some(kl) = metrics::range_kl(&truth, &pf_rs, &objects) {
                        kl_pf.push(kl);
                    }
                    if let Some(kl) = metrics::range_kl(&truth, &sm_rs, &objects) {
                        kl_sm.push(kl);
                    }
                }

                // kNN queries.
                recorder.add("sim.knn_queries_issued", knn_points.len() as u64);
                for (qi, &point) in knn_points.iter().enumerate() {
                    let truth = ground_truth.knn(point, p.k, now);
                    let query = KnnQuery::new(QueryId::new(qi as u32), point, p.k).expect("k >= 1");
                    let (pf_rs, sm_rs) = match &oracle {
                        Some(or) => (
                            evaluate_knn_with_oracle(&w.graph, &w.anchors, &pf_index, &query, or),
                            evaluate_knn_with_oracle(&w.graph, &w.anchors, &sm_index, &query, or),
                        ),
                        None => (
                            evaluate_knn(&w.graph, &w.anchors, &pf_index, &query),
                            evaluate_knn(&w.graph, &w.anchors, &sm_index, &query),
                        ),
                    };
                    hit_pf.push(metrics::knn_hit_rate(pf_rs.objects(), &truth, p.k));
                    // SM: only the maximum-probability k-set counts.
                    hit_sm.push(metrics::knn_hit_rate(
                        metrics::top_k_objects(&sm_rs, p.k),
                        &truth,
                        p.k,
                    ));
                }

                // Top-k success of the PF inference, plus the mean
                // localization error of both methods.
                for t in &traces {
                    let true_pos = t.at(now);
                    let true_pt = w.graph.point_of(true_pos);
                    if let Some(dist) = pf_index.distribution(&t.object) {
                        top1.push(f64::from(metrics::top_k_success(
                            w.symbolic.cells(),
                            &w.anchors,
                            dist,
                            true_pos,
                            1,
                        )));
                        top2.push(f64::from(metrics::top_k_success(
                            w.symbolic.cells(),
                            &w.anchors,
                            dist,
                            true_pos,
                            2,
                        )));
                        err_pf.push(metrics::expected_error(&w.anchors, dist, true_pt));
                    }
                    if let Some(dist) = sm_index.distribution(&t.object) {
                        err_sm.push(metrics::expected_error(&w.anchors, dist, true_pt));
                    }
                }
                if let Some(t) = t_queries {
                    recorder.record_span("run/queries", t.elapsed());
                }
            }
        }
        if let Some(t) = t_run {
            recorder.record_span("run", t.elapsed());
        }
        // Mirror the facade's oracle effort gauges so `--metrics-json`
        // shows how much graph the ALT backend searched. Deterministic
        // cumulative counts — answers never depend on them.
        if let Some(or) = &oracle {
            let os = or.stats();
            recorder.set_gauge("oracle.p2p_queries", os.p2p_queries);
            recorder.set_gauge("oracle.p2p_memo_hits", os.p2p_memo_hits);
            recorder.set_gauge("oracle.p2p_settled", os.p2p_settled);
            recorder.set_gauge("oracle.scan_queries", os.scan_queries);
            recorder.set_gauge("oracle.scan_settled", os.scan_settled);
            recorder.set_gauge("oracle.scan_anchor_candidates", os.scan_anchor_candidates);
            recorder.set_gauge("oracle.path_queries", os.path_queries);
            recorder.set_gauge("oracle.path_settled", os.path_settled);
            recorder.set_gauge("oracle.landmarks", or.landmarks().len() as u64);
        }

        AccuracyReport {
            range_kl_pf: kl_pf.value(),
            range_kl_sm: kl_sm.value(),
            knn_hit_pf: hit_pf.value(),
            knn_hit_sm: hit_sm.value(),
            top1_success: top1.value(),
            top2_success: top2.value(),
            mean_error_pf: err_pf.value(),
            mean_error_sm: err_sm.value(),
            range_queries_evaluated: kl_pf.count(),
            knn_queries_evaluated: hit_pf.count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_produces_sane_metrics() {
        let report = Experiment::new(ExperimentParams::smoke()).run();
        assert!(report.range_queries_evaluated > 0);
        assert!(report.knn_queries_evaluated > 0);
        assert!(report.range_kl_pf.is_finite() && report.range_kl_pf >= 0.0);
        assert!(report.range_kl_sm.is_finite() && report.range_kl_sm >= 0.0);
        assert!((0.0..=1.0).contains(&report.knn_hit_pf));
        assert!((0.0..=1.0).contains(&report.knn_hit_sm));
        assert!((0.0..=1.0).contains(&report.top1_success));
        assert!((0.0..=1.0).contains(&report.top2_success));
        assert!(
            report.top2_success >= report.top1_success,
            "top-2 dominates top-1 by construction"
        );
    }

    #[test]
    fn pf_beats_sm_on_default_style_run() {
        // The paper's headline result at (near-)default parameters: the
        // particle filter's KL divergence is lower and its hit rate higher
        // than the symbolic model's. A smoke-sized run shows the same
        // ordering.
        let params = ExperimentParams {
            num_objects: 40,
            duration: 200,
            warmup: 50,
            eval_timestamps: 8,
            range_queries_per_timestamp: 30,
            knn_query_points: 10,
            ..Default::default()
        };
        let report = Experiment::new(params).run();
        assert!(
            report.range_kl_pf < report.range_kl_sm,
            "PF KL {} must beat SM KL {}",
            report.range_kl_pf,
            report.range_kl_sm
        );
        assert!(
            report.knn_hit_pf > report.knn_hit_sm,
            "PF hit rate {} must beat SM hit rate {}",
            report.knn_hit_pf,
            report.knn_hit_sm
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let params = ExperimentParams::smoke();
        let r1 = Experiment::new(params).run();
        let r2 = Experiment::new(params).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn parallel_preprocessing_does_not_change_results() {
        let base = ExperimentParams::smoke();
        let sequential = Experiment::new(base).run();
        let parallel = Experiment::new(ExperimentParams {
            parallelism: Some(4),
            ..base
        })
        .run();
        // AccuracyReport is Copy/PartialEq over f64 fields: this is a
        // bit-for-bit comparison of every metric.
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn metrics_snapshot_is_parallelism_invariant() {
        let base = ExperimentParams {
            observability: true,
            ..ExperimentParams::smoke()
        };
        let (r1, s1) = Experiment::new(base).run_with_metrics();
        let (r2, s2) = Experiment::new(ExperimentParams {
            parallelism: Some(4),
            ..base
        })
        .run_with_metrics();
        assert_eq!(r1, r2);
        let s1 = s1.expect("observability on yields a snapshot");
        let s2 = s2.expect("observability on yields a snapshot");
        // All metric operations commute, so every counter, gauge and
        // histogram is identical regardless of worker scheduling. Span
        // durations are wall-clock here (the sim harness has no logical
        // clock) — only their keys and counts are checked.
        assert_eq!(s1.counters, s2.counters);
        assert_eq!(s1.gauges, s2.gauges);
        assert_eq!(s1.histograms, s2.histograms);
        let span_counts = |s: &ripq_obs::MetricsSnapshot| {
            s.spans
                .iter()
                .map(|(k, v)| (k.clone(), v.count))
                .collect::<Vec<_>>()
        };
        assert_eq!(span_counts(&s1), span_counts(&s2));
        assert!(s1.spans.contains_key("run/pf_index"));
        assert!(s1.counters.contains_key("collector.entries_aggregated"));
        assert!(s1.counters.contains_key("pf.sir_iterations"));
        assert!(s1.counters.contains_key("sim.timestamps_evaluated"));
        assert!(s1.histograms.contains_key("pf.ess"));
    }

    #[test]
    fn alt_backend_reproduces_dijkstra_run_bit_for_bit() {
        let base = ExperimentParams::smoke();
        let dijkstra = Experiment::new(base).run();
        let alt = Experiment::new(ExperimentParams {
            distance_backend: DistanceBackend::Alt,
            ..base
        })
        .run();
        // AccuracyReport is Copy/PartialEq over f64 fields — every trace,
        // reading, inference and answer must match bit for bit; the
        // backend only changes how much graph each query settles.
        assert_eq!(dijkstra, alt);
    }

    #[test]
    fn run_checkpointed_under_dijkstra_resumes_under_alt() {
        // The backend is excluded from the params fingerprint (like
        // `parallelism`): a snapshot written mid-run under one backend
        // must resume under the other and still match the golden run.
        let params = ExperimentParams {
            checkpoint_every: 20,
            ..ExperimentParams::smoke()
        };
        let golden = Experiment::new(params).run();

        let dir = ckpt_dir("alt_resume");
        let _ = Experiment::new(params)
            .with_checkpoint_dir(&dir)
            .with_kill_after(90)
            .run();
        let life2 = Experiment::new(ExperimentParams {
            distance_backend: DistanceBackend::Alt,
            ..params
        })
        .with_checkpoint_dir(&dir);
        let report = life2.run();
        assert_eq!(
            life2.last_recovery(),
            Some(RecoveryOutcome::Resumed { replay_from: 80 })
        );
        assert_eq!(report, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_absent_when_observability_off() {
        let (_, snapshot) = Experiment::new(ExperimentParams::smoke()).run_with_metrics();
        assert!(snapshot.is_none());
    }

    #[test]
    fn inactive_fault_plan_takes_the_classic_path_bit_for_bit() {
        let base = ExperimentParams::smoke();
        let clean = Experiment::new(base).run();
        // An all-zero plan — even with a different fault seed — must not
        // perturb a single RNG draw or collector call.
        let inert = Experiment::new(ExperimentParams {
            faults: crate::FaultPlan {
                seed: 0xDEAD_BEEF,
                ..crate::FaultPlan::none()
            },
            ..base
        })
        .run();
        assert_eq!(clean, inert);
    }

    #[test]
    fn faulted_run_is_deterministic_and_parallelism_invariant() {
        let params = ExperimentParams {
            faults: crate::FaultPlan {
                drop_probability: 0.2,
                duplicate_probability: 0.1,
                max_delay_seconds: 3,
                outage_rate: 0.002,
                ..crate::FaultPlan::none()
            },
            ..ExperimentParams::smoke()
        };
        let r1 = Experiment::new(params).run();
        let r2 = Experiment::new(params).run();
        assert_eq!(r1, r2, "same fault plan must reproduce bit-for-bit");
        let r4 = Experiment::new(ExperimentParams {
            parallelism: Some(4),
            ..params
        })
        .run();
        assert_eq!(r1, r4, "worker count must not leak into faulted results");
        assert!(r1.range_queries_evaluated > 0);
    }

    #[test]
    fn absorbable_faults_leave_answers_unchanged() {
        let base = ExperimentParams::smoke();
        let clean = Experiment::new(base).run();

        // Duplicates only: the collector's idempotent ingest absorbs every
        // copy, so the report matches the fault-free run exactly.
        let dup_only = Experiment::new(ExperimentParams {
            faults: crate::FaultPlan {
                duplicate_probability: 0.5,
                ..crate::FaultPlan::none()
            },
            ..base
        })
        .run();
        assert_eq!(clean, dup_only, "duplicates must be absorbed exactly");

        // Delays bounded by the reorder window only: the watermark waits
        // out the jitter, so every reading lands before its logical second
        // is evaluated.
        let delay_only = Experiment::new(ExperimentParams {
            faults: crate::FaultPlan {
                max_delay_seconds: 4,
                ..crate::FaultPlan::none()
            },
            ..base
        })
        .run();
        assert_eq!(clean, delay_only, "in-window reorder must be absorbed");
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ripq_sim_exp_ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Counters/gauges minus the `recovery.*` bookkeeping, which by
    /// design differs between an uninterrupted life and a resumed one.
    fn comparable_counters(s: &MetricsSnapshot) -> std::collections::BTreeMap<String, u64> {
        s.counters
            .iter()
            .filter(|(k, _)| !k.starts_with("recovery."))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    #[test]
    fn killed_run_resumes_bit_for_bit() {
        let params = ExperimentParams {
            checkpoint_every: 20,
            observability: true,
            ..ExperimentParams::smoke()
        };
        let (golden, golden_snap) = Experiment::new(params).run_with_metrics();
        let golden_snap = golden_snap.expect("observability on");

        let dir = ckpt_dir("resume");
        let life1 = Experiment::new(params)
            .with_checkpoint_dir(&dir)
            .with_kill_after(90);
        let _ = life1.run_with_metrics();
        assert_eq!(life1.last_recovery(), Some(RecoveryOutcome::ColdStart));

        // Life 2 resumes — under a different worker count, which must not
        // change a single bit of the answers.
        let life2 = Experiment::new(ExperimentParams {
            parallelism: Some(2),
            ..params
        })
        .with_checkpoint_dir(&dir);
        let (report, snap) = life2.run_with_metrics();
        let snap = snap.expect("observability on");
        assert_eq!(
            life2.last_recovery(),
            Some(RecoveryOutcome::Resumed { replay_from: 80 })
        );
        // AccuracyReport is Copy/PartialEq over f64 fields — this is a
        // bit-for-bit comparison of every metric.
        assert_eq!(report, golden);
        assert_eq!(
            comparable_counters(&snap),
            comparable_counters(&golden_snap)
        );
        assert_eq!(snap.gauges, golden_snap.gauges);
        assert_eq!(snap.histograms, golden_snap.histograms);
        let span_counts = |s: &MetricsSnapshot| {
            s.spans
                .iter()
                .map(|(k, v)| (k.clone(), v.count))
                .collect::<Vec<_>>()
        };
        assert_eq!(span_counts(&snap), span_counts(&golden_snap));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulted_run_resumes_through_the_jitter_buffer() {
        // Delay + drop faults keep readings in the injector's in-flight
        // buffer across the kill point, so this exercises the pending
        // snapshot/restore path end to end.
        let params = ExperimentParams {
            faults: crate::FaultPlan {
                drop_probability: 0.2,
                duplicate_probability: 0.1,
                max_delay_seconds: 3,
                outage_rate: 0.002,
                ..crate::FaultPlan::none()
            },
            checkpoint_every: 7,
            ..ExperimentParams::smoke()
        };
        let golden = Experiment::new(params).run();

        let dir = ckpt_dir("faulted_resume");
        let _ = Experiment::new(params)
            .with_checkpoint_dir(&dir)
            .with_kill_after(93)
            .run();
        let life2 = Experiment::new(params).with_checkpoint_dir(&dir);
        let report = life2.run();
        assert_eq!(
            life2.last_recovery(),
            Some(RecoveryOutcome::Resumed { replay_from: 91 })
        );
        assert_eq!(report, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_snapshot_quarantines_and_cold_rebuild_matches() {
        let params = ExperimentParams {
            checkpoint_every: 20,
            ..ExperimentParams::smoke()
        };
        let golden = Experiment::new(params).run();

        let dir = ckpt_dir("damaged");
        let _ = Experiment::new(params)
            .with_checkpoint_dir(&dir)
            .with_kill_after(100)
            .run();
        // Flip one bit in the middle of the snapshot.
        let path = crate::checkpoint::snapshot_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        // ripq-lint: allow(atomic-persistence) -- test deliberately plants a corrupted file
        std::fs::write(&path, &bytes).unwrap();

        let life2 = Experiment::new(params).with_checkpoint_dir(&dir);
        let report = life2.run();
        match life2.last_recovery() {
            Some(RecoveryOutcome::Quarantined { path: moved }) => {
                assert!(moved.to_string_lossy().ends_with(".corrupt"));
                assert!(moved.exists());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(report, golden, "cold rebuild after quarantine must match");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_params_snapshot_is_not_resumed() {
        let params = ExperimentParams {
            checkpoint_every: 20,
            ..ExperimentParams::smoke()
        };
        let dir = ckpt_dir("stale_params");
        let _ = Experiment::new(params)
            .with_checkpoint_dir(&dir)
            .with_kill_after(100)
            .run();

        // Same directory, different seed: the fingerprint must refuse it.
        let other = ExperimentParams {
            seed: params.seed + 1,
            ..params
        };
        let golden = Experiment::new(other).run();
        let life2 = Experiment::new(other).with_checkpoint_dir(&dir);
        let report = life2.run();
        assert!(matches!(
            life2.last_recovery(),
            Some(RecoveryOutcome::Quarantined { .. })
        ));
        assert_eq!(report, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointing_does_not_perturb_results() {
        let base = ExperimentParams::smoke();
        let clean = Experiment::new(base).run();
        let dir = ckpt_dir("overhead");
        let checked = Experiment::new(ExperimentParams {
            checkpoint_every: 10,
            ..base
        })
        .with_checkpoint_dir(&dir);
        let report = checked.run();
        assert_eq!(checked.last_recovery(), Some(RecoveryOutcome::ColdStart));
        assert_eq!(clean, report, "checkpoint writes must not touch results");
        assert!(crate::checkpoint::snapshot_path(&dir).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_budget_degrades_deterministically() {
        let params = ExperimentParams {
            query_budget: Some(500),
            observability: true,
            ..ExperimentParams::smoke()
        };
        let (r1, s1) = Experiment::new(params).run_with_metrics();
        let (r2, s2) = Experiment::new(ExperimentParams {
            parallelism: Some(4),
            ..params
        })
        .run_with_metrics();
        assert_eq!(r1, r2, "budgeted degradation must stay deterministic");
        let s1 = s1.unwrap();
        assert_eq!(s1.counters, s2.unwrap().counters);
        assert!(
            s1.counters
                .get("sim.objects_degraded")
                .copied()
                .unwrap_or(0)
                > 0,
            "a 500-unit budget over 30 objects must force degradation"
        );
        // Degraded answers are still answers.
        assert!(r1.range_queries_evaluated > 0);
        assert!((0.0..=1.0).contains(&r1.knn_hit_pf));
    }

    #[test]
    fn accumulator_averages() {
        let mut acc = AccuracyAccumulator::default();
        acc.push(&AccuracyReport {
            range_kl_pf: 1.0,
            knn_hit_pf: 0.5,
            ..Default::default()
        });
        acc.push(&AccuracyReport {
            range_kl_pf: 3.0,
            knn_hit_pf: 1.0,
            ..Default::default()
        });
        let r = acc.report();
        assert_eq!(r.range_kl_pf, 2.0);
        assert_eq!(r.knn_hit_pf, 0.75);
    }
}
