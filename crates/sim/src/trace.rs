//! The true trace generator (§5.1).
//!
//! "We let each object randomly select a room as its destination, and walk
//! along the shortest path on the indoor walking graph from its current
//! location to the destination node. We simulate the objects' speeds using
//! a Gaussian distribution with μ = 1 m/s and σ = 0.1."
//!
//! Between trips the object dwells inside its destination room for an
//! exponentially-distributed number of seconds (mean configurable), which
//! exercises the motion model's room-stay behavior.

use rand::Rng;
use rand_distr::{Distribution, Normal};
use ripq_floorplan::RoomId;
use ripq_geom::Point2;
use ripq_graph::{DistanceOracle, GraphPos, Path, WalkingGraph};
use ripq_rfid::ObjectId;

/// The per-second true positions of one object.
#[derive(Debug, Clone)]
pub struct TrueTrace {
    /// The object this trace belongs to.
    pub object: ObjectId,
    /// `positions[t]` = the object's graph position at second `t`.
    pub positions: Vec<GraphPos>,
}

impl TrueTrace {
    /// The position at second `t` (clamped to the trace end).
    pub fn at(&self, t: u64) -> GraphPos {
        let idx = (t as usize).min(self.positions.len() - 1);
        self.positions[idx]
    }

    /// The 2-D point at second `t`.
    pub fn point_at(&self, graph: &WalkingGraph, t: u64) -> Point2 {
        graph.point_of(self.at(t))
    }

    /// Trace length in seconds (number of recorded positions).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when no positions were recorded.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Generates ground-truth object movements on the walking graph.
pub struct TraceGenerator {
    speed_mean: f64,
    speed_std: f64,
    dwell_mean: f64,
}

impl TraceGenerator {
    /// Creates a generator with the paper's Gaussian speed model and the
    /// given mean room-dwell time (seconds).
    pub fn new(dwell_mean: f64) -> Self {
        TraceGenerator {
            speed_mean: 1.0,
            speed_std: 0.1,
            dwell_mean: dwell_mean.max(0.0),
        }
    }

    fn sample_speed<R: Rng>(&self, rng: &mut R) -> f64 {
        let normal = Normal::new(self.speed_mean, self.speed_std).expect("finite parameters");
        for _ in 0..16 {
            let v = normal.sample(rng);
            if v > 0.05 {
                return v;
            }
        }
        self.speed_mean
    }

    fn sample_dwell<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.dwell_mean <= 0.0 {
            return 0;
        }
        // Exponential via inverse CDF.
        let u: f64 = rng.random::<f64>().max(1e-12);
        (-self.dwell_mean * u.ln()).round() as u64
    }

    /// Generates `count` traces of `duration + 1` per-second positions
    /// (seconds `0..=duration`). Objects start at the centers of random
    /// rooms.
    pub fn generate<R: Rng>(
        &self,
        rng: &mut R,
        graph: &WalkingGraph,
        room_count: usize,
        count: usize,
        duration: u64,
    ) -> Vec<TrueTrace> {
        self.generate_routed(rng, graph, room_count, count, duration, None)
    }

    /// Like [`TraceGenerator::generate`], but routing each trip through
    /// the distance oracle's truncated path planner when one is given.
    /// Routes are leg-identical to full Dijkstra (the oracle's planner
    /// is plain Dijkstra truncated at the target edge), so traces — and
    /// therefore every downstream reading and answer — are the same
    /// under both; only the search effort differs.
    pub fn generate_routed<R: Rng>(
        &self,
        rng: &mut R,
        graph: &WalkingGraph,
        room_count: usize,
        count: usize,
        duration: u64,
        router: Option<&DistanceOracle>,
    ) -> Vec<TrueTrace> {
        assert!(room_count > 1, "need at least two rooms for destinations");
        (0..count)
            .map(|i| {
                let object = ObjectId::new(i as u32);
                let positions = self.walk(rng, graph, room_count, duration, router);
                TrueTrace { object, positions }
            })
            .collect()
    }

    /// Simulates one object.
    fn walk<R: Rng>(
        &self,
        rng: &mut R,
        graph: &WalkingGraph,
        room_count: usize,
        duration: u64,
        router: Option<&DistanceOracle>,
    ) -> Vec<GraphPos> {
        // Start at a random room's node.
        let mut current_room = rng.random_range(0..room_count);
        let start_node = graph.room_node(RoomId::new(current_room as u32));
        let start_edge = graph.edges_at(start_node)[0];
        let offset = graph
            .edge(start_edge)
            .offset_of(start_node)
            .expect("room node is an endpoint");
        let mut pos = GraphPos::new(start_edge, offset);

        let mut positions = Vec::with_capacity(duration as usize + 1);
        positions.push(pos);

        let mut path: Option<(Path, f64, f64)> = None; // (path, travelled, speed)
        let mut dwell_left = self.sample_dwell(rng);

        for _ in 1..=duration {
            if let Some((p, travelled, speed)) = path.as_mut() {
                *travelled += *speed;
                pos = p.pos_at(*travelled);
                if *travelled >= p.length() {
                    pos = p.end();
                    path = None;
                    dwell_left = self.sample_dwell(rng);
                }
            } else if dwell_left > 0 {
                dwell_left -= 1;
            } else {
                // Pick a new destination room and route to it.
                let mut dest = rng.random_range(0..room_count);
                if dest == current_room {
                    dest = (dest + 1) % room_count;
                }
                current_room = dest;
                let dest_node = graph.room_node(RoomId::new(dest as u32));
                let dest_edge = graph.edges_at(dest_node)[0];
                let dest_offset = graph
                    .edge(dest_edge)
                    .offset_of(dest_node)
                    .expect("room node is an endpoint");
                let target = GraphPos::new(dest_edge, dest_offset);
                let route = match router {
                    Some(oracle) => oracle.plan_path(graph, pos, target),
                    None => graph.shortest_paths_from(pos).path_to(graph, target),
                }
                .expect("office graph is connected");
                let speed = self.sample_speed(rng);
                if route.is_empty() {
                    dwell_left = self.sample_dwell(rng).max(1);
                } else {
                    path = Some((route, 0.0, speed));
                }
            }
            positions.push(pos);
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentParams, SimWorld};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> SimWorld {
        SimWorld::build(&ExperimentParams::smoke())
    }

    #[test]
    fn traces_have_requested_shape() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(1);
        let gen = TraceGenerator::new(10.0);
        let traces = gen.generate(&mut rng, &w.graph, w.plan.rooms().len(), 5, 100);
        assert_eq!(traces.len(), 5);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.object, ObjectId::new(i as u32));
            assert_eq!(t.len(), 101);
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn per_second_displacement_bounded_by_speed() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let gen = TraceGenerator::new(5.0);
        let traces = gen.generate(&mut rng, &w.graph, w.plan.rooms().len(), 3, 200);
        for t in &traces {
            for s in 1..t.len() as u64 {
                let a = t.point_at(&w.graph, s - 1);
                let b = t.point_at(&w.graph, s);
                // Euclidean displacement ≤ walked arc length ≤ ~1.5 m/s.
                assert!(
                    a.distance(b) <= 1.6,
                    "second {s}: jumped {} m",
                    a.distance(b)
                );
            }
        }
    }

    #[test]
    fn positions_always_on_graph() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(3);
        let gen = TraceGenerator::new(10.0);
        let traces = gen.generate(&mut rng, &w.graph, w.plan.rooms().len(), 3, 150);
        for t in &traces {
            for pos in &t.positions {
                let e = w.graph.edge(pos.edge);
                assert!(pos.offset >= -1e-9 && pos.offset <= e.length() + 1e-9);
            }
        }
    }

    #[test]
    fn objects_actually_move_between_rooms() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(4);
        let gen = TraceGenerator::new(3.0);
        let traces = gen.generate(&mut rng, &w.graph, w.plan.rooms().len(), 4, 300);
        for t in &traces {
            let start = t.point_at(&w.graph, 0);
            let max_excursion = (0..t.len() as u64)
                .map(|s| t.point_at(&w.graph, s).distance(start))
                .fold(0.0f64, f64::max);
            assert!(
                max_excursion > 5.0,
                "object never strayed more than {max_excursion} m in 300 s"
            );
        }
    }

    #[test]
    fn trace_at_clamps_beyond_end() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(5);
        let gen = TraceGenerator::new(10.0);
        let traces = gen.generate(&mut rng, &w.graph, w.plan.rooms().len(), 1, 50);
        let t = &traces[0];
        assert_eq!(t.at(50), t.at(9999));
    }

    #[test]
    fn zero_dwell_keeps_objects_moving() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(12);
        let gen = TraceGenerator::new(0.0);
        let traces = gen.generate(&mut rng, &w.graph, w.plan.rooms().len(), 2, 200);
        for t in &traces {
            // With no dwell the object is in motion almost every second:
            // count stationary steps (same point twice).
            let mut still = 0;
            for s in 1..t.len() as u64 {
                if t.point_at(&w.graph, s - 1)
                    .distance(t.point_at(&w.graph, s))
                    < 1e-9
                {
                    still += 1;
                }
            }
            assert!(
                still < t.len() / 4,
                "object parked {still}/{} seconds with zero dwell",
                t.len()
            );
        }
    }

    #[test]
    fn oracle_routing_reproduces_dijkstra_traces_exactly() {
        let w = world();
        let oracle = DistanceOracle::build(&w.graph, 4);
        let gen = TraceGenerator::new(8.0);
        let plain = gen.generate(
            &mut StdRng::seed_from_u64(77),
            &w.graph,
            w.plan.rooms().len(),
            4,
            150,
        );
        let routed = gen.generate_routed(
            &mut StdRng::seed_from_u64(77),
            &w.graph,
            w.plan.rooms().len(),
            4,
            150,
            Some(&oracle),
        );
        for (a, b) in plain.iter().zip(&routed) {
            assert_eq!(a.object, b.object);
            assert_eq!(a.positions, b.positions, "routes must be leg-identical");
        }
        assert!(oracle.stats().path_queries > 0, "planner was exercised");
    }

    #[test]
    fn deterministic_under_seed() {
        let w = world();
        let gen = TraceGenerator::new(10.0);
        let t1 = gen.generate(
            &mut StdRng::seed_from_u64(9),
            &w.graph,
            w.plan.rooms().len(),
            2,
            60,
        );
        let t2 = gen.generate(
            &mut StdRng::seed_from_u64(9),
            &w.graph,
            w.plan.rooms().len(),
            2,
            60,
        );
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a.positions, b.positions);
        }
    }
}
