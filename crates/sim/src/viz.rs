//! SVG rendering of floor plans, deployments, traces and inferred
//! distributions — the debugging view every spatial system needs.
//!
//! No external dependencies: the renderer writes plain SVG 1.1. Colors and
//! sizes are chosen for quick visual triage (rooms grey, hallways white,
//! readers with activation disks, anchor clouds as probability-scaled
//! dots, traces as polylines).

use ripq_floorplan::FloorPlan;
use ripq_geom::{Point2, Rect};
use ripq_graph::{AnchorId, AnchorSet, WalkingGraph};
use ripq_rfid::Reader;
use std::fmt::Write as _;

/// Builder for an SVG scene over one floor plan.
pub struct SvgScene<'a> {
    plan: &'a FloorPlan,
    scale: f64,
    body: String,
}

impl<'a> SvgScene<'a> {
    /// Starts a scene; `scale` is pixels per meter (8–12 is comfortable).
    pub fn new(plan: &'a FloorPlan, scale: f64) -> Self {
        assert!(scale > 0.0, "positive scale");
        let mut scene = SvgScene {
            plan,
            scale,
            body: String::new(),
        };
        scene.draw_plan();
        scene
    }

    fn tx(&self, p: Point2) -> (f64, f64) {
        // Flip y so the plan reads north-up.
        let b = self.plan.bounds();
        (
            (p.x - b.min().x + 1.0) * self.scale,
            (b.max().y - p.y + 1.0) * self.scale,
        )
    }

    fn rect(&mut self, r: &Rect, fill: &str, stroke: &str) {
        let (x, y) = self.tx(Point2::new(r.min().x, r.max().y));
        let w = r.width() * self.scale;
        let h = r.height() * self.scale;
        writeln!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}" stroke="{stroke}" stroke-width="1"/>"#
        )
        .expect("writing to String cannot fail");
    }

    fn circle(&mut self, c: Point2, r_px: f64, fill: &str, opacity: f64) {
        let (cx, cy) = self.tx(c);
        writeln!(
            self.body,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r_px:.1}" fill="{fill}" fill-opacity="{opacity:.2}"/>"#
        )
        .expect("writing to String cannot fail");
    }

    fn draw_plan(&mut self) {
        let rooms: Vec<Rect> = self.plan.rooms().iter().map(|r| *r.footprint()).collect();
        let halls: Vec<Rect> = self
            .plan
            .hallways()
            .iter()
            .map(|h| *h.footprint())
            .collect();
        let doors: Vec<Point2> = self.plan.doors().iter().map(|d| d.position()).collect();
        for fp in halls {
            self.rect(&fp, "#ffffff", "#888888");
        }
        for fp in rooms {
            self.rect(&fp, "#e8e8e8", "#555555");
        }
        for p in doors {
            self.circle(p, 2.0, "#b07030", 1.0);
        }
    }

    /// Draws the walking graph's edges as thin lines.
    pub fn draw_graph(&mut self, graph: &WalkingGraph) -> &mut Self {
        for e in graph.edges() {
            let pts = e.geometry.points().to_vec();
            for w in pts.windows(2) {
                let (x1, y1) = self.tx(w[0]);
                let (x2, y2) = self.tx(w[1]);
                writeln!(
                    self.body,
                    r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#4060c0" stroke-width="0.7" stroke-opacity="0.6"/>"##
                )
                .expect("writing to String cannot fail");
            }
        }
        self
    }

    /// Draws readers with their activation disks.
    pub fn draw_readers(&mut self, readers: &[Reader]) -> &mut Self {
        for r in readers {
            self.circle(
                r.position(),
                r.activation_range() * self.scale,
                "#40a040",
                0.18,
            );
            self.circle(r.position(), 2.5, "#208020", 1.0);
        }
        self
    }

    /// Draws an inferred anchor distribution: dot radius scales with
    /// probability.
    pub fn draw_distribution(
        &mut self,
        anchors: &AnchorSet,
        dist: &[(AnchorId, f64)],
        color: &str,
    ) -> &mut Self {
        for &(a, p) in dist {
            let point = anchors.anchor(a).point;
            let r = (2.0 + 10.0 * p.sqrt()).min(9.0);
            self.circle(point, r, color, 0.75);
        }
        self
    }

    /// Draws a trace as a polyline with a dot at the final position.
    pub fn draw_trace(
        &mut self,
        graph: &WalkingGraph,
        trace: &crate::TrueTrace,
        color: &str,
    ) -> &mut Self {
        let mut path = String::new();
        for (i, pos) in trace.positions.iter().enumerate() {
            let (x, y) = self.tx(graph.point_of(*pos));
            let cmd = if i == 0 { 'M' } else { 'L' };
            write!(path, "{cmd}{x:.1},{y:.1} ").expect("write to String");
        }
        writeln!(
            self.body,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.2" stroke-opacity="0.8"/>"#
        )
        .expect("writing to String cannot fail");
        if let Some(last) = trace.positions.last() {
            self.circle(graph.point_of(*last), 3.0, color, 1.0);
        }
        self
    }

    /// Finalizes the scene into a complete SVG document.
    pub fn finish(&self) -> String {
        let b = self.plan.bounds();
        let w = (b.width() + 2.0) * self.scale;
        let h = (b.height() + 2.0) * self.scale;
        format!(
            concat!(
                r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" "#,
                r#"viewBox="0 0 {w:.0} {h:.0}">"#,
                "\n<rect width=\"100%\" height=\"100%\" fill=\"#fafafa\"/>\n{body}</svg>\n"
            ),
            w = w,
            h = h,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentParams, SimWorld, TraceGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> SimWorld {
        SimWorld::build(&ExperimentParams::smoke())
    }

    #[test]
    fn scene_renders_plan_elements() {
        let w = world();
        let svg = SvgScene::new(&w.plan, 8.0).finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 30 rooms + 4 hallways + background = at least 35 rects.
        let rects = svg.matches("<rect").count();
        assert!(rects >= 35, "rects: {rects}");
        // 30 door markers.
        assert!(svg.matches("<circle").count() >= 30);
    }

    #[test]
    fn scene_with_all_layers() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(3);
        let traces =
            TraceGenerator::new(5.0).generate(&mut rng, &w.graph, w.plan.rooms().len(), 2, 60);
        let dist = vec![
            (w.anchors.anchors()[0].id, 0.5),
            (w.anchors.anchors()[5].id, 0.5),
        ];
        let mut scene = SvgScene::new(&w.plan, 10.0);
        scene
            .draw_graph(&w.graph)
            .draw_readers(&w.readers)
            .draw_distribution(&w.anchors, &dist, "#d04040")
            .draw_trace(&w.graph, &traces[0], "#4040d0");
        let svg = scene.finish();
        assert!(svg.contains("<line"), "graph layer present");
        assert!(svg.contains("<path"), "trace layer present");
        assert!(svg.contains("#d04040"), "distribution layer present");
        // Valid-ish XML: every tag closed.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn coordinates_fit_in_viewbox() {
        let w = world();
        let scene = SvgScene::new(&w.plan, 10.0);
        // Transform of the bounds corners stays inside the view.
        let b = w.plan.bounds();
        for corner in [b.min(), b.max()] {
            let (x, y) = scene.tx(corner);
            assert!(x >= 0.0 && y >= 0.0);
            assert!(x <= (b.width() + 2.0) * 10.0);
            assert!(y <= (b.height() + 2.0) * 10.0);
        }
    }
}
