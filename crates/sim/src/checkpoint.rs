//! Crash-safe checkpointing of a running [`crate::Experiment`].
//!
//! A simulation checkpoint freezes everything the per-second loop of
//! `Experiment::run` mutates — the collector timelines, the shared
//! particle cache, the three in-loop RNG streams, the accuracy
//! accumulators, the fault injector's jitter buffer and the cumulative
//! metrics — into one `experiment.ckpt` frame written atomically through
//! `ripq-persist`. Everything *else* (true traces, reader deployment,
//! kNN query points, the outage schedule) is a pure function of
//! [`ExperimentParams`] and is regenerated on resume; a CRC32
//! fingerprint of the result-relevant parameters is embedded in the
//! payload so a snapshot can never be resumed into a different
//! experiment.
//!
//! Damaged files — torn, bit-flipped, wrong format version, or written
//! by a different parameter set — are quarantined to
//! `experiment.ckpt.corrupt` and the run cold-starts; a resumed run is
//! bit-for-bit identical to an uninterrupted one.

use crate::{ExperimentParams, TaggedReading};
use ripq_core::checkpoint::{decode_metrics, encode_metrics};
use ripq_obs::{MetricsSnapshot, Recorder};
use ripq_persist::{
    crc32, load_snapshot, quarantine, seal_snapshot, write_atomic, ByteReader, ByteWriter,
    PersistError,
};
use ripq_pf::SharedParticleCache;
use ripq_rfid::{DataCollector, DeploymentStrategy, ObjectId, ReaderId};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use ripq_core::RecoveryOutcome;

/// File name of the experiment snapshot inside the checkpoint directory.
/// Distinct from the core facade's `system.ckpt`, so a directory can host
/// both without collision.
pub const SNAPSHOT_FILE: &str = "experiment.ckpt";

/// Full path of the experiment snapshot for a checkpoint directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// The number of [`crate::metrics::Mean`] accumulators a checkpoint
/// carries (KL ×2, hit rate ×2, top-k ×2, mean error ×2).
pub(crate) const MEAN_SLOTS: usize = 8;

/// Everything the per-second loop mutates, decoded back into owned form.
pub(crate) struct SimCheckpoint {
    /// First second the resumed loop must process.
    pub next_second: u64,
    /// Index into the evaluation-timestamp list.
    pub next_ts: u64,
    pub collector: DataCollector,
    pub cache: SharedParticleCache,
    pub rng_sense: [u64; 4],
    pub rng_pf: [u64; 4],
    pub rng_query: [u64; 4],
    pub means: [(f64, u64); MEAN_SLOTS],
    /// The fault injector's in-flight jitter buffer (empty when the run
    /// has no active fault plan).
    pub pending: BTreeMap<u64, Vec<TaggedReading>>,
    pub metrics: MetricsSnapshot,
}

/// Borrowed view of the loop state for encoding, so taking a checkpoint
/// never clones the collector or cache.
pub(crate) struct CheckpointView<'a> {
    pub fingerprint: u32,
    pub next_second: u64,
    pub next_ts: u64,
    pub collector: &'a DataCollector,
    pub cache: &'a SharedParticleCache,
    pub rng_sense: [u64; 4],
    pub rng_pf: [u64; 4],
    pub rng_query: [u64; 4],
    pub means: [(f64, u64); MEAN_SLOTS],
    pub pending: Option<&'a BTreeMap<u64, Vec<TaggedReading>>>,
    pub metrics: &'a MetricsSnapshot,
}

/// CRC32 fingerprint over the canonical encoding of every parameter that
/// influences the numbers. Knobs that provably cannot change results —
/// `parallelism` (bit-identical by construction), `checkpoint_every` and
/// `observability` — are excluded, so a snapshot survives resuming under
/// a different worker count or cadence.
pub(crate) fn params_fingerprint(p: &ExperimentParams) -> u32 {
    let mut w = ByteWriter::new();
    w.put_u64(p.num_particles as u64);
    w.put_f64(p.query_window_fraction);
    w.put_u64(p.num_objects as u64);
    w.put_u64(p.k as u64);
    w.put_f64(p.activation_range);
    w.put_u32(p.reader_count);
    match p.deployment {
        DeploymentStrategy::Uniform => w.put_u8(0),
        DeploymentStrategy::AtDoors => w.put_u8(1),
        DeploymentStrategy::Random { seed } => {
            w.put_u8(2);
            w.put_u64(seed);
        }
    }
    w.put_f64(p.anchor_spacing);
    w.put_f64(p.max_speed);
    w.put_u32(p.sensing.samples_per_second);
    w.put_f64(p.sensing.detection_probability);
    w.put_f64(p.sensing.false_positive_rate);
    w.put_u64(p.duration);
    w.put_u64(p.warmup);
    w.put_u64(p.eval_timestamps as u64);
    w.put_u64(p.range_queries_per_timestamp as u64);
    w.put_u64(p.knn_query_points as u64);
    w.put_f64(p.room_dwell_mean);
    w.put_bool(p.negative_evidence);
    w.put_f64(p.resample_threshold);
    w.put_f64(p.room_enter_probability);
    w.put_u64(p.coast_seconds);
    w.put_f64(p.kde_bandwidth);
    w.put_bool(p.kld_adaptive);
    w.put_f64(p.faults.drop_probability);
    w.put_f64(p.faults.duplicate_probability);
    w.put_u64(p.faults.max_delay_seconds);
    w.put_f64(p.faults.outage_rate);
    w.put_f64(p.faults.outage_mean_seconds);
    w.put_u64(p.faults.seed);
    w.put_opt_u64(p.query_budget);
    w.put_u64(p.seed);
    crc32(&w.into_bytes())
}

fn encode(view: &CheckpointView<'_>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(view.fingerprint);
    w.put_u64(view.next_second);
    w.put_u64(view.next_ts);
    view.collector.encode_state(&mut w);
    view.cache.encode_state(&mut w);
    for word in view
        .rng_sense
        .iter()
        .chain(&view.rng_pf)
        .chain(&view.rng_query)
    {
        w.put_u64(*word);
    }
    for (sum, n) in view.means {
        w.put_f64(sum);
        w.put_u64(n);
    }
    match view.pending {
        None => w.put_seq_len(0),
        Some(pending) => {
            w.put_seq_len(pending.len());
            for (&delivery, bucket) in pending {
                w.put_u64(delivery);
                w.put_seq_len(bucket.len());
                for &(logical, object, reader) in bucket {
                    w.put_u64(logical);
                    w.put_u32(object.raw());
                    w.put_u32(reader.raw());
                }
            }
        }
    }
    encode_metrics(&mut w, view.metrics);
    w.into_bytes()
}

fn decode(payload: &[u8], expected_fingerprint: u32) -> Result<SimCheckpoint, PersistError> {
    let mut r = ByteReader::new(payload);
    let fingerprint = r.get_u32()?;
    if fingerprint != expected_fingerprint {
        // A valid frame for a *different* experiment. Resuming it would
        // silently mix parameter sets, so treat it like a stale format.
        return Err(PersistError::StaleVersion {
            found: fingerprint,
            supported: expected_fingerprint,
        });
    }
    let next_second = r.get_u64()?;
    let next_ts = r.get_u64()?;
    let collector = DataCollector::decode_state(&mut r)?;
    let cache = SharedParticleCache::decode_state(&mut r)?;
    let mut words = [0u64; 12];
    for word in &mut words {
        *word = r.get_u64()?;
    }
    let mut means = [(0.0, 0u64); MEAN_SLOTS];
    for slot in &mut means {
        *slot = (r.get_f64()?, r.get_u64()?);
    }
    let mut pending: BTreeMap<u64, Vec<TaggedReading>> = BTreeMap::new();
    let n_buckets = r.get_seq_len(10)?;
    for _ in 0..n_buckets {
        let delivery = r.get_u64()?;
        let n = r.get_seq_len(16)?;
        let mut bucket = Vec::with_capacity(n);
        for _ in 0..n {
            let logical = r.get_u64()?;
            let object = ObjectId::new(r.get_u32()?);
            let reader = ReaderId::new(r.get_u32()?);
            bucket.push((logical, object, reader));
        }
        pending.insert(delivery, bucket);
    }
    let metrics = decode_metrics(&mut r)?;
    if r.remaining() != 0 {
        return Err(PersistError::Torn);
    }
    Ok(SimCheckpoint {
        next_second,
        next_ts,
        collector,
        cache,
        rng_sense: words[0..4].try_into().expect("slice of 4"),
        rng_pf: words[4..8].try_into().expect("slice of 4"),
        rng_query: words[8..12].try_into().expect("slice of 4"),
        means,
        pending,
        metrics,
    })
}

/// Atomically writes one sealed checkpoint frame to `path`.
pub(crate) fn save(path: &Path, view: &CheckpointView<'_>) -> Result<(), PersistError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).map_err(|e| PersistError::Io(e.to_string()))?;
    }
    write_atomic(path, &seal_snapshot(&encode(view)))
}

/// Loads the snapshot at `path`, quarantining anything unusable.
///
/// Returns the outcome plus the decoded state on a successful resume.
/// Counters: `recovery.cold_start`, `recovery.resumed` or
/// `recovery.quarantined` tick accordingly (they are *not* part of any
/// golden — harnesses strip the `recovery.*` prefix before comparing).
pub(crate) fn load_or_quarantine(
    path: &Path,
    expected_fingerprint: u32,
    recorder: &Recorder,
) -> (RecoveryOutcome, Option<SimCheckpoint>) {
    let payload = match load_snapshot(path) {
        Ok(p) => p,
        Err(PersistError::Missing) => {
            recorder.add("recovery.cold_start", 1);
            return (RecoveryOutcome::ColdStart, None);
        }
        Err(_damaged) => return (quarantine_damaged(path, recorder), None),
    };
    match decode(&payload, expected_fingerprint) {
        Ok(ck) => {
            recorder.add("recovery.resumed", 1);
            (
                RecoveryOutcome::Resumed {
                    replay_from: ck.next_second,
                },
                Some(ck),
            )
        }
        Err(_damaged) => (quarantine_damaged(path, recorder), None),
    }
}

fn quarantine_damaged(path: &Path, recorder: &Recorder) -> RecoveryOutcome {
    recorder.add("recovery.quarantined", 1);
    match quarantine(path) {
        Ok(moved) => RecoveryOutcome::Quarantined { path: moved },
        // The move itself failed (e.g. the file vanished); the run still
        // cold-starts, pointing at the original path.
        Err(_) => RecoveryOutcome::Quarantined {
            path: path.to_path_buf(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view_fixture<'a>(
        collector: &'a DataCollector,
        cache: &'a SharedParticleCache,
        pending: &'a BTreeMap<u64, Vec<TaggedReading>>,
        metrics: &'a MetricsSnapshot,
    ) -> CheckpointView<'a> {
        CheckpointView {
            fingerprint: 0xABCD_1234,
            next_second: 42,
            next_ts: 3,
            collector,
            cache,
            rng_sense: StdRng::seed_from_u64(1).state(),
            rng_pf: StdRng::seed_from_u64(2).state(),
            rng_query: StdRng::seed_from_u64(3).state(),
            means: [
                (1.5, 2),
                (0.0, 0),
                (3.25, 4),
                (0.5, 1),
                (0.75, 3),
                (0.25, 3),
                (9.0, 2),
                (11.0, 2),
            ],
            pending: Some(pending),
            metrics,
        }
    }

    fn fixture_state() -> (
        DataCollector,
        SharedParticleCache,
        BTreeMap<u64, Vec<TaggedReading>>,
        MetricsSnapshot,
    ) {
        let mut collector = DataCollector::new();
        collector.ingest_second(
            5,
            &[
                (ObjectId::new(1), ReaderId::new(2)),
                (ObjectId::new(3), ReaderId::new(0)),
            ],
        );
        let cache = SharedParticleCache::new();
        let mut pending = BTreeMap::new();
        pending.insert(
            7,
            vec![
                (5, ObjectId::new(1), ReaderId::new(2)),
                (6, ObjectId::new(3), ReaderId::new(0)),
            ],
        );
        let recorder = Recorder::enabled();
        recorder.add("sim.timestamps_evaluated", 4);
        (collector, cache, pending, recorder.snapshot())
    }

    #[test]
    fn checkpoint_codec_round_trips() {
        let (collector, cache, pending, metrics) = fixture_state();
        let view = view_fixture(&collector, &cache, &pending, &metrics);
        let bytes = encode(&view);
        let ck = decode(&bytes, view.fingerprint).unwrap();
        assert_eq!(ck.next_second, 42);
        assert_eq!(ck.next_ts, 3);
        assert_eq!(ck.rng_sense, view.rng_sense);
        assert_eq!(ck.rng_pf, view.rng_pf);
        assert_eq!(ck.rng_query, view.rng_query);
        assert_eq!(ck.means, view.means);
        assert_eq!(ck.pending, pending);
        assert_eq!(ck.metrics, metrics);
        // Collector round-trip: re-encoding reproduces identical bytes.
        let mut w1 = ByteWriter::new();
        collector.encode_state(&mut w1);
        let mut w2 = ByteWriter::new();
        ck.collector.encode_state(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn fingerprint_mismatch_is_stale_not_a_resume() {
        let (collector, cache, pending, metrics) = fixture_state();
        let view = view_fixture(&collector, &cache, &pending, &metrics);
        let bytes = encode(&view);
        assert!(matches!(
            decode(&bytes, view.fingerprint ^ 1),
            Err(PersistError::StaleVersion { .. })
        ));
    }

    #[test]
    fn truncation_anywhere_is_torn_never_a_panic() {
        let (collector, cache, pending, metrics) = fixture_state();
        let view = view_fixture(&collector, &cache, &pending, &metrics);
        let bytes = encode(&view);
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut], view.fingerprint).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn params_fingerprint_tracks_result_relevant_knobs_only() {
        let base = ExperimentParams::smoke();
        let fp = params_fingerprint(&base);
        assert_eq!(fp, params_fingerprint(&base), "fingerprint is stable");
        // Result-relevant changes move it.
        assert_ne!(
            fp,
            params_fingerprint(&ExperimentParams {
                seed: base.seed + 1,
                ..base
            })
        );
        assert_ne!(
            fp,
            params_fingerprint(&ExperimentParams {
                query_budget: Some(1000),
                ..base
            })
        );
        // Provably result-neutral knobs do not.
        assert_eq!(
            fp,
            params_fingerprint(&ExperimentParams {
                parallelism: Some(4),
                checkpoint_every: 7,
                observability: true,
                distance_backend: ripq_graph::DistanceBackend::Alt,
                ..base
            })
        );
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("ripq_sim_ckpt_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let path = snapshot_path(&dir);
        let (collector, cache, pending, metrics) = fixture_state();
        let view = view_fixture(&collector, &cache, &pending, &metrics);
        save(&path, &view).unwrap();
        let recorder = Recorder::enabled();
        let (outcome, ck) = load_or_quarantine(&path, view.fingerprint, &recorder);
        assert_eq!(outcome, RecoveryOutcome::Resumed { replay_from: 42 });
        assert_eq!(ck.unwrap().pending, pending);
        assert_eq!(
            recorder.snapshot().counters.get("recovery.resumed"),
            Some(&1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_file_is_quarantined_with_a_counter() {
        let dir = std::env::temp_dir().join("ripq_sim_ckpt_damaged");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = snapshot_path(&dir);
        // ripq-lint: allow(atomic-persistence) -- test deliberately writes a torn non-atomic file
        std::fs::write(&path, b"RIPQSNAPgarbage").unwrap();
        let recorder = Recorder::enabled();
        let (outcome, ck) = load_or_quarantine(&path, 0, &recorder);
        assert!(ck.is_none());
        match outcome {
            RecoveryOutcome::Quarantined { path: moved } => {
                assert!(moved.to_string_lossy().ends_with(".corrupt"));
                assert!(moved.exists());
                assert!(!path.exists());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(
            recorder.snapshot().counters.get("recovery.quarantined"),
            Some(&1)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
