//! The static simulated world shared by every experiment component.

use crate::ExperimentParams;
use ripq_floorplan::{office_building, FloorPlan, OfficeParams};
use ripq_graph::{build_walking_graph, AnchorSet, WalkingGraph};
use ripq_rfid::{deploy, Reader};
use ripq_symbolic::SymbolicModel;

/// The immutable world of one experiment: floor plan, walking graph,
/// anchors, reader deployment and the precomputed symbolic baseline.
pub struct SimWorld {
    /// The office floor plan (30 rooms / 4 hallways by default).
    pub plan: FloorPlan,
    /// The walking graph of the plan.
    pub graph: WalkingGraph,
    /// Anchor points.
    pub anchors: AnchorSet,
    /// The uniform reader deployment.
    pub readers: Vec<Reader>,
    /// The symbolic-model baseline for this deployment.
    pub symbolic: SymbolicModel,
}

impl SimWorld {
    /// Builds the paper's experimental world for the given parameters.
    pub fn build(params: &ExperimentParams) -> Self {
        let plan = office_building(&OfficeParams::default()).expect("default office plan is valid");
        Self::build_with_plan(plan, params)
    }

    /// Builds a world over an arbitrary floor plan (e.g. the
    /// [`ripq_floorplan::shopping_mall`] or
    /// [`ripq_floorplan::subway_station`] generators), deploying readers
    /// and deriving all models from `params` as usual.
    pub fn build_with_plan(plan: FloorPlan, params: &ExperimentParams) -> Self {
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, params.anchor_spacing);
        let readers = deploy(
            &plan,
            &graph,
            params.deployment,
            params.reader_count,
            params.activation_range,
        );
        let symbolic = SymbolicModel::new(&graph, &anchors, &readers, params.max_speed);
        SimWorld {
            plan,
            graph,
            anchors,
            readers,
            symbolic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_with_defaults() {
        let w = SimWorld::build(&ExperimentParams::default());
        assert_eq!(w.plan.rooms().len(), 30);
        assert_eq!(w.readers.len(), 19);
        assert!(w.graph.is_connected());
        assert!(w.anchors.anchors().len() > 100);
    }

    #[test]
    fn world_respects_activation_range_param() {
        let params = ExperimentParams {
            activation_range: 0.5,
            ..Default::default()
        };
        let w = SimWorld::build(&params);
        assert!(w.readers.iter().all(|r| r.activation_range() == 0.5));
    }
}
