//! Deterministic fault injection for the reading pipeline (the chaos
//! harness's workhorse).
//!
//! Real RFID deployments are not the clean stream §5.1's generator
//! produces: readings get dropped, duplicated and delayed in the network,
//! and whole readers fall over. A [`FaultPlan`] describes such a
//! degradation — per-reading drop probability, duplication probability, a
//! bounded delivery-delay window (which reorders readings), and
//! per-reader burst outages — and a [`FaultInjector`] applies it between
//! [`ReadingGenerator`](crate::ReadingGenerator) and the collector.
//!
//! # Determinism
//!
//! Every fault decision is drawn from a private RNG stream seeded by
//! [`derive_fault_seed`] from `(plan seed, fault kind, reading identity,
//! second)` — the same SplitMix64-chain construction as
//! [`ripq_pf::derive_stream_seed`]. A reading's fate is a pure function
//! of its identity, never of iteration order, other readings, or the
//! preprocessing worker count, so a faulted run is bit-for-bit
//! reproducible everywhere the clean run is.

use crate::ReaderOutage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripq_obs::{Counter, Recorder};
use ripq_rfid::{ObjectId, ReaderId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A reading tagged with the logical second it was generated at. Delivery
/// may happen up to [`FaultPlan::max_delay_seconds`] later.
pub type TaggedReading = (u64, ObjectId, ReaderId);

/// Fault-kind discriminators folded into [`derive_fault_seed`], so the
/// drop/duplicate/delay decisions about one reading are independent
/// draws.
const KIND_DROP: u64 = 1;
const KIND_DUP: u64 = 2;
const KIND_DELAY: u64 = 3;
const KIND_OUTAGE: u64 = 4;

/// A declarative description of how the reading stream is degraded.
///
/// All-zero (the [`FaultPlan::none`] default) means a perfectly clean
/// stream; [`FaultPlan::is_active`] gates the injector entirely so
/// fault-free runs take the exact code path they always did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any individual per-second reading is lost.
    pub drop_probability: f64,
    /// Probability that a (surviving) reading is delivered twice.
    pub duplicate_probability: f64,
    /// Maximum delivery delay in seconds. Each surviving reading is
    /// delayed by a uniform `0..=max_delay_seconds` draw, which reorders
    /// the stream within that bounded jitter window.
    pub max_delay_seconds: u64,
    /// Per-reader, per-second probability that a burst outage starts
    /// (the reader is killed and later revived on a schedule derived
    /// deterministically from the seed).
    pub outage_rate: f64,
    /// Mean outage length in seconds (lengths are uniform in
    /// `1..=2·mean−1`).
    pub outage_mean_seconds: f64,
    /// Seed of the fault layer's private RNG streams, independent of the
    /// experiment's master seed so the same world can be replayed under
    /// different degradations.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The clean plan: no faults of any kind.
    pub fn none() -> Self {
        FaultPlan {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            max_delay_seconds: 0,
            outage_rate: 0.0,
            outage_mean_seconds: 20.0,
            seed: 0xFA_0175,
        }
    }

    /// `true` when any fault mechanism can fire.
    pub fn is_active(&self) -> bool {
        self.drop_probability > 0.0
            || self.duplicate_probability > 0.0
            || self.max_delay_seconds > 0
            || self.outage_rate > 0.0
    }
}

/// Derives the seed of one fault decision's private RNG stream.
///
/// The inputs are folded into a SplitMix64 chain one at a time (mirroring
/// [`ripq_pf::derive_stream_seed`]): the plan seed separates plans, the
/// fault kind separates the drop/duplicate/delay/outage decisions about
/// the same reading, and `(ident, second)` pins the decision to one
/// reading identity. Order-independence of the result is what makes
/// faulted runs bit-identical at every worker count.
pub fn derive_fault_seed(seed: u64, kind: u64, ident: u64, second: u64) -> u64 {
    let mut state = seed;
    let mut out = rand::split_mix64(&mut state);
    state ^= kind.rotate_left(48);
    out ^= rand::split_mix64(&mut state);
    state ^= ident.rotate_left(16);
    out ^= rand::split_mix64(&mut state);
    state ^= second;
    out ^ rand::split_mix64(&mut state)
}

/// The identity of one reading, for fault-stream derivation: object in
/// the high half, reader in the low half.
fn reading_ident(object: ObjectId, reader: ReaderId) -> u64 {
    (u64::from(object.raw()) << 32) | u64::from(reader.raw())
}

/// One uniform `[0, 1)` draw from the fault stream `(kind, ident,
/// second)`.
fn fault_draw(seed: u64, kind: u64, ident: u64, second: u64) -> f64 {
    StdRng::seed_from_u64(derive_fault_seed(seed, kind, ident, second)).random::<f64>()
}

/// Resolved `faults.injected.*` counter handles (no-ops until a recorder
/// is attached).
#[derive(Debug, Clone, Default)]
struct FaultMetrics {
    dropped: Counter,
    duplicated: Counter,
    delayed: Counter,
    outage_losses: Counter,
}

/// Applies a [`FaultPlan`] to a per-second reading stream.
///
/// Feed each second's clean detections through [`FaultInjector::step`];
/// it returns the readings *delivered* that second — some dropped, some
/// duplicated, some generated seconds earlier and held back by the jitter
/// buffer. After the last generated second, keep stepping with empty
/// input for [`FaultPlan::max_delay_seconds`] more seconds to drain the
/// in-flight tail.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    outages: Vec<ReaderOutage>,
    /// In-flight readings keyed by delivery second.
    pending: BTreeMap<u64, Vec<TaggedReading>>,
    metrics: FaultMetrics,
}

impl FaultInjector {
    /// Creates an injector for `plan`, deriving a deterministic per-reader
    /// outage schedule for `reader_count` readers over `0..=duration`.
    pub fn new(plan: FaultPlan, reader_count: usize, duration: u64) -> Self {
        let outages = random_outages(&plan, reader_count, duration);
        FaultInjector {
            plan,
            outages,
            pending: BTreeMap::new(),
            metrics: FaultMetrics::default(),
        }
    }

    /// Replaces the derived outage schedule with an explicit one (for
    /// scenario scripts that need exact downtime windows).
    pub fn with_outages(mut self, outages: Vec<ReaderOutage>) -> Self {
        self.outages = outages;
        self
    }

    /// Attaches an observability recorder; every injected degradation is
    /// counted under `faults.injected.*` from now on.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = FaultMetrics {
            dropped: recorder.counter("faults.injected.dropped"),
            duplicated: recorder.counter("faults.injected.duplicated"),
            delayed: recorder.counter("faults.injected.delayed"),
            outage_losses: recorder.counter("faults.injected.outage_losses"),
        };
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The outage schedule (derived or explicit), for telling outage-aware
    /// consumers which silences are expected.
    pub fn outages(&self) -> &[ReaderOutage] {
        &self.outages
    }

    /// Readings still in the jitter buffer.
    pub fn in_flight(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// The jitter buffer keyed by delivery second — the injector's only
    /// mutable state (the outage schedule is re-derived from the plan), so
    /// this plus [`FaultInjector::restore_pending`] is all a checkpoint
    /// needs.
    pub fn pending(&self) -> &BTreeMap<u64, Vec<TaggedReading>> {
        &self.pending
    }

    /// Replaces the jitter buffer with checkpointed state.
    pub fn restore_pending(&mut self, pending: BTreeMap<u64, Vec<TaggedReading>>) {
        self.pending = pending;
    }

    fn is_down(&self, reader: ReaderId, second: u64) -> bool {
        self.outages
            .iter()
            .any(|o| o.reader == reader && (o.from..=o.until).contains(&second))
    }

    /// Applies the plan to one second's clean detections and returns the
    /// readings delivered at `second`, each tagged with its logical
    /// generation second. Deliveries are sorted by `(logical, object,
    /// reader)`, so the output is independent of the input's order too.
    pub fn step(&mut self, second: u64, detections: &[(ObjectId, ReaderId)]) -> Vec<TaggedReading> {
        for &(object, reader) in detections {
            if self.is_down(reader, second) {
                self.metrics.outage_losses.inc();
                continue;
            }
            let ident = reading_ident(object, reader);
            if self.plan.drop_probability > 0.0
                && fault_draw(self.plan.seed, KIND_DROP, ident, second) < self.plan.drop_probability
            {
                self.metrics.dropped.inc();
                continue;
            }
            let delivery = if self.plan.max_delay_seconds > 0 {
                let mut rng = StdRng::seed_from_u64(derive_fault_seed(
                    self.plan.seed,
                    KIND_DELAY,
                    ident,
                    second,
                ));
                let delta = rng.random_range(0..=self.plan.max_delay_seconds);
                if delta > 0 {
                    self.metrics.delayed.inc();
                }
                second + delta
            } else {
                second
            };
            self.pending
                .entry(delivery)
                .or_default()
                .push((second, object, reader));
            if self.plan.duplicate_probability > 0.0
                && fault_draw(self.plan.seed, KIND_DUP, ident, second)
                    < self.plan.duplicate_probability
            {
                self.metrics.duplicated.inc();
                self.pending
                    .entry(delivery)
                    .or_default()
                    .push((second, object, reader));
            }
        }
        let mut out = self.pending.remove(&second).unwrap_or_default();
        out.sort_unstable_by_key(|&(logical, o, r)| (logical, o.raw(), r.raw()));
        out
    }
}

/// Derives the per-reader burst-outage schedule of `plan`: each reader
/// walks its own RNG stream second by second; with probability
/// [`FaultPlan::outage_rate`] an outage starts, lasting a uniform
/// `1..=2·mean−1` seconds. Windows of one reader never overlap.
pub fn random_outages(plan: &FaultPlan, reader_count: usize, duration: u64) -> Vec<ReaderOutage> {
    let mut out = Vec::new();
    if plan.outage_rate <= 0.0 {
        return out;
    }
    for r in 0..reader_count {
        let mut rng = StdRng::seed_from_u64(derive_fault_seed(plan.seed, KIND_OUTAGE, r as u64, 0));
        let mut s = 0u64;
        while s <= duration {
            if rng.random::<f64>() < plan.outage_rate {
                let mean = plan.outage_mean_seconds.max(1.0);
                let max_len = (2.0 * mean - 1.0).max(1.0);
                let len = (rng.random_range(1.0..=max_len).round() as u64).max(1);
                out.push(ReaderOutage {
                    reader: ReaderId::new(r as u32),
                    from: s,
                    until: (s + len - 1).min(duration),
                });
                s += len;
            } else {
                s += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const O1: ObjectId = ObjectId::new(1);
    const O2: ObjectId = ObjectId::new(2);
    const R1: ReaderId = ReaderId::new(0);
    const R2: ReaderId = ReaderId::new(3);

    fn run(plan: FaultPlan, stream: &[Vec<(ObjectId, ReaderId)>]) -> Vec<Vec<TaggedReading>> {
        let mut inj = FaultInjector::new(plan, 8, stream.len() as u64);
        let horizon = stream.len() as u64 + plan.max_delay_seconds;
        (0..=horizon)
            .map(|s| {
                let clean = stream.get(s as usize).map_or(&[][..], Vec::as_slice);
                inj.step(s, clean)
            })
            .collect()
    }

    fn sample_stream() -> Vec<Vec<(ObjectId, ReaderId)>> {
        (0..40u64)
            .map(|s| match s % 3 {
                0 => vec![(O1, R1), (O2, R2)],
                1 => vec![(O1, R1)],
                _ => vec![(O2, R2)],
            })
            .collect()
    }

    #[test]
    fn inactive_plan_is_identity() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let stream = sample_stream();
        let delivered = run(plan, &stream);
        for (s, clean) in stream.iter().enumerate() {
            let expect: Vec<TaggedReading> = {
                let mut v: Vec<_> = clean.iter().map(|&(o, r)| (s as u64, o, r)).collect();
                v.sort_unstable_by_key(|&(l, o, r)| (l, o.raw(), r.raw()));
                v
            };
            assert_eq!(delivered[s], expect);
        }
    }

    #[test]
    fn same_plan_same_deliveries() {
        let plan = FaultPlan {
            drop_probability: 0.3,
            duplicate_probability: 0.2,
            max_delay_seconds: 4,
            outage_rate: 0.01,
            ..FaultPlan::none()
        };
        let stream = sample_stream();
        assert_eq!(run(plan, &stream), run(plan, &stream));
    }

    #[test]
    fn different_seed_different_deliveries() {
        let base = FaultPlan {
            drop_probability: 0.4,
            ..FaultPlan::none()
        };
        let other = FaultPlan { seed: 99, ..base };
        let stream = sample_stream();
        assert_ne!(run(base, &stream), run(other, &stream));
    }

    #[test]
    fn delivery_is_input_order_independent() {
        let plan = FaultPlan {
            drop_probability: 0.2,
            duplicate_probability: 0.3,
            max_delay_seconds: 3,
            ..FaultPlan::none()
        };
        let fwd: Vec<Vec<(ObjectId, ReaderId)>> = (0..20)
            .map(|_| vec![(O1, R1), (O2, R2), (ObjectId::new(7), R1)])
            .collect();
        let rev: Vec<Vec<(ObjectId, ReaderId)>> = fwd
            .iter()
            .map(|v| v.iter().rev().copied().collect())
            .collect();
        assert_eq!(run(plan, &fwd), run(plan, &rev));
    }

    #[test]
    fn drop_probability_one_drops_everything() {
        let plan = FaultPlan {
            drop_probability: 1.0,
            ..FaultPlan::none()
        };
        for batch in run(plan, &sample_stream()) {
            assert!(batch.is_empty());
        }
    }

    #[test]
    fn duplicate_probability_one_doubles_everything() {
        let plan = FaultPlan {
            duplicate_probability: 1.0,
            ..FaultPlan::none()
        };
        let stream = sample_stream();
        let delivered = run(plan, &stream);
        for (s, clean) in stream.iter().enumerate() {
            assert_eq!(delivered[s].len(), clean.len() * 2, "second {s}");
        }
    }

    #[test]
    fn delay_is_bounded_and_conserves_readings() {
        let plan = FaultPlan {
            max_delay_seconds: 5,
            ..FaultPlan::none()
        };
        let stream = sample_stream();
        let delivered = run(plan, &stream);
        let total_in: usize = stream.iter().map(Vec::len).sum();
        let total_out: usize = delivered.iter().map(Vec::len).sum();
        assert_eq!(total_in, total_out, "no delay-only reading is lost");
        for (s, batch) in delivered.iter().enumerate() {
            for &(logical, _, _) in batch {
                assert!(logical <= s as u64, "delivered before generated");
                assert!(s as u64 - logical <= 5, "delay beyond the window");
            }
        }
    }

    #[test]
    fn outage_schedule_is_deterministic_and_bounded() {
        let plan = FaultPlan {
            outage_rate: 0.02,
            outage_mean_seconds: 10.0,
            ..FaultPlan::none()
        };
        let a = random_outages(&plan, 19, 300);
        let b = random_outages(&plan, 19, 300);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "0.02/s over 19 readers × 300 s must fire");
        for o in &a {
            assert!(o.from <= o.until);
            assert!(o.until <= 300);
            assert!(o.until - o.from < 19, "length ≤ 2·mean−1");
        }
        // Per-reader windows never overlap.
        for w in a.iter().zip(a.iter().skip(1)) {
            if w.0.reader == w.1.reader {
                assert!(w.0.until < w.1.from);
            }
        }
    }

    #[test]
    fn outage_silences_reader_and_counts_losses() {
        let plan = FaultPlan {
            outage_rate: 1e-9, // active, but schedule replaced below
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 8, 20).with_outages(vec![ReaderOutage {
            reader: R1,
            from: 5,
            until: 10,
        }]);
        for s in 0..=20u64 {
            let delivered = inj.step(s, &[(O1, R1), (O2, R2)]);
            let r1_delivered = delivered.iter().filter(|&&(_, _, r)| r == R1).count();
            if (5..=10).contains(&s) {
                assert_eq!(r1_delivered, 0, "R1 silent during outage at {s}");
            } else {
                assert_eq!(r1_delivered, 1);
            }
            assert_eq!(delivered.iter().filter(|&&(_, _, r)| r == R2).count(), 1);
        }
    }

    #[test]
    fn fault_seeds_separate_kinds_and_readings() {
        assert_eq!(derive_fault_seed(1, 2, 3, 4), derive_fault_seed(1, 2, 3, 4));
        assert_ne!(derive_fault_seed(1, 2, 3, 4), derive_fault_seed(1, 3, 3, 4));
        assert_ne!(derive_fault_seed(1, 2, 3, 4), derive_fault_seed(1, 2, 9, 4));
        assert_ne!(derive_fault_seed(1, 2, 3, 4), derive_fault_seed(1, 2, 3, 5));
        assert_ne!(derive_fault_seed(1, 2, 3, 4), derive_fault_seed(2, 2, 3, 4));
    }
}
