//! The device sensing (measurement) model for particle weighting.
//!
//! Algorithm 2, lines 21–27: "particles within the detecting device's range
//! are assigned a high weight, while others are assigned a very low
//! weight."

use crate::IndoorState;
use ripq_graph::WalkingGraph;
use ripq_rfid::Reader;
use serde::{Deserialize, Serialize};

/// Binary in-range / out-of-range observation likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementModel {
    /// Likelihood assigned to particles inside the detecting reader's
    /// activation range.
    pub high_weight: f64,
    /// Likelihood assigned to particles outside it. Non-zero so that a
    /// reading inconsistent with *every* particle (heavy odometry drift)
    /// degrades gracefully instead of dividing by zero.
    pub low_weight: f64,
}

impl Default for MeasurementModel {
    fn default() -> Self {
        MeasurementModel {
            high_weight: 1.0,
            low_weight: 1e-4,
        }
    }
}

impl MeasurementModel {
    /// Likelihood `p(z | x)` of reader `detecting` having produced a
    /// reading given the particle state `s`.
    pub fn likelihood(&self, graph: &WalkingGraph, s: &IndoorState, detecting: &Reader) -> f64 {
        if detecting.covers(graph.point_of(s.pos)) {
            self.high_weight
        } else {
            self.low_weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heading;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::{build_walking_graph, GraphPos};
    use ripq_rfid::ReaderId;

    #[test]
    fn boundary_point_counts_as_inside() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let m = MeasurementModel::default();
        let e = g.edges().iter().find(|e| e.length() > 6.0).unwrap();
        let reader_point = e.point_at(3.0);
        let reader = Reader::new(
            ReaderId::new(0),
            reader_point,
            GraphPos::new(e.id, 3.0),
            2.0,
        );
        // Exactly at range distance along the edge: closed disk.
        let s = IndoorState {
            pos: GraphPos::new(e.id, 5.0),
            heading: Heading::TowardB,
            speed: 1.0,
        };
        assert_eq!(m.likelihood(&g, &s, &reader), m.high_weight);
    }

    #[test]
    fn in_range_high_out_of_range_low() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let m = MeasurementModel::default();
        // A reader sitting on the first hallway edge.
        let e = g.edges().iter().find(|e| e.length() > 6.0).unwrap();
        let reader_point = e.point_at(3.0);
        let reader = Reader::new(
            ReaderId::new(0),
            reader_point,
            GraphPos::new(e.id, 3.0),
            2.0,
        );
        let near = IndoorState {
            pos: GraphPos::new(e.id, 2.0),
            heading: Heading::TowardB,
            speed: 1.0,
        };
        let far = IndoorState {
            pos: GraphPos::new(e.id, e.length()),
            heading: Heading::TowardB,
            speed: 1.0,
        };
        assert_eq!(m.likelihood(&g, &near, &reader), 1.0);
        assert_eq!(m.likelihood(&g, &far, &reader), 1e-4);
    }
}
