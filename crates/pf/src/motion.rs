//! The paper's object motion model on the walking graph.
//!
//! Algorithm 2, lines 8–16: every second each particle moves along graph
//! edges with its own speed and direction; it picks a random direction at
//! intersections; inside a room node it stays with probability 0.9 and
//! moves out with probability 0.1.

use crate::{Heading, IndoorState};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use ripq_graph::{GraphPos, NodeKind, WalkingGraph};
use serde::{Deserialize, Serialize};

/// Parameters of the motion model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionModel {
    /// Mean walking speed (paper: μ = 1 m/s).
    pub speed_mean: f64,
    /// Walking speed standard deviation (paper: σ = 0.1).
    pub speed_std: f64,
    /// Probability per second of staying inside a room once at its node
    /// (paper: 0.9).
    pub room_stay_probability: f64,
    /// Probability of turning *into* a room when passing its door portal,
    /// rather than continuing along the hallway. The paper's object model
    /// says walkers "can either enter rooms or continue to move along
    /// hallways" but does not give the split; a uniform choice over door
    /// edges drains clouds into the rooms lining every hallway, while a
    /// tiny value starves rooms of hypotheses. 0.3 is calibrated against
    /// the simulator's destination-driven traces (see the ablation bench).
    pub room_enter_probability: f64,
    /// Whether a particle arriving at an interior node may immediately
    /// reverse onto the edge it came from. The paper's model moves objects
    /// "forward"; U-turns are still always allowed at dead ends.
    pub allow_u_turns: bool,
    /// Probability per second that a particle spontaneously reverses its
    /// heading. Real walkers turn around whenever they reach a destination;
    /// keeping a small reversal rate preserves hypothesis diversity so the
    /// cloud can recover when the tracked person backtracks.
    pub direction_change_probability: f64,
}

impl Default for MotionModel {
    fn default() -> Self {
        MotionModel {
            speed_mean: 1.0,
            speed_std: 0.1,
            room_stay_probability: 0.9,
            room_enter_probability: 0.3,
            allow_u_turns: false,
            direction_change_probability: 0.0,
        }
    }
}

impl MotionModel {
    /// Draws a particle speed from N(μ, σ²), truncated to a sane positive
    /// range (a non-positive walking speed is re-drawn).
    pub fn sample_speed<R: Rng>(&self, rng: &mut R) -> f64 {
        // ripq-lint: allow(no-panic-paths) -- speed_mean/speed_std come from PreprocessorConfig defaults or validated setup; Normal::new only fails on non-finite σ, a programming error worth aborting on
        let normal = Normal::new(self.speed_mean, self.speed_std).expect("finite speed parameters");
        for _ in 0..16 {
            let v = normal.sample(rng);
            if v > 0.05 {
                return v;
            }
        }
        self.speed_mean
    }

    /// Advances one particle by `dt` seconds (Algorithm 2 lines 8–16).
    pub fn step<R: Rng>(
        &self,
        rng: &mut R,
        graph: &WalkingGraph,
        state: &mut IndoorState,
        dt: f64,
    ) {
        // Room-stay rule: a particle sitting at a room node stays put with
        // probability `room_stay_probability` for this whole second.
        if graph.is_at_room_node(state.pos, 1e-9) {
            if rng.random::<f64>() < self.room_stay_probability {
                return;
            }
            // Leave the room: head back along the door link.
            let e = graph.edge(state.pos.edge);
            let at_b = state.pos.offset >= e.length() - 1e-9;
            state.heading = if at_b {
                Heading::TowardA
            } else {
                Heading::TowardB
            };
        }

        // Spontaneous reversal: keeps a minority of hypotheses exploring
        // the opposite direction.
        if self.direction_change_probability > 0.0
            && rng.random::<f64>() < self.direction_change_probability
        {
            state.heading = state.heading.flipped();
        }

        let mut remaining = state.speed * dt;
        // Bounded node transitions per step: a 1-second step at ~1 m/s
        // crosses at most a few short edges; 32 is a generous safety bound
        // that keeps the hot loop panic-free even on degenerate graphs.
        for _ in 0..32 {
            if remaining <= 0.0 {
                break;
            }
            let to_node = state.distance_to_target(graph);
            if remaining < to_node {
                // Stay on this edge.
                let delta = match state.heading {
                    Heading::TowardA => -remaining,
                    Heading::TowardB => remaining,
                };
                state.pos = GraphPos::new(state.pos.edge, state.pos.offset + delta);
                return;
            }
            // Reach the target node and spend the distance.
            remaining -= to_node;
            let node = state.target_node(graph);
            let node_kind = graph.node(node).kind;

            // Arriving at a room node: stop there; the room-stay rule takes
            // over at the next step.
            if matches!(node_kind, NodeKind::Room(_)) {
                let e = graph.edge(state.pos.edge);
                // ripq-lint: allow(no-panic-paths) -- `node` is one of this edge's two endpoints by construction (it was reached by walking the edge), so offset_of cannot miss
                let offset = e.offset_of(node).expect("target is an endpoint");
                state.pos = GraphPos::new(state.pos.edge, offset);
                return;
            }

            // Choose the next edge ("particles pick a random direction at
            // intersections"): with probability `room_enter_probability`
            // turn into one of the rooms at this node (if any); otherwise
            // continue uniformly among hallway edges, excluding an
            // immediate U-turn unless the node is a dead end or U-turns
            // are enabled.
            let incident = graph.edges_at(node);
            let choice = if incident.len() == 1 {
                incident[0]
            } else {
                let arrived_on = state.pos.edge;
                let mut rooms: Vec<ripq_graph::EdgeId> = Vec::new();
                let mut halls: Vec<ripq_graph::EdgeId> = Vec::new();
                for &e in incident {
                    if !self.allow_u_turns && e == arrived_on {
                        continue;
                    }
                    if graph.edge(e).kind.is_hallway() {
                        halls.push(e);
                    } else {
                        rooms.push(e);
                    }
                }
                if !rooms.is_empty()
                    && (halls.is_empty() || rng.random::<f64>() < self.room_enter_probability)
                {
                    rooms[rng.random_range(0..rooms.len())]
                } else if !halls.is_empty() {
                    halls[rng.random_range(0..halls.len())]
                } else {
                    arrived_on
                }
            };
            let e = graph.edge(choice);
            // ripq-lint: allow(no-panic-paths) -- `choice` came from graph.incident(node), so the edge is incident to `node` by the graph's adjacency invariant
            let from_offset = e.offset_of(node).expect("incident edge");
            state.heading = if from_offset <= 1e-9 {
                Heading::TowardB
            } else {
                Heading::TowardA
            };
            state.pos = GraphPos::new(choice, from_offset);
        }
        // Safety bound hit: clamp in place (harmless, extremely rare).
        state.pos = graph.clamp_pos(state.pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;

    fn setup() -> WalkingGraph {
        build_walking_graph(&office_building(&OfficeParams::default()).unwrap())
    }

    #[test]
    fn speeds_follow_gaussian() {
        let m = MotionModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5000;
        let speeds: Vec<f64> = (0..n).map(|_| m.sample_speed(&mut rng)).collect();
        let mean = speeds.iter().sum::<f64>() / n as f64;
        let var = speeds.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
        assert!(speeds.iter().all(|&s| s > 0.0));
    }

    /// Motion model with spontaneous reversals disabled, for tests that
    /// assert exact kinematics.
    fn no_reversal() -> MotionModel {
        MotionModel {
            direction_change_probability: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn step_moves_by_speed_on_long_edge() {
        let g = setup();
        let m = no_reversal();
        let mut rng = StdRng::seed_from_u64(6);
        // Find a long hallway edge.
        let e = g
            .edges()
            .iter()
            .find(|e| e.kind.is_hallway() && e.length() > 5.0)
            .expect("office has long edges");
        let mut s = IndoorState {
            pos: GraphPos::new(e.id, 1.0),
            heading: Heading::TowardB,
            speed: 1.5,
        };
        m.step(&mut rng, &g, &mut s, 1.0);
        assert_eq!(s.pos.edge, e.id);
        assert!((s.pos.offset - 2.5).abs() < 1e-9);
    }

    #[test]
    fn step_crosses_node_and_picks_new_edge() {
        let g = setup();
        let m = no_reversal();
        let mut rng = StdRng::seed_from_u64(7);
        let e = g
            .edges()
            .iter()
            .find(|e| e.kind.is_hallway() && e.length() > 2.0)
            .unwrap();
        // 0.5 m before node b, speed 1: crosses into some next edge.
        let mut s = IndoorState {
            pos: GraphPos::new(e.id, e.length() - 0.5),
            heading: Heading::TowardB,
            speed: 1.0,
        };
        let b = e.b;
        m.step(&mut rng, &g, &mut s, 1.0);
        let pt = g.point_of(s.pos);
        let node_pt = g.node(b).position;
        // Moved ~0.5 m past the node along some incident edge.
        assert!(pt.distance(node_pt) < 0.5 + 1e-6);
        assert!(g.point_of(s.pos).is_finite());
    }

    #[test]
    fn room_stay_probability_honored() {
        let g = setup();
        let m = MotionModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        // Put a particle exactly at a room node.
        let room_node = g.room_node(ripq_floorplan::RoomId::new(0));
        let link = g.edges_at(room_node)[0];
        let e = g.edge(link);
        let offset = e.offset_of(room_node).unwrap();
        let trials = 2000;
        let mut stayed = 0;
        for _ in 0..trials {
            let mut s = IndoorState {
                pos: GraphPos::new(link, offset),
                heading: Heading::TowardA,
                speed: 1.0,
            };
            m.step(&mut rng, &g, &mut s, 1.0);
            if graph_same_pos(&g, s.pos, GraphPos::new(link, offset)) {
                stayed += 1;
            }
        }
        let rate = stayed as f64 / trials as f64;
        assert!((rate - 0.9).abs() < 0.03, "stay rate {rate} != ~0.9");
    }

    fn graph_same_pos(g: &WalkingGraph, a: GraphPos, b: GraphPos) -> bool {
        g.point_of(a).distance(g.point_of(b)) < 1e-9
    }

    #[test]
    fn no_u_turn_on_through_motion() {
        let g = setup();
        let m = no_reversal();
        let mut rng = StdRng::seed_from_u64(9);
        // Start mid-hallway moving toward a door portal (degree ≥ 3);
        // after crossing, the particle must be on a different edge or the
        // same edge but *past* the node — never back where it came from.
        let e = g
            .edges()
            .iter()
            .find(|e| e.kind.is_hallway() && g.degree(e.b) >= 3 && e.length() > 1.0)
            .unwrap();
        for _ in 0..200 {
            let mut s = IndoorState {
                pos: GraphPos::new(e.id, e.length() - 0.2),
                heading: Heading::TowardB,
                speed: 1.0,
            };
            m.step(&mut rng, &g, &mut s, 1.0);
            let back_on_same_edge = s.pos.edge == e.id;
            if back_on_same_edge {
                // Would mean a U-turn happened.
                panic!("particle U-turned at an interior node");
            }
        }
    }

    #[test]
    fn dead_end_forces_u_turn() {
        let g = setup();
        let m = no_reversal();
        let mut rng = StdRng::seed_from_u64(10);
        // Find a hallway-end node with degree 1.
        let end = g
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, NodeKind::HallwayEnd(_)) && g.degree(n.id) == 1)
            .expect("office hallways have dead ends");
        let eid = g.edges_at(end.id)[0];
        let e = g.edge(eid);
        let end_offset = e.offset_of(end.id).unwrap();
        let heading = if end_offset == 0.0 {
            Heading::TowardA
        } else {
            Heading::TowardB
        };
        let start_offset = if end_offset == 0.0 {
            0.5
        } else {
            e.length() - 0.5
        };
        let mut s = IndoorState {
            pos: GraphPos::new(eid, start_offset),
            heading,
            speed: 1.0,
        };
        m.step(&mut rng, &g, &mut s, 1.0);
        // Bounced: still on the same edge, 0.5 m from the end, heading away.
        assert_eq!(s.pos.edge, eid);
        let d_end = (s.pos.offset - end_offset).abs();
        assert!((d_end - 0.5).abs() < 1e-6, "bounced distance {d_end}");
        assert_eq!(s.heading, heading.flipped());
    }

    #[test]
    fn long_simulation_stays_on_graph() {
        let g = setup();
        let m = MotionModel::default();
        let mut rng = StdRng::seed_from_u64(11);
        let e = &g.edges()[0];
        let mut s = IndoorState {
            pos: GraphPos::new(e.id, e.length() / 2.0),
            heading: Heading::TowardB,
            speed: m.sample_speed(&mut rng),
        };
        for _ in 0..600 {
            m.step(&mut rng, &g, &mut s, 1.0);
            let edge = g.edge(s.pos.edge);
            assert!(s.pos.offset >= -1e-9 && s.pos.offset <= edge.length() + 1e-9);
            assert!(g.point_of(s.pos).is_finite());
        }
    }
}
