//! Offline trajectory reconstruction — the "track and trace" application
//! the paper's introduction motivates RFID deployments with (§1: "In
//! indoor environments, RFID is mainly employed to support track and trace
//! applications").
//!
//! Given the *full* reading history of an object (a
//! [`ripq_rfid::HistoryCollector`]), [`reconstruct_trajectory`] runs the
//! particle filter forward over the whole recording and emits, for every
//! second, the filtered location estimate: the probability-weighted mean
//! point and the most probable anchor. Unlike the online preprocessor it
//! never discards old episodes — it replays the complete timeline.

use crate::{seed_particles, MeasurementModel, MotionModel, ParticleFilter};
use rand::Rng;
use ripq_geom::Point2;
use ripq_graph::{AnchorId, AnchorSet, WalkingGraph};
use ripq_rfid::{HistoryCollector, ObjectId, Reader, ReadingStore};
use serde::{Deserialize, Serialize};

/// One reconstructed trajectory sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// The second this sample describes.
    pub second: u64,
    /// Probability-weighted mean of the particle cloud (a smooth estimate;
    /// may cut corners geometrically).
    pub mean: Point2,
    /// The anchor carrying the most probability (always on the graph).
    pub mode: AnchorId,
    /// Probability mass at the mode anchor.
    pub mode_probability: f64,
    /// Whether any reader detected the object this second.
    pub observed: bool,
}

/// Configuration for trajectory reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Particles used for the reconstruction (more than online tracking,
    /// since this is offline: default 256).
    pub num_particles: usize,
    /// Motion model.
    pub motion: MotionModel,
    /// Measurement model.
    pub measurement: MeasurementModel,
    /// Use negative evidence during silent seconds (recommended).
    pub negative_evidence: bool,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            num_particles: 256,
            motion: MotionModel::default(),
            measurement: MeasurementModel::default(),
            negative_evidence: true,
        }
    }
}

/// Replays an object's full recorded history through the particle filter
/// and returns one [`TrajectoryPoint`] per second from its first to its
/// last recorded second. Returns `None` when the history never saw the
/// object.
pub fn reconstruct_trajectory<R: Rng>(
    rng: &mut R,
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    readers: &[Reader],
    history: &HistoryCollector,
    object: ObjectId,
    config: &TrajectoryConfig,
) -> Option<Vec<TrajectoryPoint>> {
    let end = history.current_second()?;
    let view = history.view_at(end);
    let agg = view.aggregated(object)?;
    // The full history view's aggregated window still applies the
    // two-episode retention; for reconstruction we need everything, so we
    // walk the entries from the object's very first second via view_at at
    // each instant instead. Simpler: rebuild the full entry list by
    // querying the first-instant view for the start.
    let first_second = {
        // Find the earliest instant the object exists.
        let mut lo = 0u64;
        let mut hi = end;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if history.view_at(mid).aggregated(object).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    };
    let _ = agg;

    // Seed at the first detecting reader.
    let (first_reader, _) = history.view_at(first_second).last_detection(object)?;
    let mut filter = ParticleFilter::from_states(seed_particles(
        rng,
        graph,
        &readers[first_reader.index()],
        &config.motion,
        config.num_particles,
    ));

    let mut out = Vec::with_capacity((end - first_second + 1) as usize);
    push_sample(&mut out, graph, anchors, &filter, first_second, true);

    for second in first_second + 1..=end {
        filter.predict(|s| config.motion.step(rng, graph, s, 1.0));
        // The reading of this second, from the instant view (sees exactly
        // the entries up to `second`).
        let reading = history
            .view_at(second)
            .aggregated(object)
            .and_then(|a| a.entry_at(second))
            .flatten();
        if let Some(device) = reading {
            let reader = &readers[device.index()];
            let any = filter
                .states()
                .iter()
                .any(|s| reader.covers(graph.point_of(s.pos)));
            if any {
                filter.reweight(|s| config.measurement.likelihood(graph, s, reader));
                filter.normalize();
                if filter.effective_sample_size() < filter.len() as f64 * 0.5 {
                    filter.resample(rng);
                }
            } else {
                filter = ParticleFilter::from_states(seed_particles(
                    rng,
                    graph,
                    reader,
                    &config.motion,
                    config.num_particles,
                ));
            }
        } else if config.negative_evidence {
            let mm = config.measurement;
            let mut any_inside = false;
            filter.reweight(|s| {
                let pt = graph.point_of(s.pos);
                if readers.iter().any(|r| r.covers(pt)) {
                    any_inside = true;
                    mm.low_weight
                } else {
                    mm.high_weight
                }
            });
            if any_inside {
                filter.normalize();
                if filter.effective_sample_size() < filter.len() as f64 * 0.5 {
                    filter.resample(rng);
                }
            }
        }
        push_sample(&mut out, graph, anchors, &filter, second, reading.is_some());
    }
    Some(out)
}

fn push_sample(
    out: &mut Vec<TrajectoryPoint>,
    graph: &WalkingGraph,
    anchors: &AnchorSet,
    filter: &ParticleFilter<crate::IndoorState>,
    second: u64,
    observed: bool,
) {
    let total: f64 = filter.weights().iter().sum();
    let mut mean = Point2::ORIGIN;
    for (s, w) in filter.states().iter().zip(filter.weights()) {
        mean = mean + graph.point_of(s.pos) * (w / total);
    }
    let snapped = anchors.snap_distribution(
        filter
            .states()
            .iter()
            .zip(filter.weights())
            .map(|(s, w)| (s.pos, w / total)),
    );
    let (mode, mode_probability) = snapped
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        // ripq-lint: allow(no-panic-paths) -- the filter always carries config.particles ≥ 1 particles, so the snapped set is never empty
        .expect("non-empty particle set");
    out.push(TrajectoryPoint {
        second,
        mean,
        mode,
        mode_probability,
        observed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;
    use ripq_rfid::deploy_uniform;

    struct World {
        graph: WalkingGraph,
        anchors: AnchorSet,
        readers: Vec<Reader>,
    }

    fn world() -> World {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        World {
            graph,
            anchors,
            readers,
        }
    }

    const O: ObjectId = ObjectId::new(0);

    /// Records a straight walk along hallway 0 into the history.
    fn straight_walk(w: &World) -> (HistoryCollector, Vec<Point2>) {
        let y = w.readers[0].position().y;
        let x0 = w.readers[0].position().x - 3.0;
        let mut history = HistoryCollector::new();
        let mut truth = Vec::new();
        for s in 0..=40u64 {
            let p = Point2::new(x0 + s as f64, y);
            truth.push(p);
            let det: Vec<_> = w
                .readers
                .iter()
                .filter(|r| r.covers(p))
                .map(|r| (O, r.id()))
                .take(1)
                .collect();
            history.ingest_second(s, &det);
        }
        (history, truth)
    }

    #[test]
    fn reconstruction_covers_every_second() {
        let w = world();
        let (history, _) = straight_walk(&w);
        let mut rng = StdRng::seed_from_u64(70);
        let traj = reconstruct_trajectory(
            &mut rng,
            &w.graph,
            &w.anchors,
            &w.readers,
            &history,
            O,
            &TrajectoryConfig::default(),
        )
        .expect("object recorded");
        // One sample per second from the first detection to the end.
        assert!(traj.len() >= 38, "samples: {}", traj.len());
        for win in traj.windows(2) {
            assert_eq!(win[1].second, win[0].second + 1);
        }
    }

    #[test]
    fn reconstruction_tracks_a_straight_walk() {
        let w = world();
        let (history, truth) = straight_walk(&w);
        let mut rng = StdRng::seed_from_u64(71);
        let traj = reconstruct_trajectory(
            &mut rng,
            &w.graph,
            &w.anchors,
            &w.readers,
            &history,
            O,
            &TrajectoryConfig::default(),
        )
        .unwrap();
        // Average error of the mean estimate against the true walk.
        let mut err = 0.0;
        let mut n = 0;
        for tp in &traj {
            let t = tp.second as usize;
            if t < truth.len() {
                err += tp.mean.distance(truth[t]);
                n += 1;
            }
        }
        let avg = err / n as f64;
        assert!(avg < 6.0, "average reconstruction error {avg} m");
        // Mode probabilities are meaningful.
        assert!(traj.iter().all(|tp| tp.mode_probability > 0.0));
        // Observed flags mark the in-range stretches.
        assert!(traj.iter().any(|tp| tp.observed));
        assert!(traj.iter().any(|tp| !tp.observed));
    }

    #[test]
    fn unknown_object_returns_none() {
        let w = world();
        let (history, _) = straight_walk(&w);
        let mut rng = StdRng::seed_from_u64(72);
        assert!(reconstruct_trajectory(
            &mut rng,
            &w.graph,
            &w.anchors,
            &w.readers,
            &history,
            ObjectId::new(99),
            &TrajectoryConfig::default(),
        )
        .is_none());
    }

    #[test]
    fn empty_history_returns_none() {
        let w = world();
        let history = HistoryCollector::new();
        let mut rng = StdRng::seed_from_u64(73);
        assert!(reconstruct_trajectory(
            &mut rng,
            &w.graph,
            &w.anchors,
            &w.readers,
            &history,
            O,
            &TrajectoryConfig::default(),
        )
        .is_none());
    }
}
