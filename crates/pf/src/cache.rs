//! The cache management module (§4.5).
//!
//! "Insertion to the cache happens every time when Algorithm 2 is done for
//! an object oᵢ. In case near future queries need to determine the location
//! distribution for the same object oᵢ again, we do not need to run the
//! Particle Filter algorithm from the start; instead, previous computation
//! is reused by retrieving the particles of oᵢ from the cache and resuming
//! the Particle Filter algorithm from the cache-stored time stamp."
//!
//! Invalidation follows the paper exactly: "we decide to discard processed
//! particles of oᵢ from the cache every time oᵢ is detected by a new
//! device" — implemented by keying each entry with the identity of the
//! detection episode it was filtered under.

use crate::IndoorState;
use ripq_rfid::{ObjectId, ReaderId};
use std::collections::HashMap;

/// An episode identity: the most recent detecting reader plus the second
/// its episode began. A new episode (new device, or the same device after
/// a long gap) produces a different key and therefore a cache miss.
pub type EpisodeKey = (ReaderId, u64);

#[derive(Debug, Clone)]
struct CacheEntry {
    particles: Vec<IndoorState>,
    /// The simulated second the particle states correspond to.
    timestamp: u64,
    episode: EpisodeKey,
}

/// Hit/miss counters for cache effectiveness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found reusable particles.
    pub hits: u64,
    /// Lookups that found nothing (or a stale episode).
    pub misses: u64,
    /// Entries evicted because the object was detected by a new device.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Particle-state cache, one entry per object.
#[derive(Debug, Default)]
pub struct ParticleCache {
    entries: HashMap<ObjectId, CacheEntry>,
    stats: CacheStats,
}

impl ParticleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up reusable particles for `object`, valid only if they were
    /// filtered under the same detection episode `current_episode`.
    /// Returns the cached states and their timestamp on a hit.
    pub fn lookup(
        &mut self,
        object: ObjectId,
        current_episode: EpisodeKey,
    ) -> Option<(Vec<IndoorState>, u64)> {
        match self.entries.get(&object) {
            Some(e) if e.episode == current_episode => {
                self.stats.hits += 1;
                Some((e.particles.clone(), e.timestamp))
            }
            Some(_) => {
                // Detected by a new device since this entry was stored:
                // discard it, per §4.5.
                self.entries.remove(&object);
                self.stats.misses += 1;
                self.stats.invalidations += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores the post-filtering particle states of `object` at simulated
    /// second `timestamp`, tagged with the episode they were filtered
    /// under.
    pub fn store(
        &mut self,
        object: ObjectId,
        particles: Vec<IndoorState>,
        timestamp: u64,
        episode: EpisodeKey,
    ) {
        self.entries.insert(
            object,
            CacheEntry {
                particles,
                timestamp,
                episode,
            },
        );
    }

    /// Drops an object's entry.
    pub fn invalidate(&mut self, object: ObjectId) {
        if self.entries.remove(&object).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears all entries (keeps statistics).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heading;
    use ripq_graph::{EdgeId, GraphPos};

    fn particle(offset: f64) -> IndoorState {
        IndoorState {
            pos: GraphPos::new(EdgeId::new(0), offset),
            heading: Heading::TowardB,
            speed: 1.0,
        }
    }

    const O: ObjectId = ObjectId::new(1);
    const EP1: EpisodeKey = (ReaderId::new(3), 100);
    const EP2: EpisodeKey = (ReaderId::new(4), 120);

    #[test]
    fn store_then_hit() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(1.0)], 110, EP1);
        let (states, t) = c.lookup(O, EP1).expect("hit");
        assert_eq!(states.len(), 1);
        assert_eq!(t, 110);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn new_episode_invalidates() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(1.0)], 110, EP1);
        assert!(c.lookup(O, EP2).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Entry is gone entirely.
        assert!(c.is_empty());
        assert!(c.lookup(O, EP1).is_none());
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn unknown_object_misses() {
        let mut c = ParticleCache::new();
        assert!(c.lookup(O, EP1).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        let _ = c.lookup(O, EP1);
        let _ = c.lookup(O, EP1);
        let _ = c.lookup(ObjectId::new(9), EP1);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_invalidation() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        c.invalidate(O);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 1);
        // Double-invalidation is a no-op.
        c.invalidate(O);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn store_overwrites() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        c.store(O, vec![particle(9.0), particle(8.0)], 7, EP1);
        let (states, t) = c.lookup(O, EP1).unwrap();
        assert_eq!(states.len(), 2);
        assert_eq!(t, 7);
        assert_eq!(c.len(), 1);
    }
}
