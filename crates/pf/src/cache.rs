//! The cache management module (§4.5).
//!
//! "Insertion to the cache happens every time when Algorithm 2 is done for
//! an object oᵢ. In case near future queries need to determine the location
//! distribution for the same object oᵢ again, we do not need to run the
//! Particle Filter algorithm from the start; instead, previous computation
//! is reused by retrieving the particles of oᵢ from the cache and resuming
//! the Particle Filter algorithm from the cache-stored time stamp."
//!
//! Invalidation follows the paper exactly: "we decide to discard processed
//! particles of oᵢ from the cache every time oᵢ is detected by a new
//! device" — implemented by keying each entry with the identity of the
//! detection episode it was filtered under.
//!
//! Two front ends share one implementation:
//!
//! * [`SharedParticleCache`] — sharded, internally synchronized (`&self`
//!   throughout), usable concurrently from the parallel preprocessing
//!   workers. Each object maps to exactly one shard, and the hit/miss/
//!   invalidation counters are atomics, so the statistics are the same
//!   whatever order objects are processed in.
//! * [`ParticleCache`] — the original single-threaded `&mut self` API,
//!   now a thin veneer over a [`SharedParticleCache`].

use crate::{Heading, IndoorState};
use parking_lot::Mutex;
use ripq_graph::{EdgeId, GraphPos};
use ripq_persist::{ByteReader, ByteWriter, PersistError};
use ripq_rfid::{ObjectId, ReaderId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An episode identity: the most recent detecting reader plus the second
/// its episode began. A new episode (new device, or the same device after
/// a long gap) produces a different key and therefore a cache miss.
pub type EpisodeKey = (ReaderId, u64);

#[derive(Debug, Clone)]
struct CacheEntry {
    particles: Vec<IndoorState>,
    /// The simulated second the particle states correspond to.
    timestamp: u64,
    episode: EpisodeKey,
}

/// Hit/miss counters for cache effectiveness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found reusable particles.
    pub hits: u64,
    /// Lookups that found nothing (or a stale episode).
    pub misses: u64,
    /// Entries evicted because the object was detected by a new device.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Number of independently locked shards. Objects hash to shards by id, so
/// concurrent workers mostly touch different locks.
const SHARDS: usize = 16;

/// A concurrently usable particle-state cache, one entry per object.
///
/// All methods take `&self`: the entry map is split into [`SHARDS`]
/// mutex-protected shards and the statistics are atomic counters. Because
/// every lookup/store touches only the shard of its own object, and the
/// counters commute, the observable state after preprocessing a candidate
/// set is independent of the order (or thread) the objects were processed
/// on.
#[derive(Debug)]
pub struct SharedParticleCache {
    shards: Vec<Mutex<HashMap<ObjectId, CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for SharedParticleCache {
    fn default() -> Self {
        SharedParticleCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

impl SharedParticleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, object: ObjectId) -> &Mutex<HashMap<ObjectId, CacheEntry>> {
        &self.shards[object.raw() as usize % SHARDS]
    }

    /// Looks up reusable particles for `object`, valid only if they were
    /// filtered under the same detection episode `current_episode`.
    /// Returns the cached states and their timestamp on a hit.
    pub fn lookup(
        &self,
        object: ObjectId,
        current_episode: EpisodeKey,
    ) -> Option<(Vec<IndoorState>, u64)> {
        let mut shard = self.shard(object).lock();
        match shard.get(&object) {
            Some(e) if e.episode == current_episode => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((e.particles.clone(), e.timestamp))
            }
            Some(_) => {
                // Detected by a new device since this entry was stored:
                // discard it, per §4.5.
                shard.remove(&object);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The episode a cached entry (if any) was filtered under, without
    /// touching the hit/miss statistics. A peek used by the preprocessor
    /// to classify an upcoming invalidation: same reader, new episode =
    /// an outage-style gap; different reader = a device handoff.
    pub fn cached_episode(&self, object: ObjectId) -> Option<EpisodeKey> {
        self.shard(object).lock().get(&object).map(|e| e.episode)
    }

    /// Stores the post-filtering particle states of `object` at simulated
    /// second `timestamp`, tagged with the episode they were filtered
    /// under.
    pub fn store(
        &self,
        object: ObjectId,
        particles: Vec<IndoorState>,
        timestamp: u64,
        episode: EpisodeKey,
    ) {
        self.shard(object).lock().insert(
            object,
            CacheEntry {
                particles,
                timestamp,
                episode,
            },
        );
    }

    /// Drops an object's entry.
    pub fn invalidate(&self, object: ObjectId) {
        if self.shard(object).lock().remove(&object).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Clears all entries (keeps statistics).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Appends the cache's full state — every entry plus the hit/miss
    /// counters — to `w` in the canonical checkpoint encoding (entries
    /// sorted by object id, so equal state always encodes identically
    /// regardless of shard hash order).
    pub fn encode_state(&self, w: &mut ByteWriter) {
        let mut entries: Vec<(ObjectId, CacheEntry)> = Vec::new();
        for shard in &self.shards {
            for (&o, e) in shard.lock().iter() {
                entries.push((o, e.clone()));
            }
        }
        entries.sort_by_key(|(o, _)| *o);
        w.put_seq_len(entries.len());
        for (o, e) in entries {
            w.put_u32(o.raw());
            w.put_u64(e.timestamp);
            w.put_u32(e.episode.0.raw());
            w.put_u64(e.episode.1);
            w.put_seq_len(e.particles.len());
            for p in &e.particles {
                w.put_u32(p.pos.edge.raw());
                w.put_f64(p.pos.offset);
                w.put_bool(matches!(p.heading, Heading::TowardB));
                w.put_f64(p.speed);
            }
        }
        w.put_u64(self.hits.load(Ordering::Relaxed));
        w.put_u64(self.misses.load(Ordering::Relaxed));
        w.put_u64(self.invalidations.load(Ordering::Relaxed));
    }

    /// Rebuilds a cache from bytes written by
    /// [`SharedParticleCache::encode_state`]. Any truncation or invalid
    /// tag is [`PersistError::Torn`].
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<SharedParticleCache, PersistError> {
        let cache = SharedParticleCache::new();
        let n_entries = r.get_seq_len(28)?;
        for _ in 0..n_entries {
            let object = ObjectId::new(r.get_u32()?);
            let timestamp = r.get_u64()?;
            let episode = (ReaderId::new(r.get_u32()?), r.get_u64()?);
            let n_particles = r.get_seq_len(21)?;
            let mut particles = Vec::with_capacity(n_particles);
            for _ in 0..n_particles {
                let edge = EdgeId::new(r.get_u32()?);
                let offset = r.get_f64()?;
                let heading = if r.get_bool()? {
                    Heading::TowardB
                } else {
                    Heading::TowardA
                };
                let speed = r.get_f64()?;
                particles.push(IndoorState {
                    pos: GraphPos::new(edge, offset),
                    heading,
                    speed,
                });
            }
            cache.store(object, particles, timestamp, episode);
        }
        cache.hits.store(r.get_u64()?, Ordering::Relaxed);
        cache.misses.store(r.get_u64()?, Ordering::Relaxed);
        cache.invalidations.store(r.get_u64()?, Ordering::Relaxed);
        Ok(cache)
    }
}

/// Particle-state cache, one entry per object — the single-owner API.
#[derive(Debug, Default)]
pub struct ParticleCache {
    inner: SharedParticleCache,
}

impl ParticleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an already-populated shared cache — e.g. one decoded from a
    /// checkpoint via [`SharedParticleCache::decode_state`] — in the
    /// single-owner API.
    pub fn from_shared(inner: SharedParticleCache) -> Self {
        ParticleCache { inner }
    }

    /// The internally synchronized cache backing this one, for handing to
    /// the parallel preprocessing path.
    pub fn shared(&self) -> &SharedParticleCache {
        &self.inner
    }

    /// Looks up reusable particles for `object`, valid only if they were
    /// filtered under the same detection episode `current_episode`.
    /// Returns the cached states and their timestamp on a hit.
    pub fn lookup(
        &mut self,
        object: ObjectId,
        current_episode: EpisodeKey,
    ) -> Option<(Vec<IndoorState>, u64)> {
        self.inner.lookup(object, current_episode)
    }

    /// Stores the post-filtering particle states of `object` at simulated
    /// second `timestamp`, tagged with the episode they were filtered
    /// under.
    pub fn store(
        &mut self,
        object: ObjectId,
        particles: Vec<IndoorState>,
        timestamp: u64,
        episode: EpisodeKey,
    ) {
        self.inner.store(object, particles, timestamp, episode);
    }

    /// The episode a cached entry (if any) was filtered under, without
    /// touching the hit/miss statistics.
    pub fn cached_episode(&self, object: ObjectId) -> Option<EpisodeKey> {
        self.inner.cached_episode(object)
    }

    /// Drops an object's entry.
    pub fn invalidate(&mut self, object: ObjectId) {
        self.inner.invalidate(object);
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Clears all entries (keeps statistics).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heading;
    use ripq_graph::{EdgeId, GraphPos};

    fn particle(offset: f64) -> IndoorState {
        IndoorState {
            pos: GraphPos::new(EdgeId::new(0), offset),
            heading: Heading::TowardB,
            speed: 1.0,
        }
    }

    const O: ObjectId = ObjectId::new(1);
    const EP1: EpisodeKey = (ReaderId::new(3), 100);
    const EP2: EpisodeKey = (ReaderId::new(4), 120);

    #[test]
    fn store_then_hit() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(1.0)], 110, EP1);
        let (states, t) = c.lookup(O, EP1).expect("hit");
        assert_eq!(states.len(), 1);
        assert_eq!(t, 110);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn new_episode_invalidates() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(1.0)], 110, EP1);
        assert!(c.lookup(O, EP2).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Entry is gone entirely.
        assert!(c.is_empty());
        assert!(c.lookup(O, EP1).is_none());
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn unknown_object_misses() {
        let mut c = ParticleCache::new();
        assert!(c.lookup(O, EP1).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        let _ = c.lookup(O, EP1);
        let _ = c.lookup(O, EP1);
        let _ = c.lookup(ObjectId::new(9), EP1);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_invalidation() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        c.invalidate(O);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 1);
        // Double-invalidation is a no-op.
        c.invalidate(O);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn store_overwrites() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        c.store(O, vec![particle(9.0), particle(8.0)], 7, EP1);
        let (states, t) = c.lookup(O, EP1).unwrap();
        assert_eq!(states.len(), 2);
        assert_eq!(t, 7);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_cache_is_usable_from_many_threads() {
        let c = SharedParticleCache::new();
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let o = ObjectId::new(w * 50 + i);
                        c.store(o, vec![particle(f64::from(i))], 10, EP1);
                        assert!(c.lookup(o, EP1).is_some());
                        assert!(c.lookup(o, EP2).is_none());
                    }
                });
            }
        });
        // Each worker: 50 hits, then 50 invalidating misses.
        let s = c.stats();
        assert_eq!(s.hits, 200);
        assert_eq!(s.misses, 200);
        assert_eq!(s.invalidations, 200);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn state_codec_round_trips_and_is_canonical() {
        let build = || {
            let c = SharedParticleCache::new();
            // Objects across different shards, some traffic for counters.
            for i in [0u32, 3, 16, 17, 40] {
                let o = ObjectId::new(i);
                c.store(
                    o,
                    vec![particle(f64::from(i)), particle(0.5)],
                    100 + u64::from(i),
                    EP1,
                );
            }
            let _ = c.lookup(ObjectId::new(0), EP1); // hit
            let _ = c.lookup(ObjectId::new(3), EP2); // invalidating miss
            let _ = c.lookup(ObjectId::new(99), EP1); // plain miss
            c
        };
        let c = build();
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let bytes = w.into_bytes();

        let mut w2 = ByteWriter::new();
        build().encode_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "encoding is not canonical");

        let mut r = ByteReader::new(&bytes);
        let d = SharedParticleCache::decode_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(d.stats(), c.stats());
        assert_eq!(d.len(), c.len());
        assert_eq!(
            d.lookup(ObjectId::new(0), EP1),
            c.lookup(ObjectId::new(0), EP1)
        );
        let mut w3 = ByteWriter::new();
        d.encode_state(&mut w3);
        // Both sides did one more identical hit above, so re-encode after
        // mirroring traffic must still agree.
        let mut w4 = ByteWriter::new();
        c.encode_state(&mut w4);
        assert_eq!(w3.into_bytes(), w4.into_bytes());
    }

    #[test]
    fn truncated_cache_state_is_torn_not_a_panic() {
        let c = SharedParticleCache::new();
        c.store(O, vec![particle(1.0), particle(2.0)], 9, EP1);
        let mut w = ByteWriter::new();
        c.encode_state(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert_eq!(
                SharedParticleCache::decode_state(&mut r).unwrap_err(),
                PersistError::Torn,
                "cut at {cut} not detected"
            );
        }
    }

    #[test]
    fn veneer_and_shared_views_agree() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(2.0)], 8, EP1);
        assert_eq!(c.shared().len(), 1);
        assert!(c.shared().lookup(O, EP1).is_some());
        // The shared view's traffic is visible through the veneer.
        assert_eq!(c.stats().hits, 1);
        c.clear();
        assert!(c.shared().is_empty());
        assert_eq!(c.stats().hits, 1, "clear keeps statistics");
    }
}
