//! The cache management module (§4.5).
//!
//! "Insertion to the cache happens every time when Algorithm 2 is done for
//! an object oᵢ. In case near future queries need to determine the location
//! distribution for the same object oᵢ again, we do not need to run the
//! Particle Filter algorithm from the start; instead, previous computation
//! is reused by retrieving the particles of oᵢ from the cache and resuming
//! the Particle Filter algorithm from the cache-stored time stamp."
//!
//! Invalidation follows the paper exactly: "we decide to discard processed
//! particles of oᵢ from the cache every time oᵢ is detected by a new
//! device" — implemented by keying each entry with the identity of the
//! detection episode it was filtered under.
//!
//! Two front ends share one implementation:
//!
//! * [`SharedParticleCache`] — sharded, internally synchronized (`&self`
//!   throughout), usable concurrently from the parallel preprocessing
//!   workers. Each object maps to exactly one shard, and the hit/miss/
//!   invalidation counters are atomics, so the statistics are the same
//!   whatever order objects are processed in.
//! * [`ParticleCache`] — the original single-threaded `&mut self` API,
//!   now a thin veneer over a [`SharedParticleCache`].

use crate::IndoorState;
use parking_lot::Mutex;
use ripq_rfid::{ObjectId, ReaderId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An episode identity: the most recent detecting reader plus the second
/// its episode began. A new episode (new device, or the same device after
/// a long gap) produces a different key and therefore a cache miss.
pub type EpisodeKey = (ReaderId, u64);

#[derive(Debug, Clone)]
struct CacheEntry {
    particles: Vec<IndoorState>,
    /// The simulated second the particle states correspond to.
    timestamp: u64,
    episode: EpisodeKey,
}

/// Hit/miss counters for cache effectiveness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found reusable particles.
    pub hits: u64,
    /// Lookups that found nothing (or a stale episode).
    pub misses: u64,
    /// Entries evicted because the object was detected by a new device.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Number of independently locked shards. Objects hash to shards by id, so
/// concurrent workers mostly touch different locks.
const SHARDS: usize = 16;

/// A concurrently usable particle-state cache, one entry per object.
///
/// All methods take `&self`: the entry map is split into [`SHARDS`]
/// mutex-protected shards and the statistics are atomic counters. Because
/// every lookup/store touches only the shard of its own object, and the
/// counters commute, the observable state after preprocessing a candidate
/// set is independent of the order (or thread) the objects were processed
/// on.
#[derive(Debug)]
pub struct SharedParticleCache {
    shards: Vec<Mutex<HashMap<ObjectId, CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for SharedParticleCache {
    fn default() -> Self {
        SharedParticleCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

impl SharedParticleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, object: ObjectId) -> &Mutex<HashMap<ObjectId, CacheEntry>> {
        &self.shards[object.raw() as usize % SHARDS]
    }

    /// Looks up reusable particles for `object`, valid only if they were
    /// filtered under the same detection episode `current_episode`.
    /// Returns the cached states and their timestamp on a hit.
    pub fn lookup(
        &self,
        object: ObjectId,
        current_episode: EpisodeKey,
    ) -> Option<(Vec<IndoorState>, u64)> {
        let mut shard = self.shard(object).lock();
        match shard.get(&object) {
            Some(e) if e.episode == current_episode => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((e.particles.clone(), e.timestamp))
            }
            Some(_) => {
                // Detected by a new device since this entry was stored:
                // discard it, per §4.5.
                shard.remove(&object);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The episode a cached entry (if any) was filtered under, without
    /// touching the hit/miss statistics. A peek used by the preprocessor
    /// to classify an upcoming invalidation: same reader, new episode =
    /// an outage-style gap; different reader = a device handoff.
    pub fn cached_episode(&self, object: ObjectId) -> Option<EpisodeKey> {
        self.shard(object).lock().get(&object).map(|e| e.episode)
    }

    /// Stores the post-filtering particle states of `object` at simulated
    /// second `timestamp`, tagged with the episode they were filtered
    /// under.
    pub fn store(
        &self,
        object: ObjectId,
        particles: Vec<IndoorState>,
        timestamp: u64,
        episode: EpisodeKey,
    ) {
        self.shard(object).lock().insert(
            object,
            CacheEntry {
                particles,
                timestamp,
                episode,
            },
        );
    }

    /// Drops an object's entry.
    pub fn invalidate(&self, object: ObjectId) {
        if self.shard(object).lock().remove(&object).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Clears all entries (keeps statistics).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }
}

/// Particle-state cache, one entry per object — the single-owner API.
#[derive(Debug, Default)]
pub struct ParticleCache {
    inner: SharedParticleCache,
}

impl ParticleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The internally synchronized cache backing this one, for handing to
    /// the parallel preprocessing path.
    pub fn shared(&self) -> &SharedParticleCache {
        &self.inner
    }

    /// Looks up reusable particles for `object`, valid only if they were
    /// filtered under the same detection episode `current_episode`.
    /// Returns the cached states and their timestamp on a hit.
    pub fn lookup(
        &mut self,
        object: ObjectId,
        current_episode: EpisodeKey,
    ) -> Option<(Vec<IndoorState>, u64)> {
        self.inner.lookup(object, current_episode)
    }

    /// Stores the post-filtering particle states of `object` at simulated
    /// second `timestamp`, tagged with the episode they were filtered
    /// under.
    pub fn store(
        &mut self,
        object: ObjectId,
        particles: Vec<IndoorState>,
        timestamp: u64,
        episode: EpisodeKey,
    ) {
        self.inner.store(object, particles, timestamp, episode);
    }

    /// The episode a cached entry (if any) was filtered under, without
    /// touching the hit/miss statistics.
    pub fn cached_episode(&self, object: ObjectId) -> Option<EpisodeKey> {
        self.inner.cached_episode(object)
    }

    /// Drops an object's entry.
    pub fn invalidate(&mut self, object: ObjectId) {
        self.inner.invalidate(object);
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Clears all entries (keeps statistics).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heading;
    use ripq_graph::{EdgeId, GraphPos};

    fn particle(offset: f64) -> IndoorState {
        IndoorState {
            pos: GraphPos::new(EdgeId::new(0), offset),
            heading: Heading::TowardB,
            speed: 1.0,
        }
    }

    const O: ObjectId = ObjectId::new(1);
    const EP1: EpisodeKey = (ReaderId::new(3), 100);
    const EP2: EpisodeKey = (ReaderId::new(4), 120);

    #[test]
    fn store_then_hit() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(1.0)], 110, EP1);
        let (states, t) = c.lookup(O, EP1).expect("hit");
        assert_eq!(states.len(), 1);
        assert_eq!(t, 110);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn new_episode_invalidates() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(1.0)], 110, EP1);
        assert!(c.lookup(O, EP2).is_none());
        assert_eq!(c.stats().invalidations, 1);
        // Entry is gone entirely.
        assert!(c.is_empty());
        assert!(c.lookup(O, EP1).is_none());
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn unknown_object_misses() {
        let mut c = ParticleCache::new();
        assert!(c.lookup(O, EP1).is_none());
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        let _ = c.lookup(O, EP1);
        let _ = c.lookup(O, EP1);
        let _ = c.lookup(ObjectId::new(9), EP1);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_invalidation() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        c.invalidate(O);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 1);
        // Double-invalidation is a no-op.
        c.invalidate(O);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn store_overwrites() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(0.0)], 5, EP1);
        c.store(O, vec![particle(9.0), particle(8.0)], 7, EP1);
        let (states, t) = c.lookup(O, EP1).unwrap();
        assert_eq!(states.len(), 2);
        assert_eq!(t, 7);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_cache_is_usable_from_many_threads() {
        let c = SharedParticleCache::new();
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let o = ObjectId::new(w * 50 + i);
                        c.store(o, vec![particle(f64::from(i))], 10, EP1);
                        assert!(c.lookup(o, EP1).is_some());
                        assert!(c.lookup(o, EP2).is_none());
                    }
                });
            }
        });
        // Each worker: 50 hits, then 50 invalidating misses.
        let s = c.stats();
        assert_eq!(s.hits, 200);
        assert_eq!(s.misses, 200);
        assert_eq!(s.invalidations, 200);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn veneer_and_shared_views_agree() {
        let mut c = ParticleCache::new();
        c.store(O, vec![particle(2.0)], 8, EP1);
        assert_eq!(c.shared().len(), 1);
        assert!(c.shared().lookup(O, EP1).is_some());
        // The shared view's traffic is visible through the veneer.
        assert_eq!(c.stats().hits, 1);
        c.clear();
        assert!(c.shared().is_empty());
        assert_eq!(c.stats().hits, 1, "clear keeps statistics");
    }
}
