//! The particle filter-based preprocessing module — **Algorithm 2**.
//!
//! For every candidate object the preprocessor replays its retained
//! aggregated readings through the SIR filter: particles are seeded inside
//! the activation range of the second-most-recent detecting device, move
//! along the walking graph second by second, are reweighted and resampled
//! at every observation, coast for at most 60 s beyond the last reading,
//! and are finally snapped to anchor points to populate the `APtoObjHT`
//! hash table (§4.4).

use crate::{
    seed_particles, IndoorState, KldConfig, MeasurementModel, MotionModel, ParticleCache,
    ParticleFilter,
};
use rand::Rng;
use ripq_graph::{AnchorId, AnchorObjectIndex, AnchorSet, WalkingGraph};
use ripq_rfid::{ObjectId, Reader, ReaderId, ReadingStore};
use serde::{Deserialize, Serialize};

/// Tuning parameters of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessorConfig {
    /// Number of particles per object (`Ns`; Table 2 default: 64).
    pub num_particles: usize,
    /// Object motion model.
    pub motion: MotionModel,
    /// Device sensing model for weighting.
    pub measurement: MeasurementModel,
    /// Maximum seconds the filter keeps running past the last active
    /// reading (Algorithm 2 line 6: `tmin = min(td + 60, tcurrent)`).
    pub coast_seconds: u64,
    /// Use *negative* observations too: during a second with no reading,
    /// particles sitting inside any reader's activation range are
    /// down-weighted — the aggregated per-second miss probability is
    /// essentially zero (§4.1), so an undetected object cannot be inside a
    /// range. Algorithm 2 as printed skips null entries (lines 18–19);
    /// this flag is our documented strengthening, on by default, with an
    /// ablation benchmark quantifying its effect.
    pub negative_evidence: bool,
    /// Resample when the effective sample size drops below this fraction
    /// of `Ns`. The original SIR filter (and the paper) resamples at every
    /// observation (`1.0`); the default `0.5` preserves hypothesis
    /// diversity at small particle counts, where per-second resampling
    /// collapses the cloud into clones of a single lineage.
    pub resample_threshold: f64,
    /// Kernel-density bandwidth (meters) used when converting the final
    /// particle set into an anchor distribution. A raw `Ns`-particle
    /// histogram is overconfident; triangular-kernel smoothing is the
    /// standard density conversion. `0` = plain nearest-anchor snapping.
    pub kde_bandwidth: f64,
    /// KLD-sampling (Fox 2001): adapt the particle count to the posterior
    /// spread at every resampling step. `None` keeps the paper's fixed
    /// `Ns`.
    pub adaptive: Option<KldConfig>,
}

impl Default for PreprocessorConfig {
    fn default() -> Self {
        PreprocessorConfig {
            num_particles: 64,
            motion: MotionModel::default(),
            measurement: MeasurementModel::default(),
            coast_seconds: 60,
            negative_evidence: true,
            resample_threshold: 0.5,
            kde_bandwidth: 2.0,
            adaptive: None,
        }
    }
}

/// Result of preprocessing one object.
#[derive(Debug, Clone)]
pub struct PreprocessOutcome {
    /// The object's inferred location distribution over anchor points
    /// (sums to 1).
    pub distribution: Vec<(AnchorId, f64)>,
    /// Final particle states (what the cache stores).
    pub particles: Vec<IndoorState>,
    /// Second the final states correspond to.
    pub timestamp: u64,
    /// Whether cached particles were resumed instead of reseeding.
    pub resumed_from_cache: bool,
    /// Number of filter seconds actually simulated.
    pub seconds_simulated: u64,
}

/// Algorithm 2 runner, borrowing the static world description.
pub struct ParticlePreprocessor<'a> {
    graph: &'a WalkingGraph,
    anchors: &'a AnchorSet,
    readers: &'a [Reader],
    config: PreprocessorConfig,
}

impl<'a> ParticlePreprocessor<'a> {
    /// Creates a preprocessor over a fixed graph / anchor set / reader
    /// deployment. `readers` must be dense: `readers[id.index()].id() == id`.
    pub fn new(
        graph: &'a WalkingGraph,
        anchors: &'a AnchorSet,
        readers: &'a [Reader],
        config: PreprocessorConfig,
    ) -> Self {
        debug_assert!(readers
            .iter()
            .enumerate()
            .all(|(i, r)| r.id().index() == i));
        ParticlePreprocessor {
            graph,
            anchors,
            readers,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PreprocessorConfig {
        &self.config
    }

    fn reader(&self, id: ReaderId) -> &Reader {
        &self.readers[id.index()]
    }

    /// Runs Algorithm 2 for one object. Returns `None` when the collector
    /// has never seen the object (no readings → no inference possible).
    pub fn process_object<R: Rng, S: ReadingStore + ?Sized>(
        &self,
        rng: &mut R,
        collector: &S,
        object: ObjectId,
        now: u64,
        mut cache: Option<&mut ParticleCache>,
    ) -> Option<PreprocessOutcome> {
        let agg = collector.aggregated(object)?;
        let (_, td) = collector.last_detection(object)?;
        let (di, _) = collector.last_two_devices(object)?;
        let (ep_reader, ep_first, _) = collector.last_episode(object)?;
        let episode_key = (ep_reader, ep_first);

        // `tmin = min(td + 60, tcurrent)` — line 6.
        let tmin = (td + self.config.coast_seconds).min(now);

        // Cache lookup (§4.5): resume from the stored timestamp when the
        // most recent episode is unchanged.
        let (mut filter, start, resumed) = match cache
            .as_mut()
            .and_then(|c| c.lookup(object, episode_key))
        {
            Some((states, t)) if t <= tmin => {
                (ParticleFilter::from_states(states), t + 1, true)
            }
            Some((states, t)) => {
                // Cached states are already at/after tmin: reuse directly.
                let filter = ParticleFilter::from_states(states);
                let out = self.finish(filter, t, true, 0);
                return Some(out);
            }
            None => {
                // Fresh start: seed within the second-most-recent device's
                // activation range at the first retained second (line 5).
                let seeds = seed_particles(
                    rng,
                    self.graph,
                    self.reader(di),
                    &self.config.motion,
                    self.config.num_particles,
                );
                (ParticleFilter::from_states(seeds), agg.start_second + 1, false)
            }
        };

        // Main loop — lines 7..31.
        let mut simulated = 0u64;
        for tj in start..=tmin {
            filter.predict(|s| self.config.motion.step(rng, self.graph, s, 1.0));
            simulated += 1;
            // Line 17: the aggregated reading entry of tj (None both when
            // the entry says "no detection" and beyond the retained
            // window).
            let reading = agg.entry_at(tj).flatten();
            if let Some(device) = reading {
                let reader = self.reader(device);
                let any_consistent = filter
                    .states()
                    .iter()
                    .any(|s| reader.covers(self.graph.point_of(s.pos)));
                if any_consistent {
                    filter
                        .reweight(|s| self.config.measurement.likelihood(self.graph, s, reader));
                    filter.normalize();
                    if filter.effective_sample_size()
                        < filter.len() as f64 * self.config.resample_threshold
                    {
                        self.resample(rng, &mut filter);
                    }
                } else {
                    // Sensor reset: the reading contradicts every
                    // hypothesis (the cloud drifted the wrong way), so
                    // reweighting would be a no-op — reseed the whole set
                    // inside the detecting range instead. Standard
                    // kidnapped-robot recovery for low particle counts.
                    let n = filter.len();
                    let seeds =
                        seed_particles(rng, self.graph, reader, &self.config.motion, n);
                    filter = ParticleFilter::from_states(seeds);
                }
            } else if self.config.negative_evidence {
                // No reading this second ⇒ the object is outside every
                // activation range (per-second misses are ~impossible
                // after aggregation). Down-weight particles inside one.
                let mm = self.config.measurement;
                let mut any_inside = false;
                filter.reweight(|s| {
                    let pt = self.graph.point_of(s.pos);
                    if self.readers.iter().any(|r| r.covers(pt)) {
                        any_inside = true;
                        mm.low_weight
                    } else {
                        mm.high_weight
                    }
                });
                if any_inside {
                    filter.normalize();
                    // Resample only on real degeneracy to preserve
                    // hypothesis diversity during long silent stretches.
                    if filter.effective_sample_size()
                        < filter.len() as f64 * self.config.resample_threshold
                    {
                        self.resample(rng, &mut filter);
                    }
                }
            }
        }

        let timestamp = tmin.max(start.saturating_sub(1));
        if let Some(c) = cache.as_mut() {
            c.store(object, filter.states().to_vec(), timestamp, episode_key);
        }
        Some(self.finish(filter, timestamp, resumed, simulated))
    }

    /// Resamples, adapting the output size per KLD-sampling when enabled.
    fn resample<R: Rng>(&self, rng: &mut R, filter: &mut ParticleFilter<IndoorState>) {
        match self.config.adaptive {
            Some(cfg) => {
                let bins = cfg.occupied_bins(self.anchors, filter.states());
                filter.resample_to(rng, cfg.target_count(bins));
            }
            None => filter.resample(rng),
        }
    }

    fn finish(
        &self,
        filter: ParticleFilter<IndoorState>,
        timestamp: u64,
        resumed: bool,
        simulated: u64,
    ) -> PreprocessOutcome {
        // Lines 32–36: snap each particle to its nearest anchor point;
        // p(o at ap) = n/Ns.
        let n = filter.len() as f64;
        let particles = filter.into_states();
        let distribution = self
            .anchors
            .kde_distribution(
                particles.iter().map(|s| (s.pos, 1.0 / n)),
                self.config.kde_bandwidth,
            );
        PreprocessOutcome {
            distribution,
            particles,
            timestamp,
            resumed_from_cache: resumed,
            seconds_simulated: simulated,
        }
    }

    /// Runs Algorithm 2 for every candidate and assembles the `APtoObjHT`
    /// index consumed by query evaluation.
    pub fn process<R: Rng, S: ReadingStore + ?Sized>(
        &self,
        rng: &mut R,
        collector: &S,
        candidates: &[ObjectId],
        now: u64,
        mut cache: Option<&mut ParticleCache>,
    ) -> AnchorObjectIndex<ObjectId> {
        let mut index = AnchorObjectIndex::new();
        for &o in candidates {
            if let Some(outcome) =
                self.process_object(rng, collector, o, now, cache.as_deref_mut())
            {
                index.set_object(o, outcome.distribution);
            }
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;
    use ripq_rfid::{deploy_uniform, DataCollector};

    struct World {
        graph: WalkingGraph,
        anchors: AnchorSet,
        readers: Vec<Reader>,
    }

    fn world() -> World {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let _ = &plan;
        World {
            graph,
            anchors,
            readers,
        }
    }

    const O: ObjectId = ObjectId::new(0);

    /// Feeds the collector a synthetic walk past two adjacent readers on
    /// the same hallway, left to right.
    fn feed_two_reader_walk(w: &World, c: &mut DataCollector) -> (ReaderId, ReaderId, u64) {
        // Two readers on hallway 0 (same y), adjacent in deployment order.
        let (r1, r2) = {
            let mut found = None;
            for pair in w.readers.windows(2) {
                if (pair[0].position().y - pair[1].position().y).abs() < 1e-9 {
                    found = Some((pair[0], pair[1]));
                    break;
                }
            }
            found.expect("adjacent same-hallway readers exist")
        };
        let gap = r1.position().distance(r2.position());
        // Walk at 1 m/s from r1 to r2: in r1's range seconds 0..4,
        // silent while between, in r2's range near the end.
        let mut t = 0u64;
        let total_seconds = gap.ceil() as u64 + 4;
        for s in 0..=total_seconds {
            let x = r1.position().x - 2.0 + s as f64; // enters r1 range at t=0
            let p = ripq_geom::Point2::new(x, r1.position().y);
            if r1.covers(p) {
                c.ingest_second(s, &[(O, r1.id())]);
            } else if r2.covers(p) {
                c.ingest_second(s, &[(O, r2.id())]);
            } else {
                c.ingest_second(s, &[]);
            }
            t = s;
        }
        (r1.id(), r2.id(), t)
    }

    #[test]
    fn distribution_sums_to_one() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(20);
        let out = pre
            .process_object(&mut rng, &c, O, now, None)
            .expect("object known");
        let total: f64 = out.distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(!out.resumed_from_cache);
        assert_eq!(out.particles.len(), 64);
    }

    #[test]
    fn filter_learns_direction_after_two_readers() {
        // The Fig. 1 scenario: after d2 then d3 readings, mass should be
        // ahead of (or at) the second reader, not behind the first.
        let w = world();
        let mut c = DataCollector::new();
        let (r1, r2, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(21);
        let out = pre.process_object(&mut rng, &c, O, now, None).unwrap();
        let p1 = w.readers[r1.index()].position();
        let p2 = w.readers[r2.index()].position();
        // Probability mass closer to r2 than to r1:
        let mut near_r2 = 0.0;
        for &(a, p) in &out.distribution {
            let pt = w.anchors.anchor(a).point;
            if pt.distance(p2) < pt.distance(p1) {
                near_r2 += p;
            }
        }
        assert!(
            near_r2 > 0.7,
            "mass near the most recent reader should dominate, got {near_r2}"
        );
    }

    #[test]
    fn coast_cutoff_limits_simulation() {
        let w = world();
        let mut c = DataCollector::new();
        // One short detection, then a very long silence.
        c.ingest_second(0, &[(O, w.readers[0].id())]);
        for s in 1..=500 {
            c.ingest_second(s, &[]);
        }
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(22);
        let out = pre.process_object(&mut rng, &c, O, 500, None).unwrap();
        // td = 0, coast = 60 → at most 60 simulated seconds.
        assert!(out.seconds_simulated <= 60, "{}", out.seconds_simulated);
        assert_eq!(out.timestamp, 60);
    }

    #[test]
    fn cache_resume_skips_earlier_seconds() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut cache = ParticleCache::new();
        let mut rng = StdRng::seed_from_u64(23);
        let first = pre
            .process_object(&mut rng, &c, O, now, Some(&mut cache))
            .unwrap();
        assert!(!first.resumed_from_cache);
        // Advance the world a little with no new readings.
        let later = now + 5;
        for s in now + 1..=later {
            c.ingest_second(s, &[]);
        }
        let second = pre
            .process_object(&mut rng, &c, O, later, Some(&mut cache))
            .unwrap();
        assert!(second.resumed_from_cache);
        assert!(
            second.seconds_simulated <= 5,
            "resume should only simulate the delta, got {}",
            second.seconds_simulated
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_invalidated_by_new_device() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut cache = ParticleCache::new();
        let mut rng = StdRng::seed_from_u64(24);
        pre.process_object(&mut rng, &c, O, now, Some(&mut cache))
            .unwrap();
        // A brand-new reader episode starts.
        let other = w.readers[10].id();
        c.ingest_second(now + 1, &[(O, other)]);
        let out = pre
            .process_object(&mut rng, &c, O, now + 1, Some(&mut cache))
            .unwrap();
        assert!(!out.resumed_from_cache, "new device must invalidate");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn unknown_object_yields_none() {
        let w = world();
        let c = DataCollector::new();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(25);
        assert!(pre
            .process_object(&mut rng, &c, ObjectId::new(42), 10, None)
            .is_none());
    }

    #[test]
    fn process_builds_index_for_all_candidates() {
        let w = world();
        let mut c = DataCollector::new();
        let o2 = ObjectId::new(7);
        c.ingest_second(0, &[(O, w.readers[0].id()), (o2, w.readers[5].id())]);
        c.ingest_second(1, &[(O, w.readers[0].id()), (o2, w.readers[5].id())]);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(26);
        let index = pre.process(&mut rng, &c, &[O, o2, ObjectId::new(99)], 5, None);
        assert_eq!(index.object_count(), 2, "unknown candidate skipped");
        assert!((index.total_probability(&O) - 1.0).abs() < 1e-9);
        assert!((index.total_probability(&o2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_reading_object_still_processable() {
        // Only one device has ever seen the object — Algorithm 2 "still
        // runs, although one device's readings alone can hardly determine
        // the object's moving direction".
        let w = world();
        let mut c = DataCollector::new();
        c.ingest_second(0, &[(O, w.readers[3].id())]);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(27);
        let out = pre.process_object(&mut rng, &c, O, 3, None).unwrap();
        let total: f64 = out.distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Mass is spread around reader 3 within ~3 s of walking.
        let rp = w.readers[3].position();
        for &(a, _) in &out.distribution {
            let d = w.anchors.anchor(a).point.distance(rp);
            assert!(d < 2.0 + 3.0 * 1.5 + 3.0, "anchor too far: {d}");
        }
    }

    #[test]
    fn adaptive_particles_shrink_when_confined() {
        // A freshly observed object is confined to one activation range
        // (few anchor bins): KLD-sampling drops the particle count toward
        // the minimum, while the fixed-size filter keeps 64.
        let w = world();
        let mut c = DataCollector::new();
        for s in 0..6u64 {
            c.ingest_second(s, &[(O, w.readers[4].id())]);
        }
        let cfg = PreprocessorConfig {
            adaptive: Some(crate::KldConfig::default()),
            ..Default::default()
        };
        let pre = ParticlePreprocessor::new(&w.graph, &w.anchors, &w.readers, cfg);
        let mut rng = StdRng::seed_from_u64(30);
        let out = pre.process_object(&mut rng, &c, O, 6, None).unwrap();
        assert!(
            out.particles.len() < 64,
            "confined cloud should shrink, kept {}",
            out.particles.len()
        );
        let total: f64 = out.distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let out1 = pre
            .process_object(&mut StdRng::seed_from_u64(42), &c, O, now, None)
            .unwrap();
        let out2 = pre
            .process_object(&mut StdRng::seed_from_u64(42), &c, O, now, None)
            .unwrap();
        assert_eq!(out1.distribution, out2.distribution);
    }
}
