//! The particle filter-based preprocessing module — **Algorithm 2**.
//!
//! For every candidate object the preprocessor replays its retained
//! aggregated readings through the SIR filter: particles are seeded inside
//! the activation range of the second-most-recent detecting device, move
//! along the walking graph second by second, are reweighted and resampled
//! at every observation, coast for at most 60 s beyond the last reading,
//! and are finally snapped to anchor points to populate the `APtoObjHT`
//! hash table (§4.4).
//!
//! # Parallel preprocessing
//!
//! Objects are independent once the shared world state (graph, anchors,
//! readers, cache) is read-only or internally synchronized, so
//! [`ParticlePreprocessor::process_streamed`] can fan candidates out over
//! worker threads. To keep the output *bit-identical* regardless of the
//! worker count, each object draws from its own RNG stream, derived
//! deterministically from `(pass_seed, object id, resume timestamp)` by
//! [`derive_stream_seed`] — no draw ever depends on which objects were
//! processed before it, or on which thread it ran.

use crate::cache::EpisodeKey;
use crate::{
    seed_particles, IndoorState, KldConfig, MeasurementModel, MotionModel, ParticleCache,
    ParticleFilter, SharedParticleCache,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripq_graph::{
    AnchorId, AnchorObjectIndex, AnchorSet, DeltaOutcome, IndexDeltaStats, WalkingGraph,
};
use ripq_obs::{Counter, Histogram, Recorder};
use ripq_rfid::{ObjectId, Reader, ReaderId, ReadingStore};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Derives the seed of one object's private RNG stream for one
/// preprocessing pass.
///
/// The three inputs are folded into a SplitMix64 chain one at a time:
/// `pass_seed` separates evaluation passes, the object id separates
/// objects within a pass, and the resume timestamp separates a fresh
/// filter run from a cache-resumed one (which starts at a different
/// second and must not replay the same deviates). The result is
/// independent of processing order, which is what makes the parallel
/// fan-out bit-identical to the sequential loop.
pub fn derive_stream_seed(pass_seed: u64, object: ObjectId, resume_timestamp: u64) -> u64 {
    let mut state = pass_seed;
    let mut out = rand::split_mix64(&mut state);
    state ^= u64::from(object.raw()).rotate_left(32);
    out ^= rand::split_mix64(&mut state);
    state ^= resume_timestamp;
    out ^ rand::split_mix64(&mut state)
}

/// Tuning parameters of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreprocessorConfig {
    /// Number of particles per object (`Ns`; Table 2 default: 64).
    pub num_particles: usize,
    /// Object motion model.
    pub motion: MotionModel,
    /// Device sensing model for weighting.
    pub measurement: MeasurementModel,
    /// Maximum seconds the filter keeps running past the last active
    /// reading (Algorithm 2 line 6: `tmin = min(td + 60, tcurrent)`).
    pub coast_seconds: u64,
    /// Use *negative* observations too: during a second with no reading,
    /// particles sitting inside any reader's activation range are
    /// down-weighted — the aggregated per-second miss probability is
    /// essentially zero (§4.1), so an undetected object cannot be inside a
    /// range. Algorithm 2 as printed skips null entries (lines 18–19);
    /// this flag is our documented strengthening, on by default, with an
    /// ablation benchmark quantifying its effect.
    pub negative_evidence: bool,
    /// Resample when the effective sample size drops below this fraction
    /// of `Ns`. The original SIR filter (and the paper) resamples at every
    /// observation (`1.0`); the default `0.5` preserves hypothesis
    /// diversity at small particle counts, where per-second resampling
    /// collapses the cloud into clones of a single lineage.
    pub resample_threshold: f64,
    /// Kernel-density bandwidth (meters) used when converting the final
    /// particle set into an anchor distribution. A raw `Ns`-particle
    /// histogram is overconfident; triangular-kernel smoothing is the
    /// standard density conversion. `0` = plain nearest-anchor snapping.
    pub kde_bandwidth: f64,
    /// KLD-sampling (Fox 2001): adapt the particle count to the posterior
    /// spread at every resampling step. `None` keeps the paper's fixed
    /// `Ns`.
    pub adaptive: Option<KldConfig>,
}

impl Default for PreprocessorConfig {
    fn default() -> Self {
        PreprocessorConfig {
            num_particles: 64,
            motion: MotionModel::default(),
            measurement: MeasurementModel::default(),
            coast_seconds: 60,
            negative_evidence: true,
            resample_threshold: 0.5,
            kde_bandwidth: 2.0,
            adaptive: None,
        }
    }
}

/// Result of preprocessing one object.
#[derive(Debug, Clone)]
pub struct PreprocessOutcome {
    /// The object's inferred location distribution over anchor points
    /// (sums to 1).
    pub distribution: Vec<(AnchorId, f64)>,
    /// Final particle states (what the cache stores).
    pub particles: Vec<IndoorState>,
    /// Second the final states correspond to.
    pub timestamp: u64,
    /// Whether cached particles were resumed instead of reseeding.
    pub resumed_from_cache: bool,
    /// Number of filter seconds actually simulated.
    pub seconds_simulated: u64,
}

/// How much of the full particle-filter pipeline produced an object's
/// answer distribution, ordered from best to worst. A query's overall
/// level is the maximum over the objects it touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DegradationLevel {
    /// Full Algorithm 2 run at the configured particle count.
    Full,
    /// The per-query budget forced a reduced particle count (the
    /// KLD-sampling floor), trading sharpness for latency.
    ReducedParticles,
    /// The budget was exhausted: the answer is a uniform distribution
    /// over the anchors inside the object's pruning circle (§4.3) — the
    /// weakest statement the readings still support.
    UniformFallback,
    /// The object's filter panicked past the retry limit; the answer is
    /// the same uniform pruning-circle distribution, and the object is
    /// flagged so operators know inference is persistently failing.
    Quarantined,
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradationLevel::Full => "full",
            DegradationLevel::ReducedParticles => "reduced-particles",
            DegradationLevel::UniformFallback => "uniform-fallback",
            DegradationLevel::Quarantined => "quarantined",
        })
    }
}

/// Knobs of [`ParticlePreprocessor::process_supervised`]: worker
/// isolation, bounded retry and the per-pass evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionOptions {
    /// Panicking filter runs are retried (from a fresh reseed, cache
    /// disabled) at most this many times before quarantining the object.
    pub retry_limit: usize,
    /// Evaluation budget for the whole pass in cost units (simulated
    /// seconds × particle count, a deterministic logical-clock model).
    /// `None` = unbounded (every object runs the full filter).
    pub budget: Option<u64>,
    /// Deterministic fault hook for tests: this object's filter panics on
    /// its first [`SupervisionOptions::panic_attempts`] attempts.
    pub panic_object: Option<ObjectId>,
    /// How many attempts of [`SupervisionOptions::panic_object`] panic.
    pub panic_attempts: usize,
}

impl Default for SupervisionOptions {
    fn default() -> Self {
        SupervisionOptions {
            retry_limit: 1,
            budget: None,
            panic_object: None,
            panic_attempts: 1,
        }
    }
}

/// Output of [`ParticlePreprocessor::process_supervised`]: the assembled
/// `APtoObjHT` index plus the degradation level each candidate's answer
/// was produced at.
#[derive(Debug)]
pub struct SupervisedOutput {
    /// Anchor→object index over all answered candidates.
    pub index: AnchorObjectIndex<ObjectId>,
    /// Per-object degradation level (objects the collector has never
    /// seen are absent, exactly as they are absent from the index).
    pub degradation: BTreeMap<ObjectId, DegradationLevel>,
}

/// Everything [`ParticlePreprocessor::filter_object`] needs that was
/// decided *before* any random draw: the episode identity, the simulation
/// window, and the (already consumed) cache-lookup result. Splitting this
/// out lets the streamed path derive the per-object RNG from the resume
/// timestamp before the filter body runs.
struct ObjectPlan {
    episode_key: EpisodeKey,
    /// `tmin = min(td + coast, now)` — Algorithm 2 line 6.
    tmin: u64,
    /// Second-most-recent detecting device (`dᵢ`), the fresh-seed source.
    seed_device: ReaderId,
    /// First retained second of the aggregated readings.
    agg_start: u64,
    /// The cache-lookup result (the lookup itself already happened and
    /// counted toward the statistics).
    cached: Option<(Vec<IndoorState>, u64)>,
    /// The second this pass's filtering effectively starts from: the
    /// cached timestamp on a hit, the aggregation start on a miss. Feeds
    /// [`derive_stream_seed`].
    resume_timestamp: u64,
}

/// Resolved `pf.*` metric handles. Every recording operation is
/// commutative (atomic adds, histogram bucket counts), so worker threads
/// sharing one preprocessor produce interleaving-independent totals.
/// All handles default to no-ops until a recorder is attached.
#[derive(Debug, Clone, Default)]
struct PfMetrics {
    /// Objects run through Algorithm 2.
    objects: Counter,
    /// SIR main-loop seconds simulated (Algorithm 2 lines 7–31).
    sir_iterations: Counter,
    /// Effective sample size at each observation step, floored.
    ess: Histogram,
    /// Resampling steps actually taken (ESS below threshold).
    resamples: Counter,
    /// Sensor resets (reading contradicted every hypothesis).
    sensor_resets: Counter,
    /// Filter runs resumed from cached particles.
    cache_resumes: Counter,
    /// Seconds of replay a cache resume skipped.
    resume_depth: Histogram,
    /// Passes where the 60 s coast cutoff truncated the simulation.
    cutoff_hits: Counter,
    /// Seconds the coast cutoff culled from the simulation window.
    cutoff_seconds_skipped: Counter,
    /// Final particle-set size per object (KLD sampling may shrink it).
    final_particles: Histogram,
    /// Cache invalidations caused by a same-device episode split: the
    /// reading stream went dark long enough (reader outage, deep drop
    /// burst) to break the episode even though the same reader re-detected
    /// the object, forcing a fresh reseed.
    outage_resets: Counter,
}

/// Algorithm 2 runner, borrowing the static world description.
pub struct ParticlePreprocessor<'a> {
    graph: &'a WalkingGraph,
    anchors: &'a AnchorSet,
    readers: &'a [Reader],
    config: PreprocessorConfig,
    metrics: PfMetrics,
    /// Kept for lazily registered `degrade.*` counters: unlike the
    /// pre-resolved [`PfMetrics`] handles (which register their names at
    /// zero the moment a recorder is attached), degradation counters only
    /// appear in snapshots once degradation actually happens.
    recorder: Recorder,
}

impl<'a> ParticlePreprocessor<'a> {
    /// Creates a preprocessor over a fixed graph / anchor set / reader
    /// deployment. `readers` must be dense: `readers[id.index()].id() == id`.
    pub fn new(
        graph: &'a WalkingGraph,
        anchors: &'a AnchorSet,
        readers: &'a [Reader],
        config: PreprocessorConfig,
    ) -> Self {
        debug_assert!(readers.iter().enumerate().all(|(i, r)| r.id().index() == i));
        ParticlePreprocessor {
            graph,
            anchors,
            readers,
            config,
            metrics: PfMetrics::default(),
            recorder: Recorder::default(),
        }
    }

    /// Attaches an observability recorder: `pf.*` counters and histograms
    /// are recorded from now on. Handles are resolved once here, so the
    /// per-step cost is an atomic add (or a no-op branch when the
    /// recorder is disabled).
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.metrics = PfMetrics {
            objects: recorder.counter("pf.objects_processed"),
            sir_iterations: recorder.counter("pf.sir_iterations"),
            ess: recorder.histogram("pf.ess"),
            resamples: recorder.counter("pf.resamples"),
            sensor_resets: recorder.counter("pf.sensor_resets"),
            cache_resumes: recorder.counter("pf.cache_resumes"),
            resume_depth: recorder.histogram("pf.resume_depth_seconds"),
            cutoff_hits: recorder.counter("pf.coast_cutoff_hits"),
            cutoff_seconds_skipped: recorder.counter("pf.coast_seconds_skipped"),
            final_particles: recorder.histogram("pf.final_particles"),
            outage_resets: recorder.counter("pf.outage_resets"),
        };
        self.recorder = recorder.clone();
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &PreprocessorConfig {
        &self.config
    }

    fn reader(&self, id: ReaderId) -> &Reader {
        &self.readers[id.index()]
    }

    /// Lines 1–6 of Algorithm 2 plus the cache lookup (§4.5): everything
    /// that happens before the first random draw. `None` when the
    /// collector has never seen the object.
    fn plan_object<S: ReadingStore + ?Sized>(
        &self,
        collector: &S,
        object: ObjectId,
        now: u64,
        cache: Option<&SharedParticleCache>,
    ) -> Option<ObjectPlan> {
        let agg = collector.aggregated(object)?;
        let (_, td) = collector.last_detection(object)?;
        let (di, _) = collector.last_two_devices(object)?;
        let (ep_reader, ep_first, _) = collector.last_episode(object)?;
        let episode_key = (ep_reader, ep_first);

        // `tmin = min(td + 60, tcurrent)` — line 6.
        let tmin = (td + self.config.coast_seconds).min(now);
        if tmin < now {
            self.metrics.cutoff_hits.inc();
            self.metrics.cutoff_seconds_skipped.add(now - tmin);
        }
        let agg_start = agg.start_second;

        let prior_episode = cache.and_then(|c| c.cached_episode(object));
        let cached = cache.and_then(|c| c.lookup(object, episode_key));
        if cached.is_none() {
            // Classify the invalidation: the same reader starting a new
            // episode means the stream went dark past the gap tolerance
            // (outage-style), not that the object moved to a new device.
            if let Some(prev) = prior_episode {
                if prev != episode_key && prev.0 == episode_key.0 {
                    self.metrics.outage_resets.inc();
                }
            }
        }
        let resume_timestamp = match &cached {
            Some((_, t)) => *t,
            None => agg_start,
        };
        Some(ObjectPlan {
            episode_key,
            tmin,
            seed_device: di,
            agg_start,
            cached,
            resume_timestamp,
        })
    }

    /// Lines 7–36 of Algorithm 2: seed or resume the filter, replay the
    /// aggregated readings up to `tmin`, store back into the cache, snap
    /// to anchors. All random draws of the pass happen here, in a fixed
    /// order independent of other objects.
    ///
    /// Returns `None` only if the object vanished from the collector
    /// between planning and filtering (impossible for the sequential
    /// callers, unobservable but handled for the supervised fan-out).
    fn filter_object<R: Rng, S: ReadingStore + ?Sized>(
        &self,
        rng: &mut R,
        collector: &S,
        object: ObjectId,
        plan: ObjectPlan,
        cache: Option<&SharedParticleCache>,
    ) -> Option<PreprocessOutcome> {
        self.filter_object_sized(rng, collector, object, plan, cache, None)
    }

    /// [`ParticlePreprocessor::filter_object`] with an optional particle
    /// count override — the degraded-evaluation path runs the same filter
    /// with fewer particles instead of a different algorithm.
    fn filter_object_sized<R: Rng, S: ReadingStore + ?Sized>(
        &self,
        rng: &mut R,
        collector: &S,
        object: ObjectId,
        mut plan: ObjectPlan,
        cache: Option<&SharedParticleCache>,
        particles_override: Option<usize>,
    ) -> Option<PreprocessOutcome> {
        let agg = collector.aggregated(object)?;
        let num_particles = particles_override.unwrap_or(self.config.num_particles);
        if let (Some(n), Some((states, _))) = (particles_override, plan.cached.as_mut()) {
            // A reduced-budget resume keeps (a deterministic prefix of)
            // the cached cloud rather than discarding the prior entirely.
            states.truncate(n);
        }

        if plan.cached.is_some() {
            self.metrics.cache_resumes.inc();
            self.metrics
                .resume_depth
                .observe(plan.resume_timestamp.saturating_sub(plan.agg_start));
        }
        let (mut filter, start, resumed) = match plan.cached {
            Some((states, t)) if t <= plan.tmin => {
                (ParticleFilter::from_states(states), t + 1, true)
            }
            Some((states, t)) => {
                // Cached states are already at/after tmin: reuse directly.
                let filter = ParticleFilter::from_states(states);
                return Some(self.finish(filter, t, true, 0));
            }
            None => {
                // Fresh start: seed within the second-most-recent device's
                // activation range at the first retained second (line 5).
                let seeds = seed_particles(
                    rng,
                    self.graph,
                    self.reader(plan.seed_device),
                    &self.config.motion,
                    num_particles,
                );
                (
                    ParticleFilter::from_states(seeds),
                    plan.agg_start + 1,
                    false,
                )
            }
        };

        // Main loop — lines 7..31.
        let mut simulated = 0u64;
        for tj in start..=plan.tmin {
            filter.predict(|s| self.config.motion.step(rng, self.graph, s, 1.0));
            simulated += 1;
            // Line 17: the aggregated reading entry of tj (None both when
            // the entry says "no detection" and beyond the retained
            // window).
            let reading = agg.entry_at(tj).flatten();
            if let Some(device) = reading {
                let reader = self.reader(device);
                let any_consistent = filter
                    .states()
                    .iter()
                    .any(|s| reader.covers(self.graph.point_of(s.pos)));
                if any_consistent {
                    filter.reweight(|s| self.config.measurement.likelihood(self.graph, s, reader));
                    filter.normalize();
                    let ess = filter.effective_sample_size();
                    self.metrics.ess.observe_f64(ess);
                    if ess < filter.len() as f64 * self.config.resample_threshold {
                        self.resample(rng, &mut filter);
                        self.metrics.resamples.inc();
                    }
                } else {
                    // Sensor reset: the reading contradicts every
                    // hypothesis (the cloud drifted the wrong way), so
                    // reweighting would be a no-op — reseed the whole set
                    // inside the detecting range instead. Standard
                    // kidnapped-robot recovery for low particle counts.
                    let n = filter.len();
                    let seeds = seed_particles(rng, self.graph, reader, &self.config.motion, n);
                    filter = ParticleFilter::from_states(seeds);
                    self.metrics.sensor_resets.inc();
                }
            } else if self.config.negative_evidence {
                // No reading this second ⇒ the object is outside every
                // activation range (per-second misses are ~impossible
                // after aggregation). Down-weight particles inside one.
                let mm = self.config.measurement;
                let mut any_inside = false;
                filter.reweight(|s| {
                    let pt = self.graph.point_of(s.pos);
                    if self.readers.iter().any(|r| r.covers(pt)) {
                        any_inside = true;
                        mm.low_weight
                    } else {
                        mm.high_weight
                    }
                });
                if any_inside {
                    filter.normalize();
                    // Resample only on real degeneracy to preserve
                    // hypothesis diversity during long silent stretches.
                    let ess = filter.effective_sample_size();
                    self.metrics.ess.observe_f64(ess);
                    if ess < filter.len() as f64 * self.config.resample_threshold {
                        self.resample(rng, &mut filter);
                        self.metrics.resamples.inc();
                    }
                }
            }
        }

        let timestamp = plan.tmin.max(start.saturating_sub(1));
        if let Some(c) = cache {
            c.store(
                object,
                filter.states().to_vec(),
                timestamp,
                plan.episode_key,
            );
        }
        Some(self.finish(filter, timestamp, resumed, simulated))
    }

    /// Runs Algorithm 2 for one object. Returns `None` when the collector
    /// has never seen the object (no readings → no inference possible).
    pub fn process_object<R: Rng, S: ReadingStore + ?Sized>(
        &self,
        rng: &mut R,
        collector: &S,
        object: ObjectId,
        now: u64,
        cache: Option<&mut ParticleCache>,
    ) -> Option<PreprocessOutcome> {
        let shared = cache.map(|c| c.shared());
        self.process_object_shared(rng, collector, object, now, shared)
    }

    /// [`ParticlePreprocessor::process_object`] against the internally
    /// synchronized cache, with a caller-supplied RNG.
    pub fn process_object_shared<R: Rng, S: ReadingStore + ?Sized>(
        &self,
        rng: &mut R,
        collector: &S,
        object: ObjectId,
        now: u64,
        cache: Option<&SharedParticleCache>,
    ) -> Option<PreprocessOutcome> {
        let plan = self.plan_object(collector, object, now, cache)?;
        self.filter_object(rng, collector, object, plan, cache)
    }

    /// Runs Algorithm 2 for one object on its own deterministic RNG
    /// stream, derived from `(pass_seed, object, resume timestamp)` — see
    /// [`derive_stream_seed`]. The result does not depend on what other
    /// objects were processed in the same pass.
    pub fn process_object_streamed<S: ReadingStore + ?Sized>(
        &self,
        pass_seed: u64,
        collector: &S,
        object: ObjectId,
        now: u64,
        cache: Option<&SharedParticleCache>,
    ) -> Option<PreprocessOutcome> {
        let plan = self.plan_object(collector, object, now, cache)?;
        let mut rng =
            StdRng::seed_from_u64(derive_stream_seed(pass_seed, object, plan.resume_timestamp));
        self.filter_object(&mut rng, collector, object, plan, cache)
    }

    /// Resamples, adapting the output size per KLD-sampling when enabled.
    fn resample<R: Rng>(&self, rng: &mut R, filter: &mut ParticleFilter<IndoorState>) {
        match self.config.adaptive {
            Some(cfg) => {
                let bins = cfg.occupied_bins(self.anchors, filter.states());
                filter.resample_to(rng, cfg.target_count(bins));
            }
            None => filter.resample(rng),
        }
    }

    fn finish(
        &self,
        filter: ParticleFilter<IndoorState>,
        timestamp: u64,
        resumed: bool,
        simulated: u64,
    ) -> PreprocessOutcome {
        self.metrics.objects.inc();
        self.metrics.sir_iterations.add(simulated);
        self.metrics.final_particles.observe(filter.len() as u64);
        // Lines 32–36: snap each particle to its nearest anchor point;
        // p(o at ap) = n/Ns.
        let n = filter.len() as f64;
        let particles = filter.into_states();
        let distribution = self.anchors.kde_distribution(
            particles.iter().map(|s| (s.pos, 1.0 / n)),
            self.config.kde_bandwidth,
        );
        PreprocessOutcome {
            distribution,
            particles,
            timestamp,
            resumed_from_cache: resumed,
            seconds_simulated: simulated,
        }
    }

    /// Runs Algorithm 2 for every candidate and assembles the `APtoObjHT`
    /// index consumed by query evaluation.
    ///
    /// Sequential, single-RNG-stream variant: every object consumes draws
    /// from the shared `rng`, so results depend on the candidate order.
    /// Kept for callers that thread one generator through everything; the
    /// facade and experiment harness use
    /// [`ParticlePreprocessor::process_streamed`].
    pub fn process<R: Rng, S: ReadingStore + ?Sized>(
        &self,
        rng: &mut R,
        collector: &S,
        candidates: &[ObjectId],
        now: u64,
        mut cache: Option<&mut ParticleCache>,
    ) -> AnchorObjectIndex<ObjectId> {
        let mut index = AnchorObjectIndex::new();
        for &o in candidates {
            if let Some(outcome) = self.process_object(rng, collector, o, now, cache.as_deref_mut())
            {
                index.set_object(o, outcome.distribution);
            }
        }
        index
    }

    /// Runs Algorithm 2 for every candidate on per-object RNG streams and
    /// assembles the `APtoObjHT` index, optionally fanning the candidates
    /// out over `parallelism` worker threads.
    ///
    /// `parallelism` of `None` (or `Some(0|1)`) runs on the calling
    /// thread. Any worker count produces bit-identical output: each
    /// object's draws come from its own stream (see
    /// [`derive_stream_seed`]), the shared cache is sharded per object
    /// with commutative statistics, and results are merged back in
    /// candidate order.
    pub fn process_streamed<S: ReadingStore + Sync + ?Sized>(
        &self,
        pass_seed: u64,
        collector: &S,
        candidates: &[ObjectId],
        now: u64,
        cache: Option<&SharedParticleCache>,
        parallelism: Option<usize>,
    ) -> AnchorObjectIndex<ObjectId> {
        self.process_supervised(
            pass_seed,
            collector,
            candidates,
            now,
            cache,
            parallelism,
            &SupervisionOptions::default(),
        )
        .index
    }

    /// The weakest answer the readings still support: a uniform
    /// distribution over the anchors inside the object's pruning circle
    /// (§4.3), centered at the last detecting reader with radius
    /// `activation_range + v_max · (now − t_last)`. `None` when the
    /// collector has never detected the object (or no anchors exist).
    fn fallback_distribution<S: ReadingStore + ?Sized>(
        &self,
        collector: &S,
        object: ObjectId,
        now: u64,
    ) -> Option<Vec<(AnchorId, f64)>> {
        let (reader, t_last) = collector.last_detection(object)?;
        let r = self.reader(reader);
        let center = r.position();
        // The motion model draws speeds from N(μ, σ²); μ + 3σ bounds the
        // population for the same purpose SystemConfig::max_speed serves
        // in query pruning.
        let v_max = self.config.motion.speed_mean + 3.0 * self.config.motion.speed_std;
        let radius = r.activation_range() + v_max * now.saturating_sub(t_last) as f64;
        let inside: Vec<AnchorId> = self
            .anchors
            .anchors()
            .iter()
            .filter(|a| a.point.distance(center) <= radius)
            .map(|a| a.id)
            .collect();
        let ids = if inside.is_empty() {
            // Degenerate circle (no anchor inside): the nearest anchor to
            // the reader carries all the mass.
            vec![self.anchors.nearest(r.graph_pos())]
        } else {
            inside
        };
        let mass = 1.0 / ids.len() as f64;
        Some(ids.into_iter().map(|a| (a, mass)).collect())
    }

    /// One supervised candidate: run the (possibly budget-reduced) filter
    /// under panic isolation with bounded retry, degrading to the uniform
    /// fallback when the filter is persistently poisoned. Returns the
    /// answered distribution and the level it was produced at.
    #[allow(clippy::too_many_arguments)]
    fn run_supervised_object<S: ReadingStore + Sync + ?Sized>(
        &self,
        pass_seed: u64,
        collector: &S,
        object: ObjectId,
        mut plan: Option<ObjectPlan>,
        level: DegradationLevel,
        now: u64,
        cache: Option<&SharedParticleCache>,
        options: &SupervisionOptions,
    ) -> Option<(Vec<(AnchorId, f64)>, DegradationLevel)> {
        if matches!(level, DegradationLevel::UniformFallback) {
            return self
                .fallback_distribution(collector, object, now)
                .map(|d| (d, level));
        }
        let particles_override = match level {
            DegradationLevel::ReducedParticles => Some(
                self.config
                    .adaptive
                    .unwrap_or_default()
                    .min_particles
                    .min(self.config.num_particles),
            ),
            _ => None,
        };
        let mut attempt = 0usize;
        loop {
            let p = match plan.take() {
                Some(p) => p,
                // Retry path: replan with the cache disabled, so the
                // filter reseeds from the last readings instead of
                // resuming whatever states the panicking run left behind.
                None => match self.plan_object(collector, object, now, None) {
                    Some(p) => p,
                    None => {
                        return self
                            .fallback_distribution(collector, object, now)
                            .map(|d| (d, DegradationLevel::Quarantined))
                    }
                },
            };
            let resume = p.resume_timestamp;
            let result = catch_unwind(AssertUnwindSafe(|| {
                if options.panic_object == Some(object) && attempt < options.panic_attempts {
                    // ripq-lint: allow(no-panic-paths) -- deliberate fault injection: the panic is the supervision test fixture, caught by this catch_unwind
                    panic!("injected particle-filter fault (attempt {attempt})");
                }
                let mut rng = StdRng::seed_from_u64(derive_stream_seed(pass_seed, object, resume));
                self.filter_object_sized(&mut rng, collector, object, p, cache, particles_override)
            }));
            match result {
                Ok(out) => return out.map(|o| (o.distribution, level)),
                Err(_) => {
                    self.recorder.add("degrade.pf_panics", 1);
                    // Whatever half-updated states the panicking attempt
                    // stored must not poison later passes.
                    if let Some(c) = cache {
                        c.invalidate(object);
                    }
                    if attempt >= options.retry_limit {
                        self.recorder.add("degrade.quarantined", 1);
                        return self
                            .fallback_distribution(collector, object, now)
                            .map(|d| (d, DegradationLevel::Quarantined));
                    }
                    self.recorder.add("degrade.retries", 1);
                    attempt += 1;
                }
            }
        }
    }

    /// [`ParticlePreprocessor::process_streamed`] with worker supervision
    /// and deadline budgeting — the crash-safe evaluation path.
    ///
    /// Three deterministic phases:
    ///
    /// 1. **Plan** (sequential, candidate order): lines 1–6 of Algorithm 2
    ///    plus the cache lookup for every candidate. All metric updates
    ///    commute, so planning everything up front is bit-identical to the
    ///    previous plan/filter interleaving.
    /// 2. **Budget** (sequential, candidate order): each object's filter
    ///    cost is `simulated seconds × particle count` — a logical-clock
    ///    model, so the ladder decisions are reproducible. Objects run
    ///    full-size while the budget lasts, then at the KLD floor, then
    ///    degrade to the uniform pruning-circle fallback.
    /// 3. **Filter** (fan-out over `parallelism` workers): each object
    ///    runs under `catch_unwind` isolation with bounded retry; a
    ///    persistently panicking object is quarantined with a fallback
    ///    answer instead of aborting the pass. Results merge in candidate
    ///    order, so any worker count stays bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn process_supervised<S: ReadingStore + Sync + ?Sized>(
        &self,
        pass_seed: u64,
        collector: &S,
        candidates: &[ObjectId],
        now: u64,
        cache: Option<&SharedParticleCache>,
        parallelism: Option<usize>,
        options: &SupervisionOptions,
    ) -> SupervisedOutput {
        let mut index = AnchorObjectIndex::new();
        let (degradation, _) = self.process_supervised_into(
            pass_seed,
            collector,
            candidates,
            now,
            cache,
            parallelism,
            options,
            &mut index,
        );
        SupervisedOutput { index, degradation }
    }

    /// [`ParticlePreprocessor::process_supervised`] applied as an
    /// *incremental* maintenance pass over a caller-owned `APtoObjHT`:
    /// objects that left the answered set are retracted, answered objects
    /// are applied as deltas ([`AnchorObjectIndex::apply_object`]), and a
    /// bit-identical stored distribution costs no structural work at all.
    /// Because per-anchor lists are kept sorted by object key, the index
    /// after any delta sequence equals a from-scratch rebuild of the same
    /// answer set — so this path returns exactly what
    /// [`ParticlePreprocessor::process_supervised`] would have built.
    ///
    /// Returns the per-object degradation levels plus the
    /// [`IndexDeltaStats`] of this pass (the `index.delta_*`
    /// observability family).
    #[allow(clippy::too_many_arguments)]
    pub fn process_supervised_into<S: ReadingStore + Sync + ?Sized>(
        &self,
        pass_seed: u64,
        collector: &S,
        candidates: &[ObjectId],
        now: u64,
        cache: Option<&SharedParticleCache>,
        parallelism: Option<usize>,
        options: &SupervisionOptions,
        index: &mut AnchorObjectIndex<ObjectId>,
    ) -> (BTreeMap<ObjectId, DegradationLevel>, IndexDeltaStats) {
        /// One answered candidate: its position in the candidate list (the
        /// merge key), the object, its distribution, and its level.
        type Answered = (usize, ObjectId, Vec<(AnchorId, f64)>, DegradationLevel);
        /// One queued candidate awaiting its supervised filter run.
        type Queued = (usize, ObjectId, Option<ObjectPlan>, DegradationLevel);

        // Phase 1: plan.
        let planned: Vec<(usize, ObjectId, ObjectPlan)> = candidates
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| {
                self.plan_object(collector, o, now, cache)
                    .map(|p| (i, o, p))
            })
            .collect();

        // Phase 2: budget ladder.
        let mut remaining = options.budget;
        let reduced_count = self
            .config
            .adaptive
            .unwrap_or_default()
            .min_particles
            .min(self.config.num_particles) as u64;
        let items: Vec<(usize, ObjectId, Option<ObjectPlan>, DegradationLevel)> = planned
            .into_iter()
            .map(|(i, o, plan)| {
                let level = match remaining.as_mut() {
                    None => DegradationLevel::Full,
                    Some(rem) => {
                        let secs = now.saturating_sub(plan.resume_timestamp).max(1);
                        let cost_full = secs.saturating_mul(self.config.num_particles as u64);
                        let cost_reduced = secs.saturating_mul(reduced_count);
                        if *rem >= cost_full {
                            *rem -= cost_full;
                            DegradationLevel::Full
                        } else if *rem >= cost_reduced {
                            *rem -= cost_reduced;
                            self.recorder.add("degrade.reduced", 1);
                            DegradationLevel::ReducedParticles
                        } else {
                            *rem = rem.saturating_sub(1);
                            self.recorder.add("degrade.fallback", 1);
                            self.recorder.add("degrade.budget_exhausted", 1);
                            DegradationLevel::UniformFallback
                        }
                    }
                };
                (i, o, Some(plan), level)
            })
            .collect();

        // Phase 3: supervised filtering.
        let workers = parallelism.unwrap_or(1).clamp(1, items.len().max(1));
        let mut results: Vec<Answered> = if workers <= 1 {
            items
                .into_iter()
                .filter_map(|(i, o, plan, level)| {
                    self.run_supervised_object(
                        pass_seed, collector, o, plan, level, now, cache, options,
                    )
                    .map(|(d, lv)| (i, o, d, lv))
                })
                .collect()
        } else {
            let slots: Vec<Mutex<Option<Queued>>> =
                items.into_iter().map(|it| Mutex::new(Some(it))).collect();
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<Answered>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local: Vec<Answered> = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= slots.len() {
                                    break;
                                }
                                let Some((idx, o, plan, level)) = slots[i].lock().take() else {
                                    continue;
                                };
                                if let Some((d, lv)) = self.run_supervised_object(
                                    pass_seed, collector, o, plan, level, now, cache, options,
                                ) {
                                    local.push((idx, o, d, lv));
                                }
                            }
                            collected.lock().extend(local);
                        })
                    })
                    .collect();
                for h in handles {
                    // Per-object panics are already caught inside
                    // run_supervised_object, so a worker thread dying is
                    // out of model; its unfinished objects would simply be
                    // absent from the merged answer set.
                    let _ = h.join();
                }
            });
            let mut merged = collected.into_inner();
            merged.sort_unstable_by_key(|&(i, _, _, _)| i);
            merged
        };

        // Incremental maintenance: retract objects that fell out of the
        // answered set (pruned away, vanished, never seen this pass),
        // then apply each answered distribution as a delta.
        let answered: BTreeSet<ObjectId> = results.iter().map(|&(_, o, _, _)| o).collect();
        let mut stats = IndexDeltaStats {
            retracted: index.retain_objects(|o| answered.contains(o)),
            ..IndexDeltaStats::default()
        };
        let mut degradation = BTreeMap::new();
        for (_, o, distribution, level) in results.drain(..) {
            match index.apply_object(o, distribution) {
                DeltaOutcome::Inserted | DeltaOutcome::Updated => stats.applied += 1,
                DeltaOutcome::Unchanged => stats.unchanged += 1,
            }
            degradation.insert(o, level);
        }
        (degradation, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;
    use ripq_rfid::{deploy_uniform, DataCollector};

    struct World {
        graph: WalkingGraph,
        anchors: AnchorSet,
        readers: Vec<Reader>,
    }

    fn world() -> World {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let readers = deploy_uniform(&plan, &graph, 19, 2.0);
        let _ = &plan;
        World {
            graph,
            anchors,
            readers,
        }
    }

    const O: ObjectId = ObjectId::new(0);

    /// Feeds the collector a synthetic walk past two adjacent readers on
    /// the same hallway, left to right.
    fn feed_two_reader_walk(w: &World, c: &mut DataCollector) -> (ReaderId, ReaderId, u64) {
        // Two readers on hallway 0 (same y), adjacent in deployment order.
        let (r1, r2) = {
            let mut found = None;
            for pair in w.readers.windows(2) {
                if (pair[0].position().y - pair[1].position().y).abs() < 1e-9 {
                    found = Some((pair[0], pair[1]));
                    break;
                }
            }
            found.expect("adjacent same-hallway readers exist")
        };
        let gap = r1.position().distance(r2.position());
        // Walk at 1 m/s from r1 to r2: in r1's range seconds 0..4,
        // silent while between, in r2's range near the end.
        let mut t = 0u64;
        let total_seconds = gap.ceil() as u64 + 4;
        for s in 0..=total_seconds {
            let x = r1.position().x - 2.0 + s as f64; // enters r1 range at t=0
            let p = ripq_geom::Point2::new(x, r1.position().y);
            if r1.covers(p) {
                c.ingest_second(s, &[(O, r1.id())]);
            } else if r2.covers(p) {
                c.ingest_second(s, &[(O, r2.id())]);
            } else {
                c.ingest_second(s, &[]);
            }
            t = s;
        }
        (r1.id(), r2.id(), t)
    }

    #[test]
    fn distribution_sums_to_one() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(20);
        let out = pre
            .process_object(&mut rng, &c, O, now, None)
            .expect("object known");
        let total: f64 = out.distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(!out.resumed_from_cache);
        assert_eq!(out.particles.len(), 64);
    }

    #[test]
    fn filter_learns_direction_after_two_readers() {
        // The Fig. 1 scenario: after d2 then d3 readings, mass should be
        // ahead of (or at) the second reader, not behind the first.
        let w = world();
        let mut c = DataCollector::new();
        let (r1, r2, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(21);
        let out = pre.process_object(&mut rng, &c, O, now, None).unwrap();
        let p1 = w.readers[r1.index()].position();
        let p2 = w.readers[r2.index()].position();
        // Probability mass closer to r2 than to r1:
        let mut near_r2 = 0.0;
        for &(a, p) in &out.distribution {
            let pt = w.anchors.anchor(a).point;
            if pt.distance(p2) < pt.distance(p1) {
                near_r2 += p;
            }
        }
        assert!(
            near_r2 > 0.7,
            "mass near the most recent reader should dominate, got {near_r2}"
        );
    }

    #[test]
    fn coast_cutoff_limits_simulation() {
        let w = world();
        let mut c = DataCollector::new();
        // One short detection, then a very long silence.
        c.ingest_second(0, &[(O, w.readers[0].id())]);
        for s in 1..=500 {
            c.ingest_second(s, &[]);
        }
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(22);
        let out = pre.process_object(&mut rng, &c, O, 500, None).unwrap();
        // td = 0, coast = 60 → at most 60 simulated seconds.
        assert!(out.seconds_simulated <= 60, "{}", out.seconds_simulated);
        assert_eq!(out.timestamp, 60);
    }

    #[test]
    fn cache_resume_skips_earlier_seconds() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut cache = ParticleCache::new();
        let mut rng = StdRng::seed_from_u64(23);
        let first = pre
            .process_object(&mut rng, &c, O, now, Some(&mut cache))
            .unwrap();
        assert!(!first.resumed_from_cache);
        // Advance the world a little with no new readings.
        let later = now + 5;
        for s in now + 1..=later {
            c.ingest_second(s, &[]);
        }
        let second = pre
            .process_object(&mut rng, &c, O, later, Some(&mut cache))
            .unwrap();
        assert!(second.resumed_from_cache);
        assert!(
            second.seconds_simulated <= 5,
            "resume should only simulate the delta, got {}",
            second.seconds_simulated
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cache_invalidated_by_new_device() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut cache = ParticleCache::new();
        let mut rng = StdRng::seed_from_u64(24);
        pre.process_object(&mut rng, &c, O, now, Some(&mut cache))
            .unwrap();
        // A brand-new reader episode starts.
        let other = w.readers[10].id();
        c.ingest_second(now + 1, &[(O, other)]);
        let out = pre
            .process_object(&mut rng, &c, O, now + 1, Some(&mut cache))
            .unwrap();
        assert!(!out.resumed_from_cache, "new device must invalidate");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn shared_cache_invalidated_when_new_device_detects_mid_resume() {
        // The §4.5 contract under a device handoff that happens *between*
        // cache resumes: fill the cache, resume it once (hit), then let a
        // brand-new device detect the object — the next pass must discard
        // the cached particles instead of resuming them.
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let recorder = ripq_obs::Recorder::enabled();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        )
        .with_recorder(&recorder);
        let cache = SharedParticleCache::new();

        let first = pre
            .process_object_streamed(11, &c, O, now, Some(&cache))
            .unwrap();
        assert!(!first.resumed_from_cache);

        // Mid-stream resume: silent seconds, same episode → cache hit.
        for s in now + 1..=now + 4 {
            c.ingest_second(s, &[]);
        }
        let resumed = pre
            .process_object_streamed(12, &c, O, now + 4, Some(&cache))
            .unwrap();
        assert!(resumed.resumed_from_cache);

        // A new device detects the object before the next resume.
        let other = w.readers[10].id();
        c.ingest_second(now + 5, &[(O, other)]);
        let after = pre
            .process_object_streamed(13, &c, O, now + 5, Some(&cache))
            .unwrap();
        assert!(!after.resumed_from_cache, "new device must invalidate");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().invalidations, 1);
        // A handoff to a *different* device is not an outage reset.
        let counters = recorder.snapshot().counters;
        assert_eq!(counters.get("pf.outage_resets"), Some(&0));
    }

    #[test]
    fn same_device_episode_split_counts_as_outage_reset() {
        let w = world();
        let mut c = DataCollector::new();
        let r = w.readers[2].id();
        for s in 0..3u64 {
            c.ingest_second(s, &[(O, r)]);
        }
        let recorder = ripq_obs::Recorder::enabled();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        )
        .with_recorder(&recorder);
        let cache = SharedParticleCache::new();
        pre.process_object_streamed(21, &c, O, 3, Some(&cache))
            .unwrap();

        // Dark stream past the gap tolerance, then the *same* reader
        // re-detects: a new episode of the same device.
        for s in 3..=9u64 {
            c.ingest_second(s, &[]);
        }
        c.ingest_second(10, &[(O, r)]);
        let out = pre
            .process_object_streamed(22, &c, O, 10, Some(&cache))
            .unwrap();
        assert!(!out.resumed_from_cache, "episode split must invalidate");
        let counters = recorder.snapshot().counters;
        assert_eq!(counters.get("pf.outage_resets"), Some(&1));
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn unknown_object_yields_none() {
        let w = world();
        let c = DataCollector::new();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(25);
        assert!(pre
            .process_object(&mut rng, &c, ObjectId::new(42), 10, None)
            .is_none());
        assert!(pre
            .process_object_streamed(7, &c, ObjectId::new(42), 10, None)
            .is_none());
    }

    #[test]
    fn process_builds_index_for_all_candidates() {
        let w = world();
        let mut c = DataCollector::new();
        let o2 = ObjectId::new(7);
        c.ingest_second(0, &[(O, w.readers[0].id()), (o2, w.readers[5].id())]);
        c.ingest_second(1, &[(O, w.readers[0].id()), (o2, w.readers[5].id())]);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(26);
        let index = pre.process(&mut rng, &c, &[O, o2, ObjectId::new(99)], 5, None);
        assert_eq!(index.object_count(), 2, "unknown candidate skipped");
        assert!((index.total_probability(&O) - 1.0).abs() < 1e-9);
        assert!((index.total_probability(&o2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_reading_object_still_processable() {
        // Only one device has ever seen the object — Algorithm 2 "still
        // runs, although one device's readings alone can hardly determine
        // the object's moving direction".
        let w = world();
        let mut c = DataCollector::new();
        c.ingest_second(0, &[(O, w.readers[3].id())]);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(27);
        let out = pre.process_object(&mut rng, &c, O, 3, None).unwrap();
        let total: f64 = out.distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Mass is spread around reader 3 within ~3 s of walking.
        let rp = w.readers[3].position();
        for &(a, _) in &out.distribution {
            let d = w.anchors.anchor(a).point.distance(rp);
            assert!(d < 2.0 + 3.0 * 1.5 + 3.0, "anchor too far: {d}");
        }
    }

    #[test]
    fn adaptive_particles_shrink_when_confined() {
        // A freshly observed object is confined to one activation range
        // (few anchor bins): KLD-sampling drops the particle count toward
        // the minimum, while the fixed-size filter keeps 64.
        let w = world();
        let mut c = DataCollector::new();
        for s in 0..6u64 {
            c.ingest_second(s, &[(O, w.readers[4].id())]);
        }
        let cfg = PreprocessorConfig {
            adaptive: Some(crate::KldConfig::default()),
            ..Default::default()
        };
        let pre = ParticlePreprocessor::new(&w.graph, &w.anchors, &w.readers, cfg);
        let mut rng = StdRng::seed_from_u64(30);
        let out = pre.process_object(&mut rng, &c, O, 6, None).unwrap();
        assert!(
            out.particles.len() < 64,
            "confined cloud should shrink, kept {}",
            out.particles.len()
        );
        let total: f64 = out.distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = world();
        let mut c = DataCollector::new();
        let (_, _, now) = feed_two_reader_walk(&w, &mut c);
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let out1 = pre
            .process_object(&mut StdRng::seed_from_u64(42), &c, O, now, None)
            .unwrap();
        let out2 = pre
            .process_object(&mut StdRng::seed_from_u64(42), &c, O, now, None)
            .unwrap();
        assert_eq!(out1.distribution, out2.distribution);
    }

    #[test]
    fn stream_seeds_separate_objects_passes_and_resume_points() {
        let o1 = ObjectId::new(1);
        let o2 = ObjectId::new(2);
        assert_eq!(derive_stream_seed(5, o1, 10), derive_stream_seed(5, o1, 10));
        assert_ne!(derive_stream_seed(5, o1, 10), derive_stream_seed(5, o2, 10));
        assert_ne!(derive_stream_seed(5, o1, 10), derive_stream_seed(6, o1, 10));
        assert_ne!(derive_stream_seed(5, o1, 10), derive_stream_seed(5, o1, 11));
    }

    #[test]
    fn streamed_result_is_independent_of_candidate_order() {
        let w = world();
        let mut c = DataCollector::new();
        let o2 = ObjectId::new(7);
        for s in 0..4u64 {
            c.ingest_second(s, &[(O, w.readers[0].id()), (o2, w.readers[5].id())]);
        }
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let fwd = pre.process_streamed(99, &c, &[O, o2], 6, None, None);
        let rev = pre.process_streamed(99, &c, &[o2, O], 6, None, None);
        assert_eq!(fwd.distribution(&O), rev.distribution(&O));
        assert_eq!(fwd.distribution(&o2), rev.distribution(&o2));
    }

    /// A collector with `n` objects walking past distinct readers.
    fn populated_collector(w: &World, n: u32) -> DataCollector {
        let mut c = DataCollector::new();
        for s in 0..6u64 {
            let det: Vec<_> = (0..n)
                .map(|i| {
                    (
                        ObjectId::new(i),
                        w.readers[i as usize % w.readers.len()].id(),
                    )
                })
                .collect();
            c.ingest_second(s, &det);
        }
        c
    }

    #[test]
    fn supervised_default_matches_streamed_bit_for_bit() {
        let w = world();
        let c = populated_collector(&w, 10);
        let objects: Vec<ObjectId> = (0..10u32).map(ObjectId::new).collect();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let a_cache = SharedParticleCache::new();
        let a = pre.process_streamed(77, &c, &objects, 8, Some(&a_cache), Some(2));
        let b_cache = SharedParticleCache::new();
        let b = pre.process_supervised(
            77,
            &c,
            &objects,
            8,
            Some(&b_cache),
            Some(2),
            &SupervisionOptions::default(),
        );
        for o in &objects {
            assert_eq!(a.distribution(o), b.index.distribution(o));
            assert_eq!(b.degradation.get(o), Some(&DegradationLevel::Full));
        }
        assert_eq!(a_cache.stats(), b_cache.stats());
    }

    #[test]
    fn incremental_index_pass_equals_fresh_rebuild() {
        let w = world();
        let c = populated_collector(&w, 5);
        let objects: Vec<ObjectId> = (0..5u32).map(ObjectId::new).collect();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let opts = SupervisionOptions::default();

        // Pass 1 on an empty live index: everything is an insert.
        let mut live = AnchorObjectIndex::new();
        let (_, s1) =
            pre.process_supervised_into(31, &c, &objects, 8, None, None, &opts, &mut live);
        assert_eq!(s1.applied, 5);
        assert_eq!(s1.retracted, 0);
        let fresh1 = pre
            .process_supervised(31, &c, &objects, 8, None, None, &opts)
            .index;
        assert_eq!(live, fresh1, "first pass equals a rebuild");

        // Pass 2 with a shrunk candidate set and a different seed: the two
        // dropped objects are retracted, the rest are updated in place —
        // and the maintained index still equals the fresh build.
        let keep = &objects[..3];
        let (_, s2) = pre.process_supervised_into(32, &c, keep, 9, None, None, &opts, &mut live);
        assert_eq!(s2.retracted, 2);
        assert_eq!(s2.applied + s2.unchanged, 3);
        let fresh2 = pre
            .process_supervised(32, &c, keep, 9, None, None, &opts)
            .index;
        assert_eq!(live, fresh2, "incremental pass equals a rebuild");

        // Replaying the identical pass is all no-ops.
        let (_, s3) = pre.process_supervised_into(32, &c, keep, 9, None, None, &opts, &mut live);
        assert_eq!(s3.unchanged, 3);
        assert_eq!(s3.applied, 0);
        assert_eq!(s3.retracted, 0);
        assert_eq!(live, fresh2);
    }

    #[test]
    fn panicking_object_is_retried_then_recovers() {
        let w = world();
        let c = populated_collector(&w, 4);
        let objects: Vec<ObjectId> = (0..4u32).map(ObjectId::new).collect();
        let recorder = ripq_obs::Recorder::enabled();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        )
        .with_recorder(&recorder);
        let victim = ObjectId::new(2);
        let out = pre.process_supervised(
            5,
            &c,
            &objects,
            8,
            None,
            None,
            &SupervisionOptions {
                panic_object: Some(victim),
                panic_attempts: 1,
                ..Default::default()
            },
        );
        // One panic, one successful retry: the object still gets a full
        // answer and nobody else is affected.
        assert_eq!(out.degradation.get(&victim), Some(&DegradationLevel::Full));
        assert_eq!(out.index.object_count(), 4);
        let counters = recorder.snapshot().counters;
        assert_eq!(counters.get("degrade.pf_panics"), Some(&1));
        assert_eq!(counters.get("degrade.retries"), Some(&1));
        assert_eq!(counters.get("degrade.quarantined"), None);
    }

    #[test]
    fn persistently_panicking_object_is_quarantined_with_fallback() {
        let w = world();
        let c = populated_collector(&w, 4);
        let objects: Vec<ObjectId> = (0..4u32).map(ObjectId::new).collect();
        let recorder = ripq_obs::Recorder::enabled();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        )
        .with_recorder(&recorder);
        let victim = ObjectId::new(1);
        for workers in [1usize, 3] {
            let out = pre.process_supervised(
                6,
                &c,
                &objects,
                8,
                Some(&SharedParticleCache::new()),
                Some(workers),
                &SupervisionOptions {
                    panic_object: Some(victim),
                    panic_attempts: usize::MAX,
                    ..Default::default()
                },
            );
            assert_eq!(
                out.degradation.get(&victim),
                Some(&DegradationLevel::Quarantined),
                "at {workers} workers"
            );
            // The quarantined answer is still a proper distribution...
            let total: f64 = out.index.total_probability(&victim);
            assert!((total - 1.0).abs() < 1e-9, "total {total}");
            // ...and the healthy objects got full answers.
            for o in objects.iter().filter(|&&o| o != victim) {
                assert_eq!(out.degradation.get(o), Some(&DegradationLevel::Full));
            }
        }
        let counters = recorder.snapshot().counters;
        assert_eq!(counters.get("degrade.quarantined"), Some(&2));
    }

    #[test]
    fn budget_ladder_degrades_later_objects_deterministically() {
        let w = world();
        let c = populated_collector(&w, 6);
        let objects: Vec<ObjectId> = (0..6u32).map(ObjectId::new).collect();
        let recorder = ripq_obs::Recorder::enabled();
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        )
        .with_recorder(&recorder);
        // Each object costs ~(8-0)·64 = 512 full / 8·16 = 128 reduced.
        // 700 buys one full run, one reduced run, then fallbacks.
        let opts = SupervisionOptions {
            budget: Some(700),
            ..Default::default()
        };
        let run = |workers| pre.process_supervised(9, &c, &objects, 8, None, Some(workers), &opts);
        let out = run(1);
        let levels: Vec<DegradationLevel> = objects.iter().map(|o| out.degradation[o]).collect();
        assert_eq!(levels[0], DegradationLevel::Full);
        assert_eq!(levels[1], DegradationLevel::ReducedParticles);
        assert!(levels[2..]
            .iter()
            .all(|&l| l == DegradationLevel::UniformFallback));
        // Every answer is still a distribution.
        for o in &objects {
            let total: f64 = out.index.total_probability(o);
            assert!((total - 1.0).abs() < 1e-9);
        }
        // Same budget, more workers: identical ladder and answers.
        let par = run(4);
        for o in &objects {
            assert_eq!(out.degradation.get(o), par.degradation.get(o));
            assert_eq!(out.index.distribution(o), par.index.distribution(o));
        }
        let counters = recorder.snapshot().counters;
        assert_eq!(counters.get("degrade.reduced"), Some(&2));
        assert_eq!(counters.get("degrade.fallback"), Some(&8));
        assert_eq!(counters.get("degrade.budget_exhausted"), Some(&8));
    }

    #[test]
    fn degradation_levels_order_worst_last() {
        assert!(DegradationLevel::Full < DegradationLevel::ReducedParticles);
        assert!(DegradationLevel::ReducedParticles < DegradationLevel::UniformFallback);
        assert!(DegradationLevel::UniformFallback < DegradationLevel::Quarantined);
        assert_eq!(
            DegradationLevel::ReducedParticles.to_string(),
            "reduced-particles"
        );
    }

    #[test]
    fn fallback_distribution_stays_near_last_reader() {
        let w = world();
        let mut c = DataCollector::new();
        let r = &w.readers[6];
        for s in 0..3u64 {
            c.ingest_second(s, &[(O, r.id())]);
        }
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let out = pre.process_supervised(
            3,
            &c,
            &[O],
            4,
            None,
            None,
            &SupervisionOptions {
                budget: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(
            out.degradation.get(&O),
            Some(&DegradationLevel::UniformFallback)
        );
        let dist = out.index.distribution(&O).unwrap();
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // now=4, t_last=2 → radius = 2.0 + (1.0+0.3)·2 = 4.6.
        for &(a, _) in dist {
            let d = w.anchors.anchor(a).point.distance(r.position());
            assert!(d <= 4.6 + 1e-9, "anchor {a} at distance {d} outside circle");
        }
    }

    #[test]
    fn parallel_process_matches_sequential_bit_for_bit() {
        let w = world();
        let mut c = DataCollector::new();
        let objects: Vec<ObjectId> = (0..12u32).map(ObjectId::new).collect();
        for s in 0..6u64 {
            let det: Vec<_> = objects
                .iter()
                .enumerate()
                .map(|(i, &o)| (o, w.readers[i % w.readers.len()].id()))
                .collect();
            c.ingest_second(s, &det);
        }
        let pre = ParticlePreprocessor::new(
            &w.graph,
            &w.anchors,
            &w.readers,
            PreprocessorConfig::default(),
        );
        let seq_cache = SharedParticleCache::new();
        let sequential = pre.process_streamed(1234, &c, &objects, 8, Some(&seq_cache), None);
        for workers in [1usize, 2, 4] {
            let par_cache = SharedParticleCache::new();
            let parallel =
                pre.process_streamed(1234, &c, &objects, 8, Some(&par_cache), Some(workers));
            for o in &objects {
                assert_eq!(
                    sequential.distribution(o),
                    parallel.distribution(o),
                    "distribution of {o} differs at {workers} workers"
                );
            }
            assert_eq!(seq_cache.stats(), par_cache.stats());
            assert_eq!(seq_cache.len(), par_cache.len());
        }
    }
}
