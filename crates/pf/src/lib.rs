//! # ripq-pf — particle filtering for indoor location inference
//!
//! Implements the paper's core technique (§3.1, §4.4, §4.5):
//!
//! * [`ParticleFilter`] — a generic Sampling Importance Resampling (SIR)
//!   filter over any state type: predict / reweight / resample, with the
//!   paper's Algorithm 1 (systematic resampling) in [`resample_indices`].
//! * [`IndoorState`], [`MotionModel`], [`MeasurementModel`] — the paper's
//!   object motion model ("objects move forward with constant speeds, and
//!   can either enter rooms or continue to move along hallways"; speeds
//!   drawn from N(1 m/s, 0.1); room-stay probability 0.9/s; random
//!   direction at intersections) and binary in-range/out-of-range device
//!   sensing weights.
//! * [`ParticlePreprocessor`] — Algorithm 2: replay an object's aggregated
//!   readings through the filter, coast at most 60 s beyond the last
//!   reading, then snap the cloud onto anchor points to fill the
//!   `APtoObjHT` index.
//! * [`ParticleCache`] — the cache management module (§4.5): store particle
//!   states per object and resume filtering from the cached timestamp;
//!   entries are invalidated as soon as a new device detects the object.
//!
//! # Example: the generic SIR filter
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use ripq_pf::ParticleFilter;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // Track a scalar position with a noisy "near 5.0" observation.
//! let mut filter = ParticleFilter::init(256, {
//!     let mut x = 0.0;
//!     move || {
//!         x += 0.05;
//!         x
//!     }
//! });
//! filter.reweight(|&x: &f64| (-(x - 5.0) * (x - 5.0)).exp());
//! filter.normalize();
//! filter.resample(&mut rng);
//! let mean: f64 = filter.states().iter().sum::<f64>() / filter.len() as f64;
//! assert!((mean - 5.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod cache;
mod measurement;
mod motion;
mod preprocess;
mod seed;
mod sir;
mod state;
mod trajectory;

pub use adaptive::KldConfig;
pub use cache::{CacheStats, EpisodeKey, ParticleCache, SharedParticleCache};
pub use measurement::MeasurementModel;
pub use motion::MotionModel;
pub use preprocess::{
    derive_stream_seed, DegradationLevel, ParticlePreprocessor, PreprocessOutcome,
    PreprocessorConfig, SupervisedOutput, SupervisionOptions,
};
pub use seed::{seed_intervals, seed_particles};
pub use sir::{resample_indices, resample_indices_n, ParticleFilter};
pub use state::{Heading, IndoorState};
pub use trajectory::{reconstruct_trajectory, TrajectoryConfig, TrajectoryPoint};
