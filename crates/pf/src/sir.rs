//! Generic Sampling Importance Resampling (SIR) particle filter.
//!
//! The SIR filter (Gordon et al. [5], reviewed in §3.1 of the paper)
//! approximates the posterior pdf `p(x_k | z_1:k)` by a weighted particle
//! set. Each cycle: particles propagate through the system model
//! (Equation 3), weights multiply by the observation likelihood
//! (Equation 4), and the set is resampled (Algorithm 1) to fight weight
//! degeneration.

use rand::Rng;

/// Systematic resampling — **Algorithm 1** of the paper.
///
/// Given normalized weights, draws one uniform starting point
/// `u₁ ~ U[0, 1/Ns]` and selects `Ns` comb positions `u_j = u₁ + (j-1)/Ns`
/// against the weight CDF. Returns the index of the parent particle chosen
/// for each of the `Ns` output slots.
///
/// Properties: low-variance, O(Ns), preserves particle order, and a
/// particle with weight `w` is chosen `⌊w·Ns⌋` or `⌈w·Ns⌉` times.
pub fn resample_indices<R: Rng>(rng: &mut R, weights: &[f64]) -> Vec<usize> {
    resample_indices_n(rng, weights, weights.len())
}

/// Systematic resampling drawing `n` output slots (generalization of
/// [`resample_indices`] used by KLD-adaptive resampling, where the output
/// set size differs from the input's).
pub fn resample_indices_n<R: Rng>(rng: &mut R, weights: &[f64], n: usize) -> Vec<usize> {
    let ns = weights.len();
    assert!(ns > 0, "cannot resample an empty particle set");
    assert!(n > 0, "must draw at least one particle");
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must not all be zero");
    let u1: f64 = rng.random_range(0.0..1.0 / n as f64);

    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    let mut c = weights[0] / total;
    for j in 0..n {
        let uj = u1 + j as f64 / n as f64;
        while uj > c && i + 1 < ns {
            i += 1;
            c += weights[i] / total;
        }
        out.push(i);
    }
    out
}

/// A weighted particle set over an arbitrary state type `S`.
#[derive(Debug, Clone)]
pub struct ParticleFilter<S> {
    states: Vec<S>,
    weights: Vec<f64>,
}

impl<S: Clone> ParticleFilter<S> {
    /// Creates a filter with `n` particles drawn from `init`, all with
    /// equal weight `1/n`.
    pub fn init(n: usize, mut init: impl FnMut() -> S) -> Self {
        assert!(n > 0, "particle filter needs at least one particle");
        let states: Vec<S> = (0..n).map(|_| init()).collect();
        let weights = vec![1.0 / n as f64; n];
        ParticleFilter { states, weights }
    }

    /// Creates a filter from explicit states with equal weights (used when
    /// resuming from the particle cache).
    pub fn from_states(states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "particle filter needs particles");
        let n = states.len();
        ParticleFilter {
            states,
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// Number of particles (`Ns`).
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false (construction enforces non-emptiness); provided for
    /// API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The particle states.
    #[inline]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The (not necessarily normalized) weights.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Consumes the filter, returning its states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    /// Prediction step: applies the system model to every particle
    /// (Equation 3 — `x_k ~ p(x_k | x_{k-1})`).
    pub fn predict(&mut self, mut motion: impl FnMut(&mut S)) {
        for s in &mut self.states {
            motion(s);
        }
    }

    /// Update step: multiplies each weight by the observation likelihood
    /// (Equation 4 — `w_k ∝ w_{k-1} · p(z_k | x_k)`).
    pub fn reweight(&mut self, mut likelihood: impl FnMut(&S) -> f64) {
        for (s, w) in self.states.iter().zip(&mut self.weights) {
            *w *= likelihood(s);
        }
    }

    /// Normalizes weights to sum 1. If all weights collapsed to zero (an
    /// observation inconsistent with every hypothesis), resets to uniform
    /// and returns `false` so callers can react.
    pub fn normalize(&mut self) -> bool {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            let n = self.weights.len();
            self.weights.fill(1.0 / n as f64);
            return false;
        }
        for w in &mut self.weights {
            *w /= total;
        }
        true
    }

    /// Effective sample size `1 / Σ wᵢ²` of the normalized weights — the
    /// standard degeneracy diagnostic (§3.1: "with more iterations only a
    /// few particles would have dominant weights").
    pub fn effective_sample_size(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let sum_sq: f64 = self.weights.iter().map(|w| (w / total) * (w / total)).sum();
        if sum_sq <= 0.0 {
            0.0
        } else {
            1.0 / sum_sq
        }
    }

    /// Resampling step (Algorithm 1): replaces the set with `Ns` draws
    /// proportional to weight and resets weights to `1/Ns`.
    pub fn resample<R: Rng>(&mut self, rng: &mut R) {
        let n = self.len();
        self.resample_to(rng, n);
    }

    /// Resampling to an explicit output size `n` (KLD-adaptive callers
    /// shrink or grow the set based on posterior spread).
    pub fn resample_to<R: Rng>(&mut self, rng: &mut R, n: usize) {
        let idx = resample_indices_n(rng, &self.weights, n);
        let new_states: Vec<S> = idx.into_iter().map(|i| self.states[i].clone()).collect();
        self.states = new_states;
        self.weights = vec![1.0 / n as f64; n];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn init_uniform_weights() {
        let pf = ParticleFilter::init(4, || 1.0f64);
        assert_eq!(pf.len(), 4);
        assert!(pf.weights().iter().all(|&w| (w - 0.25).abs() < 1e-12));
        assert!((pf.effective_sample_size() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reweight_and_normalize() {
        let mut pf = ParticleFilter::init(4, || 0usize);
        // Give particle states distinct ids via predict.
        let mut k = 0;
        pf.predict(|s| {
            *s = k;
            k += 1;
        });
        pf.reweight(|&s| if s == 2 { 1.0 } else { 0.0 });
        assert!(pf.normalize());
        assert_eq!(pf.weights()[2], 1.0);
        assert!((pf.effective_sample_size() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_handles_total_collapse() {
        let mut pf = ParticleFilter::init(5, || 0u8);
        pf.reweight(|_| 0.0);
        assert!(!pf.normalize(), "collapse reported");
        assert!(pf.weights().iter().all(|&w| (w - 0.2).abs() < 1e-12));
    }

    #[test]
    fn resample_concentrates_on_heavy_particle() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pf = ParticleFilter::init(100, || 0usize);
        let mut k = 0;
        pf.predict(|s| {
            *s = k;
            k += 1;
        });
        // Particle 7 gets (almost) all the weight.
        pf.reweight(|&s| if s == 7 { 1.0 } else { 1e-12 });
        pf.normalize();
        pf.resample(&mut rng);
        let sevens = pf.states().iter().filter(|&&s| s == 7).count();
        assert!(sevens >= 99, "expected near-total takeover, got {sevens}");
        // Weights reset to uniform.
        assert!(pf.weights().iter().all(|&w| (w - 0.01).abs() < 1e-12));
    }

    #[test]
    fn systematic_resampling_proportionality() {
        let mut rng = StdRng::seed_from_u64(2);
        // Weights 0.5, 0.3, 0.2 over 10 slots → counts 5, 3, 2.
        let idx = resample_indices(
            &mut rng,
            &[0.5, 0.3, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        );
        let count = |v: usize| idx.iter().filter(|&&i| i == v).count();
        assert_eq!(idx.len(), 10);
        assert_eq!(count(0), 5);
        assert_eq!(count(1), 3);
        assert_eq!(count(2), 2);
    }

    #[test]
    fn resample_preserves_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = resample_indices(&mut rng, &[0.25; 8]);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(idx, sorted, "systematic resampling is order-preserving");
    }

    #[test]
    fn resample_to_changes_set_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut pf = ParticleFilter::init(10, || 0usize);
        let mut k = 0;
        pf.predict(|s| {
            *s = k;
            k += 1;
        });
        pf.resample_to(&mut rng, 25);
        assert_eq!(pf.len(), 25);
        assert!(pf.weights().iter().all(|&w| (w - 0.04).abs() < 1e-12));
        pf.resample_to(&mut rng, 5);
        assert_eq!(pf.len(), 5);
    }

    proptest! {
        #[test]
        fn resample_counts_within_one_of_expectation(
            seed in 0u64..1000,
            raw in proptest::collection::vec(0.01f64..10.0, 2..40),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let total: f64 = raw.iter().sum();
            let idx = resample_indices(&mut rng, &raw);
            prop_assert_eq!(idx.len(), raw.len());
            let ns = raw.len() as f64;
            for (i, w) in raw.iter().enumerate() {
                let expected = w / total * ns;
                let got = idx.iter().filter(|&&j| j == i).count() as f64;
                prop_assert!(
                    got >= expected.floor() - 1e-9 && got <= expected.ceil() + 1e-9,
                    "particle {} with expectation {} chosen {} times", i, expected, got
                );
            }
        }

        #[test]
        fn ess_between_one_and_n(
            raw in proptest::collection::vec(0.0f64..5.0, 1..50),
        ) {
            prop_assume!(raw.iter().sum::<f64>() > 0.0);
            let mut pf = ParticleFilter::init(raw.len(), || 0u8);
            let mut it = raw.iter();
            pf.reweight(|_| *it.next().expect("length matches"));
            let ess = pf.effective_sample_size();
            prop_assert!(ess >= 1.0 - 1e-9);
            prop_assert!(ess <= raw.len() as f64 + 1e-9);
        }
    }
}
