//! KLD-sampling: adaptive particle-set sizing (Fox, NIPS 2001).
//!
//! The paper picks a fixed `Ns ≈ 60` by sweeping Figure 11. KLD-sampling
//! instead bounds the approximation error against the true posterior: the
//! particle count is chosen so that, with probability `1 − δ`, the KL
//! divergence between the sample distribution and the posterior stays
//! below `ε`. The required count depends on `k`, the number of occupied
//! histogram bins — RIPQ uses anchor points as the bins, which matches the
//! system's own discretization.
//!
//! Effect: a cloud pinned inside one reader's range (few bins) keeps only
//! the minimum particle count; a cloud dispersed over many rooms grows
//! toward the maximum. The ablation benchmark quantifies the trade.

use crate::IndoorState;
use ripq_graph::AnchorSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// KLD-sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KldConfig {
    /// Lower bound on the particle count.
    pub min_particles: usize,
    /// Upper bound on the particle count.
    pub max_particles: usize,
    /// KL error bound `ε` between the sample set and the posterior,
    /// measured at anchor (1 m bin) granularity — the system's own
    /// resolution, so a quarter-nat default is already conservative.
    pub epsilon: f64,
    /// Upper `1 − δ` quantile of the standard normal (2.33 ⇒ δ = 0.01).
    pub z_delta: f64,
}

impl Default for KldConfig {
    fn default() -> Self {
        KldConfig {
            min_particles: 16,
            max_particles: 512,
            epsilon: 0.25,
            z_delta: 2.33,
        }
    }
}

impl KldConfig {
    /// The particle count KLD-sampling prescribes for `k` occupied bins:
    ///
    /// `n = (k−1)/(2ε) · (1 − 2/(9(k−1)) + √(2/(9(k−1))) · z)³`
    ///
    /// (the Wilson–Hilferty chi-square approximation), clamped to
    /// `[min_particles, max_particles]`.
    pub fn target_count(&self, occupied_bins: usize) -> usize {
        if occupied_bins <= 1 {
            return self.min_particles;
        }
        let k1 = (occupied_bins - 1) as f64;
        let a = 2.0 / (9.0 * k1);
        let n = k1 / (2.0 * self.epsilon) * (1.0 - a + a.sqrt() * self.z_delta).powi(3);
        (n.ceil() as usize).clamp(self.min_particles, self.max_particles)
    }

    /// Counts the occupied anchor bins of a particle set.
    pub fn occupied_bins(&self, anchors: &AnchorSet, states: &[IndoorState]) -> usize {
        let mut bins = HashSet::new();
        for s in states {
            bins.insert(anchors.nearest(s.pos));
        }
        bins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heading;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::{build_walking_graph, GraphPos};

    #[test]
    fn target_is_monotone_in_bins_and_clamped() {
        let cfg = KldConfig::default();
        assert_eq!(cfg.target_count(0), cfg.min_particles);
        assert_eq!(cfg.target_count(1), cfg.min_particles);
        let mut prev = 0;
        for k in [2usize, 4, 8, 16, 32, 64] {
            let n = cfg.target_count(k);
            assert!(n >= prev, "monotone: k={k}");
            assert!(n >= cfg.min_particles && n <= cfg.max_particles);
            prev = n;
        }
        // Huge spread saturates at the cap.
        assert_eq!(cfg.target_count(10_000), cfg.max_particles);
    }

    #[test]
    fn tighter_epsilon_needs_more_particles() {
        let loose = KldConfig {
            epsilon: 0.5,
            ..Default::default()
        };
        let tight = KldConfig {
            epsilon: 0.01,
            max_particles: 100_000,
            ..Default::default()
        };
        for k in [4usize, 16, 64] {
            assert!(tight.target_count(k) > loose.target_count(k));
        }
    }

    #[test]
    fn occupied_bins_counts_distinct_anchors() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let graph = build_walking_graph(&plan);
        let anchors = AnchorSet::generate(&graph, &plan, 1.0);
        let cfg = KldConfig::default();
        let e = graph
            .edges()
            .iter()
            .find(|e| e.length() > 10.0)
            .expect("long edge");
        // Ten particles at the same spot: one bin. Spread out: many bins.
        let same: Vec<IndoorState> = (0..10)
            .map(|_| IndoorState {
                pos: GraphPos::new(e.id, 1.0),
                heading: Heading::TowardB,
                speed: 1.0,
            })
            .collect();
        assert_eq!(cfg.occupied_bins(&anchors, &same), 1);
        let spread: Vec<IndoorState> = (0..10)
            .map(|i| IndoorState {
                pos: GraphPos::new(e.id, i as f64 + 0.4),
                heading: Heading::TowardB,
                speed: 1.0,
            })
            .collect();
        assert!(cfg.occupied_bins(&anchors, &spread) >= 8);
    }
}
