//! Particle state on the walking graph.

use ripq_graph::{GraphPos, WalkingGraph};
use serde::{Deserialize, Serialize};

/// Travel direction along an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Heading {
    /// Moving toward the edge's `a` node (decreasing offset).
    TowardA,
    /// Moving toward the edge's `b` node (increasing offset).
    TowardB,
}

impl Heading {
    /// The opposite heading.
    #[inline]
    pub fn flipped(self) -> Heading {
        match self {
            Heading::TowardA => Heading::TowardB,
            Heading::TowardB => Heading::TowardA,
        }
    }
}

/// One particle hypothesis: "each particle represents a hypothesis of the
/// person's state with its own location, moving direction, and speed"
/// (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndoorState {
    /// Position on the walking graph.
    pub pos: GraphPos,
    /// Travel direction along the current edge.
    pub heading: Heading,
    /// Walking speed in m/s, constant for the particle's lifetime ("the
    /// object motion model assumes objects move forward with constant
    /// speeds", §3.1).
    pub speed: f64,
}

impl IndoorState {
    /// The node this particle is moving toward.
    pub fn target_node(&self, graph: &WalkingGraph) -> ripq_graph::NodeId {
        let e = graph.edge(self.pos.edge);
        match self.heading {
            Heading::TowardA => e.a,
            Heading::TowardB => e.b,
        }
    }

    /// Remaining distance to the node this particle is moving toward.
    pub fn distance_to_target(&self, graph: &WalkingGraph) -> f64 {
        let e = graph.edge(self.pos.edge);
        match self.heading {
            Heading::TowardA => self.pos.offset,
            Heading::TowardB => (e.length() - self.pos.offset).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;

    #[test]
    fn heading_flip() {
        assert_eq!(Heading::TowardA.flipped(), Heading::TowardB);
        assert_eq!(Heading::TowardB.flipped(), Heading::TowardA);
    }

    #[test]
    fn target_and_distance() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let e = &g.edges()[0];
        let len = e.length();
        let s = IndoorState {
            pos: GraphPos::new(e.id, len * 0.25),
            heading: Heading::TowardB,
            speed: 1.0,
        };
        assert_eq!(s.target_node(&g), e.b);
        assert!((s.distance_to_target(&g) - len * 0.75).abs() < 1e-9);
        let s2 = IndoorState {
            heading: Heading::TowardA,
            ..s
        };
        assert_eq!(s2.target_node(&g), e.a);
        assert!((s2.distance_to_target(&g) - len * 0.25).abs() < 1e-9);
    }
}
