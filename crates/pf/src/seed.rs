//! Initial particle placement inside a reader's activation range.
//!
//! Algorithm 2, line 5 / §3.2: "a set of particles are generated and
//! uniformly distributed on the graph edges within the detection range of
//! dᵢ, and each particle picks its own moving direction and speed."

use crate::{Heading, IndoorState, MotionModel};
use rand::Rng;
use ripq_geom::Segment;
use ripq_graph::{EdgeId, GraphPos, WalkingGraph};
use ripq_rfid::Reader;

/// The arc-length intervals of every edge that lie inside `reader`'s
/// activation disk, as `(edge, lo, hi)` offset ranges.
pub fn seed_intervals(graph: &WalkingGraph, reader: &Reader) -> Vec<(EdgeId, f64, f64)> {
    let c = reader.position();
    let r = reader.activation_range();
    let mut out = Vec::new();
    for e in graph.edges() {
        let pts = e.geometry.points();
        let mut cum = 0.0;
        for w in pts.windows(2) {
            let seg = Segment::new(w[0], w[1]);
            if let Some((lo, hi)) = seg.circle_overlap_interval(c, r) {
                if hi - lo > 1e-9 {
                    out.push((e.id, cum + lo, cum + hi));
                }
            }
            cum += seg.length();
        }
    }
    out
}

/// Draws `n` particles uniformly (by arc length) over the edge intervals
/// covered by `reader`, each with a random heading and a speed from the
/// motion model's Gaussian.
///
/// Falls back to the reader's own graph projection when the activation
/// disk covers no edge at all (pathological deployments), so callers
/// always receive `n` particles.
pub fn seed_particles<R: Rng>(
    rng: &mut R,
    graph: &WalkingGraph,
    reader: &Reader,
    motion: &MotionModel,
    n: usize,
) -> Vec<IndoorState> {
    let intervals = seed_intervals(graph, reader);
    let total: f64 = intervals.iter().map(|(_, lo, hi)| hi - lo).sum();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = if total > 1e-12 {
            let mut x = rng.random::<f64>() * total;
            let mut chosen = GraphPos::new(intervals[0].0, intervals[0].1);
            for &(e, lo, hi) in &intervals {
                let len = hi - lo;
                if x <= len {
                    chosen = GraphPos::new(e, lo + x);
                    break;
                }
                x -= len;
            }
            chosen
        } else {
            reader.graph_pos()
        };
        let heading = if rng.random::<bool>() {
            Heading::TowardA
        } else {
            Heading::TowardB
        };
        out.push(IndoorState {
            pos: graph.clamp_pos(pos),
            heading,
            speed: motion.sample_speed(rng),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_graph::build_walking_graph;
    use ripq_rfid::{deploy_uniform, ReaderId};

    fn setup() -> (WalkingGraph, Vec<Reader>) {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let g = build_walking_graph(&plan);
        let readers = deploy_uniform(&plan, &g, 19, 2.0);
        (g, readers)
    }

    #[test]
    fn intervals_cover_points_inside_disk_only() {
        let (g, readers) = setup();
        for reader in readers.iter().take(5) {
            let ivals = seed_intervals(&g, reader);
            assert!(!ivals.is_empty(), "reader {} covers no edge", reader.id());
            for (e, lo, hi) in ivals {
                assert!(lo < hi);
                for f in [0.0, 0.5, 1.0] {
                    let p = g.edge(e).point_at(lo + (hi - lo) * f);
                    assert!(
                        reader.position().distance(p) <= reader.activation_range() + 1e-6,
                        "interval point outside activation range"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_particles_inside_range() {
        let (g, readers) = setup();
        let mut rng = StdRng::seed_from_u64(12);
        let motion = MotionModel::default();
        let particles = seed_particles(&mut rng, &g, &readers[3], &motion, 256);
        assert_eq!(particles.len(), 256);
        for p in &particles {
            let pt = g.point_of(p.pos);
            assert!(readers[3].position().distance(pt) <= readers[3].activation_range() + 1e-6);
            assert!(p.speed > 0.0);
        }
    }

    #[test]
    fn seeded_headings_both_directions() {
        let (g, readers) = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let motion = MotionModel::default();
        let particles = seed_particles(&mut rng, &g, &readers[0], &motion, 200);
        let toward_a = particles
            .iter()
            .filter(|p| p.heading == Heading::TowardA)
            .count();
        assert!(
            toward_a > 50 && toward_a < 150,
            "headings unbalanced: {toward_a}"
        );
    }

    #[test]
    fn pathological_reader_falls_back_to_projection() {
        let (g, _) = setup();
        let mut rng = StdRng::seed_from_u64(14);
        let motion = MotionModel::default();
        // A reader far outside the building with a tiny range.
        let far = Reader::new(
            ReaderId::new(99),
            ripq_geom::Point2::new(-100.0, -100.0),
            g.project(ripq_geom::Point2::new(-100.0, -100.0)),
            0.01,
        );
        let particles = seed_particles(&mut rng, &g, &far, &motion, 8);
        assert_eq!(particles.len(), 8);
    }

    #[test]
    fn seeding_is_roughly_uniform_over_covered_length() {
        let (g, readers) = setup();
        let mut rng = StdRng::seed_from_u64(15);
        let motion = MotionModel::default();
        let reader = &readers[9];
        let ivals = seed_intervals(&g, reader);
        let total: f64 = ivals.iter().map(|(_, lo, hi)| hi - lo).sum();
        let n = 4000;
        let particles = seed_particles(&mut rng, &g, reader, &motion, n);
        // Count particles in each interval; expect proportional to length.
        for &(e, lo, hi) in &ivals {
            let count = particles
                .iter()
                .filter(|p| {
                    p.pos.edge == e && p.pos.offset >= lo - 1e-9 && p.pos.offset <= hi + 1e-9
                })
                .count();
            let expected = (hi - lo) / total * n as f64;
            assert!(
                (count as f64 - expected).abs() < expected.max(20.0),
                "interval got {count}, expected ~{expected}"
            );
        }
    }
}
