//! A minimal JSON codec for the wire protocol.
//!
//! The build is hermetic (no serde_json), so frames are parsed and
//! rendered by hand. Unlike the machine-written files the xtask auditor
//! reads, frame payloads arrive from the network, so this parser is
//! hardened: it never panics (no indexing, no unwrap), bounds recursion
//! with [`MAX_DEPTH`], and reports typed errors that the server turns
//! into protocol-level error frames without dropping the connection.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth a payload may use. Deeper documents are
/// rejected before recursion can exhaust the stack.
pub const MAX_DEPTH: u32 = 64;

/// A parsed JSON value. Object keys are name-ordered so traversal and
/// re-rendering are deterministic regardless of wire order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; protocol integers stay far inside
    /// f64's exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the payload.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

fn err(at: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        at,
        message: message.into(),
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(bytes: &[u8]) -> Result<Value, ParseError> {
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing garbage"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn starts_with_at(bytes: &[u8], pos: usize, word: &[u8]) -> bool {
    bytes.get(pos..pos + word.len()) == Some(word)
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, ParseError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') if starts_with_at(bytes, *pos, b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if starts_with_at(bytes, *pos, b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if starts_with_at(bytes, *pos, b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(&c) => Err(err(*pos, format!("unexpected `{}`", c as char))),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, ParseError> {
    expect_byte(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, ParseError> {
    expect_byte(bytes, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| err(*pos, "invalid UTF-8 in string"))
            }
            b'\\' => {
                let esc = bytes
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| err(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        // Protocol writers only escape BMP control
                        // characters, so no surrogate-pair handling; lone
                        // surrogates are rejected by from_u32.
                        let ch =
                            char::from_u32(code).ok_or_else(|| err(*pos, "bad \\u code point"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => {
                        return Err(err(
                            *pos,
                            format!("unsupported escape `\\{}`", other as char),
                        ))
                    }
                }
            }
            _ => out.push(b),
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    bytes
        .get(start..*pos)
        .and_then(|s| std::str::from_utf8(s).ok())
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| err(start, "bad number"))
}

/// Renders a value as compact JSON. Deterministic: object keys are
/// emitted in name order (they are stored sorted) and numbers render via
/// Rust's shortest-round-trip formatting.
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => render_f64(*n, out),
        Value::Str(s) => render_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Renders a finite f64 the way the transcript writers do (non-finite
/// values have no JSON spelling and render as `null`).
pub fn render_f64(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

/// Renders a JSON string literal with the escapes the parser accepts.
pub fn render_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = parse(
            br#"{"op":"reading","second":12,"readings":[[0,3],[1,7]],"x":-2.5,"ok":true,"none":null}"#,
        )
        .expect("parses");
        let obj = v.as_obj().unwrap();
        assert_eq!(obj["op"].as_str(), Some("reading"));
        assert_eq!(obj["second"].as_u64(), Some(12));
        assert_eq!(obj["x"].as_f64(), Some(-2.5));
        let rendered = render(&v);
        assert_eq!(parse(rendered.as_bytes()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage_with_positions() {
        assert!(parse(b"{").is_err());
        assert!(parse(b"{} trailing").is_err());
        assert!(parse(b"\"unterminated").is_err());
        assert!(parse(b"nul").is_err());
        assert!(parse(b"1e999").is_err(), "non-finite numbers rejected");
        assert!(parse(b"[1,]").is_err());
        let e = parse(b"  !").unwrap_err();
        assert_eq!(e.at, 2);
    }

    #[test]
    fn depth_limit_blocks_stack_exhaustion() {
        let deep: Vec<u8> = std::iter::repeat_n(b'[', 10_000)
            .chain(std::iter::repeat_n(b']', 10_000))
            .collect();
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("deep"));
        // Well inside the limit is fine.
        let ok = parse(b"[[[[[[[[[[1]]]]]]]]]]").unwrap();
        assert!(matches!(ok, Value::Arr(_)));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        let r = render(&v);
        assert_eq!(parse(r.as_bytes()).unwrap(), v);
        assert!(r.contains("\\u0001"));
    }
}
