//! The server's durable sidecar snapshot, `server.ckpt`.
//!
//! `system.ckpt` (written by `ripq-core`) restores the pipeline —
//! collector, cache, RNG, metrics — but deliberately not queries. The
//! daemon's own continuity lives here: how many transcript frames were
//! fully processed, how many response lines were emitted, the open
//! subscriptions with their maintained results (exact f64 bit patterns),
//! and the unseen-alert arming state. Together the two files let a
//! restarted server resume the delta stream byte-exactly where the
//! previous life checkpointed.

use crate::executor::ServerEvent;
use crate::supervisor::{BreakerState, DeadLetter};
use ripq_core::continuous::{SubscriptionKind, SubscriptionRegistry};
use ripq_core::ResultSet;
use ripq_geom::{Point2, Rect};
use ripq_persist::{
    load_snapshot, quarantine, seal_snapshot, write_atomic, ByteReader, ByteWriter, PersistError,
};
use ripq_rfid::ObjectId;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Sidecar format version. v2 appends the executor supervision section
/// (circuit-breaker states + dead-letter queue); v1 files still decode,
/// with those sections empty.
const VERSION: u8 = 2;

/// `<dir>/server.ckpt`.
pub fn sidecar_path(dir: &Path) -> PathBuf {
    dir.join("server.ckpt")
}

/// The server-side state a sidecar carries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SidecarState {
    /// Frames fully processed when the snapshot was taken. On resume the
    /// replay driver skips exactly this many transcript frames.
    pub frames_processed: u64,
    /// Response lines emitted so far — the offset into the golden output
    /// at which the resumed stream continues.
    pub lines_emitted: u64,
    /// The last tick second evaluated, if any.
    pub last_tick: Option<u64>,
    /// Objects whose unseen-alert already fired this silent episode.
    pub unseen_alerted: BTreeSet<ObjectId>,
    /// Open subscriptions: `(sub id, kind, maintained result)`, id-ordered.
    pub subscriptions: Vec<(u64, SubscriptionKind, ResultSet)>,
    /// Per-executor supervision state: `(name, consecutive failures,
    /// breaker)`, in executor registration order. v2+.
    pub executor_states: Vec<(String, u32, BreakerState)>,
    /// Undelivered events pending surfacing or drain, oldest first. v2+.
    pub dead_letters: Vec<DeadLetter>,
}

impl SidecarState {
    /// Captures the sidecar state from live server components.
    pub fn capture(
        frames_processed: u64,
        lines_emitted: u64,
        last_tick: Option<u64>,
        unseen_alerted: &BTreeSet<ObjectId>,
        registry: &SubscriptionRegistry,
        executor_states: Vec<(String, u32, BreakerState)>,
        dead_letters: Vec<DeadLetter>,
    ) -> Self {
        SidecarState {
            frames_processed,
            lines_emitted,
            last_tick,
            unseen_alerted: unseen_alerted.clone(),
            subscriptions: registry
                .iter()
                .map(|(id, s)| (id, s.kind, s.current().clone()))
                .collect(),
            executor_states,
            dead_letters,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(VERSION);
        w.put_u64(self.frames_processed);
        w.put_u64(self.lines_emitted);
        w.put_opt_u64(self.last_tick);
        w.put_seq_len(self.unseen_alerted.len());
        for o in &self.unseen_alerted {
            w.put_u32(o.raw());
        }
        w.put_seq_len(self.subscriptions.len());
        for (sub, kind, current) in &self.subscriptions {
            w.put_u64(*sub);
            match kind {
                SubscriptionKind::Range(r) => {
                    w.put_u8(0);
                    w.put_f64(r.min().x);
                    w.put_f64(r.min().y);
                    w.put_f64(r.width());
                    w.put_f64(r.height());
                }
                SubscriptionKind::Knn(point, k) => {
                    w.put_u8(1);
                    w.put_f64(point.x);
                    w.put_f64(point.y);
                    w.put_u64(*k as u64);
                }
            }
            w.put_seq_len(current.len());
            for (o, pr) in current.iter() {
                w.put_u32(o.raw());
                w.put_u64(pr.to_bits());
            }
        }
        w.put_seq_len(self.executor_states.len());
        for (name, failures, breaker) in &self.executor_states {
            w.put_str(name);
            w.put_u32(*failures);
            match breaker {
                // HalfOpen is transient and normalized to Closed on
                // restore, so it persists as Closed.
                BreakerState::Closed | BreakerState::HalfOpen => w.put_u8(0),
                BreakerState::Open { until_tick } => {
                    w.put_u8(1);
                    w.put_u64(*until_tick);
                }
            }
        }
        w.put_seq_len(self.dead_letters.len());
        for letter in &self.dead_letters {
            w.put_str(&letter.executor);
            match letter.event {
                ServerEvent::GeofenceEntered {
                    sub,
                    object,
                    second,
                } => {
                    w.put_u8(0);
                    w.put_u64(sub);
                    w.put_u32(object.raw());
                    w.put_u64(second);
                }
                ServerEvent::GeofenceLeft {
                    sub,
                    object,
                    second,
                } => {
                    w.put_u8(1);
                    w.put_u64(sub);
                    w.put_u32(object.raw());
                    w.put_u64(second);
                }
                ServerEvent::ObjectUnseen {
                    object,
                    second,
                    last_seen,
                } => {
                    w.put_u8(2);
                    w.put_u32(object.raw());
                    w.put_u64(second);
                    w.put_u64(last_seen);
                }
            }
            w.put_u64(letter.second);
            w.put_str(&letter.reason);
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new(payload);
        let version = r.get_u8()?;
        if version == 0 || version > VERSION {
            return Err(PersistError::Torn);
        }
        let frames_processed = r.get_u64()?;
        let lines_emitted = r.get_u64()?;
        let last_tick = r.get_opt_u64()?;
        let n_alerted = r.get_seq_len(4)?;
        let mut unseen_alerted = BTreeSet::new();
        for _ in 0..n_alerted {
            unseen_alerted.insert(ObjectId::new(r.get_u32()?));
        }
        let n_subs = r.get_seq_len(9)?;
        let mut subscriptions = Vec::with_capacity(n_subs);
        for _ in 0..n_subs {
            let sub = r.get_u64()?;
            let kind = match r.get_u8()? {
                0 => {
                    let x = r.get_f64()?;
                    let y = r.get_f64()?;
                    let w = r.get_f64()?;
                    let h = r.get_f64()?;
                    if !(w >= 0.0 && h >= 0.0) {
                        return Err(PersistError::Torn);
                    }
                    SubscriptionKind::Range(Rect::new(x, y, w, h))
                }
                1 => {
                    let x = r.get_f64()?;
                    let y = r.get_f64()?;
                    let k = r.get_u64()? as usize;
                    SubscriptionKind::Knn(Point2::new(x, y), k)
                }
                _ => return Err(PersistError::Torn),
            };
            let n_current = r.get_seq_len(12)?;
            let mut current = ResultSet::new();
            for _ in 0..n_current {
                let o = ObjectId::new(r.get_u32()?);
                current.set(o, f64::from_bits(r.get_u64()?));
            }
            subscriptions.push((sub, kind, current));
        }
        let mut executor_states = Vec::new();
        let mut dead_letters = Vec::new();
        if version >= 2 {
            let n_exec = r.get_seq_len(6)?;
            executor_states.reserve(n_exec);
            for _ in 0..n_exec {
                let name = r.get_str()?;
                let failures = r.get_u32()?;
                let breaker = match r.get_u8()? {
                    0 => BreakerState::Closed,
                    1 => BreakerState::Open {
                        until_tick: r.get_u64()?,
                    },
                    _ => return Err(PersistError::Torn),
                };
                executor_states.push((name, failures, breaker));
            }
            let n_letters = r.get_seq_len(15)?;
            dead_letters.reserve(n_letters);
            for _ in 0..n_letters {
                let executor = r.get_str()?;
                let event = match r.get_u8()? {
                    0 => ServerEvent::GeofenceEntered {
                        sub: r.get_u64()?,
                        object: ObjectId::new(r.get_u32()?),
                        second: r.get_u64()?,
                    },
                    1 => ServerEvent::GeofenceLeft {
                        sub: r.get_u64()?,
                        object: ObjectId::new(r.get_u32()?),
                        second: r.get_u64()?,
                    },
                    2 => ServerEvent::ObjectUnseen {
                        object: ObjectId::new(r.get_u32()?),
                        second: r.get_u64()?,
                        last_seen: r.get_u64()?,
                    },
                    _ => return Err(PersistError::Torn),
                };
                let second = r.get_u64()?;
                let reason = r.get_str()?;
                dead_letters.push(DeadLetter {
                    executor,
                    event,
                    second,
                    reason,
                });
            }
        }
        if r.remaining() != 0 {
            return Err(PersistError::Torn);
        }
        Ok(SidecarState {
            frames_processed,
            lines_emitted,
            last_tick,
            unseen_alerted,
            subscriptions,
            executor_states,
            dead_letters,
        })
    }

    /// Writes the sidecar atomically (temp file, fsync, rename) with the
    /// workspace's CRC-sealed snapshot framing.
    pub fn save(&self, dir: &Path) -> Result<(), PersistError> {
        let framed = seal_snapshot(&self.encode());
        write_atomic(&sidecar_path(dir), &framed)
    }

    /// Loads a sidecar. `Missing` and corruption flow through as
    /// [`PersistError`]s; callers quarantine via [`quarantine_sidecar`].
    pub fn load(dir: &Path) -> Result<Self, PersistError> {
        let payload = load_snapshot(&sidecar_path(dir))?;
        Self::decode(&payload)
    }
}

/// Moves a damaged sidecar aside (`server.ckpt.corrupt`), returning the
/// new path.
pub fn quarantine_sidecar(dir: &Path) -> Result<PathBuf, PersistError> {
    quarantine(&sidecar_path(dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ripq_server_ckpt_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SidecarState {
        let mut current = ResultSet::new();
        current.set(ObjectId::new(3), 0.625);
        current.set(ObjectId::new(9), 0.375);
        SidecarState {
            frames_processed: 41,
            lines_emitted: 107,
            last_tick: Some(30),
            unseen_alerted: [ObjectId::new(2)].into_iter().collect(),
            subscriptions: vec![
                (
                    1,
                    SubscriptionKind::Range(Rect::new(0.0, 1.0, 8.0, 4.0)),
                    current,
                ),
                (
                    5,
                    SubscriptionKind::Knn(Point2::new(2.5, 3.5), 2),
                    ResultSet::new(),
                ),
            ],
            executor_states: vec![
                ("frames".to_string(), 0, BreakerState::Closed),
                ("ack".to_string(), 3, BreakerState::Open { until_tick: 42 }),
            ],
            dead_letters: vec![
                DeadLetter {
                    executor: "ack".to_string(),
                    event: ServerEvent::GeofenceEntered {
                        sub: 1,
                        object: ObjectId::new(3),
                        second: 30,
                    },
                    second: 30,
                    reason: "panic: ack wedged".to_string(),
                },
                DeadLetter {
                    executor: "ack".to_string(),
                    event: ServerEvent::ObjectUnseen {
                        object: ObjectId::new(2),
                        second: 31,
                        last_seen: 12,
                    },
                    second: 31,
                    reason: "circuit open until tick 42".to_string(),
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = temp_dir("roundtrip");
        let state = sample();
        state.save(&dir).unwrap();
        let loaded = SidecarState::load(&dir).unwrap();
        assert_eq!(loaded, state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_damaged_sidecars_report_cleanly() {
        let dir = temp_dir("damage");
        assert!(matches!(
            SidecarState::load(&dir),
            Err(PersistError::Missing)
        ));
        sample().save(&dir).unwrap();
        let path = sidecar_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(SidecarState::load(&dir).is_err());
        let moved = quarantine_sidecar(&dir).unwrap();
        assert!(moved.exists());
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_trailing_bytes_are_rejected() {
        let state = sample();
        let mut bytes = state.encode();
        assert!(SidecarState::decode(&bytes).is_ok());
        bytes.push(0);
        assert!(SidecarState::decode(&bytes).is_err(), "trailing bytes");
        let mut wrong = state.encode();
        wrong[0] = VERSION + 1;
        assert!(SidecarState::decode(&wrong).is_err(), "future version");
        let mut zero = state.encode();
        zero[0] = 0;
        assert!(SidecarState::decode(&zero).is_err(), "version zero");
    }

    #[test]
    fn v1_sidecars_decode_with_empty_supervision_sections() {
        // A v1 payload is exactly a v2 payload with empty supervision
        // sections, minus the two trailing zero seq-lens, with the
        // version byte rolled back.
        let mut state = sample();
        state.executor_states.clear();
        state.dead_letters.clear();
        let mut bytes = state.encode();
        bytes[0] = 1;
        bytes.truncate(bytes.len() - 8);
        let decoded = SidecarState::decode(&bytes).expect("v1 payload must decode");
        assert_eq!(decoded, state);
        assert!(decoded.executor_states.is_empty());
        assert!(decoded.dead_letters.is_empty());
    }

    #[test]
    fn half_open_breaker_persists_as_closed() {
        let mut state = sample();
        state.executor_states = vec![("probe".to_string(), 1, BreakerState::HalfOpen)];
        let decoded = SidecarState::decode(&state.encode()).unwrap();
        assert_eq!(
            decoded.executor_states,
            vec![("probe".to_string(), 1, BreakerState::Closed)]
        );
    }
}
