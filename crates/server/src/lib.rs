//! # ripq-server — the streaming indoor spatial query daemon
//!
//! Turns the batch-oriented [`IndoorQuerySystem`](ripq_core::IndoorQuerySystem)
//! into a long-running service: clients stream length-prefixed JSON
//! frames of raw RFID readings over TCP or a Unix-domain socket,
//! register *continuous* range/kNN subscriptions, and receive per-tick
//! **delta** frames (which objects entered, left, or changed probability
//! in each result set) plus executor-driven event frames (geofence
//! entered/left, object unseen past a silence threshold).
//!
//! The layering is strict:
//!
//! ```text
//! bytes ─→ frame (length-prefix codec) ─→ protocol (JSON requests)
//!                                              │
//!                net (TCP/UDS shell)  ◄── core (deterministic engine)
//!                                              │
//!                  executor (events)      checkpoint (server.ckpt)
//! ```
//!
//! Everything below `net` is IO-free and deterministic: replaying a
//! recorded frame transcript into [`ServerCore`] yields byte-identical
//! response lines and metrics JSON across runs and worker counts — the
//! property the transcript-replay test harness pins down. Crash
//! recovery composes the engine's `system.ckpt` with this crate's
//! `server.ckpt` sidecar so a restarted daemon resumes the delta stream
//! exactly where the previous life checkpointed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod core;
pub mod executor;
pub mod frame;
pub mod json;
pub mod net;
pub mod protocol;

pub use checkpoint::SidecarState;
pub use core::{ServerConfig, ServerCore, ServerRecovery};
pub use executor::{AckExecutor, CountingExecutor, Executor, FrameExecutor, ServerEvent};
pub use frame::{encode_frame, FrameDecoder, FrameError, MAX_FRAME_LEN};
pub use net::{send_frames, Endpoint, Server};
pub use protocol::{parse_request, Request};
