//! # ripq-server — the streaming indoor spatial query daemon
//!
//! Turns the batch-oriented [`IndoorQuerySystem`](ripq_core::IndoorQuerySystem)
//! into a long-running service: clients stream length-prefixed JSON
//! frames of raw RFID readings over TCP or a Unix-domain socket,
//! register *continuous* range/kNN subscriptions, and receive per-tick
//! **delta** frames (which objects entered, left, or changed probability
//! in each result set) plus executor-driven event frames (geofence
//! entered/left, object unseen past a silence threshold).
//!
//! The layering is strict:
//!
//! ```text
//! bytes ─→ frame (length-prefix codec) ─→ protocol (JSON requests)
//!                                              │
//!       net (TCP/UDS shell + retry)  ◄── core (deterministic engine)
//!                      │                       │
//!            retry (backoff client)   supervisor (breakers, DLQ)
//!                                              │
//!                  executor (events)      checkpoint (server.ckpt)
//! ```
//!
//! Everything below `net` is IO-free and deterministic: replaying a
//! recorded frame transcript into [`ServerCore`] yields byte-identical
//! response lines and metrics JSON across runs and worker counts — the
//! property the transcript-replay test harness pins down. Crash
//! recovery composes the engine's `system.ckpt` with this crate's
//! `server.ckpt` sidecar so a restarted daemon resumes the delta stream
//! exactly where the previous life checkpointed.
//!
//! The daemon is also overload-hardened: `core` sheds work past
//! configurable admission limits with typed `busy` responses (a
//! deferred tick refills the budget, so evaluated ticks always see a
//! complete interval), the `supervisor` isolates panicking executors
//! behind retry and a circuit breaker whose undelivered events persist
//! in a dead-letter queue, and `retry` / `net::send_frames_with_retry`
//! give clients a seeded backoff protocol that provably converges to
//! the unthrottled byte stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod core;
pub mod executor;
pub mod frame;
pub mod json;
pub mod net;
pub mod protocol;
pub mod retry;
pub mod supervisor;

pub use checkpoint::SidecarState;
pub use core::{ServerConfig, ServerCore, ServerRecovery};
pub use executor::{AckExecutor, CountingExecutor, Executor, FrameExecutor, ServerEvent};
pub use frame::{encode_frame, FrameDecoder, FrameError, MAX_FRAME_LEN};
pub use net::{send_frames, send_frames_with_retry, Endpoint, Server};
pub use protocol::{parse_request, Request};
pub use retry::{replay_with_retry, RetryOutcome, RetryPolicy};
pub use supervisor::{
    BreakerState, DeadLetter, DispatchOutcome, SupervisedExecutor, SupervisorPolicy,
};
