//! Pluggable event executors — the action side of the daemon.
//!
//! Each tick turns subscription deltas and collector silence into
//! [`ServerEvent`]s; every registered [`Executor`] sees every event and
//! may contribute extra response frames. The built-in [`FrameExecutor`]
//! renders the standard event frames the transcript goldens pin down;
//! deployments add their own executors (pagers, actuators, …) without
//! touching the evaluation loop.

use crate::protocol::render_ok;
use ripq_rfid::ObjectId;
use std::fmt::Write as _;

/// An event derived from one tick's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerEvent {
    /// An object entered a range subscription's window (geofence).
    GeofenceEntered {
        /// The subscription whose window was entered.
        sub: u64,
        /// The entering object.
        object: ObjectId,
        /// The tick second.
        second: u64,
    },
    /// An object left a range subscription's window.
    GeofenceLeft {
        /// The subscription whose window was left.
        sub: u64,
        /// The leaving object.
        object: ObjectId,
        /// The tick second.
        second: u64,
    },
    /// An object has not been detected by any reader for longer than the
    /// configured silence threshold (default 60 s). Fires once per
    /// silent episode; a re-detection re-arms it.
    ObjectUnseen {
        /// The silent object.
        object: ObjectId,
        /// The tick second.
        second: u64,
        /// The last second any reader saw the object.
        last_seen: u64,
    },
}

impl ServerEvent {
    /// The event's wire name.
    pub fn name(&self) -> &'static str {
        match self {
            ServerEvent::GeofenceEntered { .. } => "geofence_entered",
            ServerEvent::GeofenceLeft { .. } => "geofence_left",
            ServerEvent::ObjectUnseen { .. } => "object_unseen",
        }
    }
}

/// A pluggable event sink. Executors run in registration order; every
/// frame they return is appended to the tick's response stream, so a
/// deterministic executor keeps the whole transcript deterministic.
/// `Send` so a [`ServerCore`](crate::core::ServerCore) can move into a
/// daemon thread.
pub trait Executor: Send {
    /// A stable name for diagnostics.
    fn name(&self) -> &'static str;

    /// Reacts to one event; returned strings become response frames.
    fn on_event(&mut self, event: &ServerEvent) -> Vec<String>;
}

/// The built-in executor: renders each event as a canonical JSON frame.
#[derive(Debug, Default)]
pub struct FrameExecutor;

impl Executor for FrameExecutor {
    fn name(&self) -> &'static str {
        "frames"
    }

    fn on_event(&mut self, event: &ServerEvent) -> Vec<String> {
        let mut body = String::new();
        match event {
            ServerEvent::GeofenceEntered {
                sub,
                object,
                second,
            }
            | ServerEvent::GeofenceLeft {
                sub,
                object,
                second,
            } => {
                let _ = write!(
                    body,
                    "{{\"event\":\"{}\",\"sub\":{sub},\"object\":{},\"second\":{second}}}",
                    event.name(),
                    object.raw()
                );
            }
            ServerEvent::ObjectUnseen {
                object,
                second,
                last_seen,
            } => {
                let _ = write!(
                    body,
                    "{{\"event\":\"object_unseen\",\"object\":{},\"second\":{second},\"last_seen\":{last_seen}}}",
                    object.raw()
                );
            }
        }
        vec![body]
    }
}

/// A counting executor for tests and smoke checks: tallies events by
/// kind and emits nothing.
#[derive(Debug, Default)]
pub struct CountingExecutor {
    /// Geofence-entered events seen.
    pub entered: u64,
    /// Geofence-left events seen.
    pub left: u64,
    /// Unseen events seen.
    pub unseen: u64,
}

impl Executor for CountingExecutor {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn on_event(&mut self, event: &ServerEvent) -> Vec<String> {
        match event {
            ServerEvent::GeofenceEntered { .. } => self.entered += 1,
            ServerEvent::GeofenceLeft { .. } => self.left += 1,
            ServerEvent::ObjectUnseen { .. } => self.unseen += 1,
        }
        Vec::new()
    }
}

/// An acknowledging executor used by the CLI's verbose mode: echoes an
/// `{"ok":"executor", ...}` frame naming what fired.
#[derive(Debug, Default)]
pub struct AckExecutor;

impl Executor for AckExecutor {
    fn name(&self) -> &'static str {
        "ack"
    }

    fn on_event(&mut self, event: &ServerEvent) -> Vec<String> {
        vec![render_ok(
            "executor",
            &[("fired", format!("\"{}\"", event.name()))],
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_executor_renders_valid_json() {
        let mut ex = FrameExecutor;
        assert_eq!(ex.name(), "frames");
        for event in [
            ServerEvent::GeofenceEntered {
                sub: 1,
                object: ObjectId::new(4),
                second: 9,
            },
            ServerEvent::GeofenceLeft {
                sub: 1,
                object: ObjectId::new(4),
                second: 10,
            },
            ServerEvent::ObjectUnseen {
                object: ObjectId::new(2),
                second: 70,
                last_seen: 3,
            },
        ] {
            let frames = ex.on_event(&event);
            assert_eq!(frames.len(), 1);
            let doc = crate::json::parse(frames[0].as_bytes()).unwrap();
            let obj = doc.as_obj().unwrap();
            assert_eq!(obj["event"].as_str(), Some(event.name()));
        }
    }

    #[test]
    fn counting_executor_tallies() {
        let mut ex = CountingExecutor::default();
        ex.on_event(&ServerEvent::GeofenceEntered {
            sub: 0,
            object: ObjectId::new(0),
            second: 0,
        });
        ex.on_event(&ServerEvent::ObjectUnseen {
            object: ObjectId::new(0),
            second: 61,
            last_seen: 0,
        });
        assert_eq!((ex.entered, ex.left, ex.unseen), (1, 0, 1));
        assert_eq!(ex.name(), "counting");
    }

    #[test]
    fn ack_executor_names_the_event() {
        let mut ex = AckExecutor;
        let frames = ex.on_event(&ServerEvent::GeofenceLeft {
            sub: 3,
            object: ObjectId::new(1),
            second: 5,
        });
        assert_eq!(
            frames,
            vec!["{\"ok\":\"executor\",\"fired\":\"geofence_left\"}"]
        );
        assert_eq!(ex.name(), "ack");
    }
}
