//! The request/response protocol spoken inside frames.
//!
//! Each frame payload is one compact JSON object with an `"op"` key.
//! Responses are rendered as canonical JSON text (one string per
//! response frame). Probabilities travel as 16-hex-digit f64 bit
//! patterns, so a response stream byte-compares across runs and worker
//! counts without any float-formatting ambiguity.

use crate::json::{self, Value};
use ripq_core::continuous::{ResultDelta, SubscriptionKind};
use ripq_geom::{Point2, Rect};
use ripq_rfid::{ObjectId, RawReading, ReaderId};
use std::fmt::Write as _;

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Pre-aggregated detections for one logical second.
    Readings {
        /// The logical second the detections belong to.
        second: u64,
        /// `(object, detecting reader)` pairs.
        detections: Vec<(ObjectId, ReaderId)>,
    },
    /// Sample-level raw readings for one logical second.
    Raw {
        /// The logical second the samples belong to.
        second: u64,
        /// The raw samples.
        samples: Vec<RawReading>,
    },
    /// Open a continuous subscription.
    Subscribe {
        /// Client-chosen subscription id.
        sub: u64,
        /// What to watch.
        kind: SubscriptionKind,
    },
    /// Close a subscription.
    Unsubscribe {
        /// The subscription id to close.
        sub: u64,
    },
    /// Advance the epoch clock: evaluate all subscriptions at `second`
    /// and emit deltas and events.
    Tick {
        /// The logical second to evaluate at.
        second: u64,
        /// Optional per-request deadline budget (logical cost units)
        /// overriding the server-wide `query_budget` for this tick. The
        /// tick ack is tagged with the worst `DegradationLevel` the
        /// budget forced.
        budget: Option<u64>,
    },
    /// List (and optionally drain) the executor dead-letter queue.
    DeadLetters {
        /// When `true`, the queue is cleared after rendering.
        drain: bool,
    },
    /// Request a metrics snapshot frame.
    Metrics,
    /// Write a durable checkpoint now.
    Checkpoint,
    /// Stop the server after acknowledging.
    Shutdown,
}

fn field<'a>(
    obj: &'a std::collections::BTreeMap<String, Value>,
    key: &str,
) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn field_u64(obj: &std::collections::BTreeMap<String, Value>, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

fn num_at(items: &[Value], i: usize, what: &str) -> Result<f64, String> {
    items
        .get(i)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{what} must be an array of numbers"))
}

fn u32_at(items: &[Value], i: usize, what: &str) -> Result<u32, String> {
    items
        .get(i)
        .and_then(Value::as_u64)
        .filter(|&v| v <= u64::from(u32::MAX))
        .map(|v| v as u32)
        .ok_or_else(|| format!("{what} must be an array of small non-negative integers"))
}

/// Parses one frame payload into a [`Request`]. Every failure is a clean
/// `Err` message — malformed JSON, a missing/ill-typed field or an
/// unknown op never panics and never poisons the framing layer.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let doc = json::parse(payload).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = doc.as_obj().ok_or("frame is not a JSON object")?;
    let op = field(obj, "op")?
        .as_str()
        .ok_or("field `op` must be a string")?;
    match op {
        "reading" => {
            let second = field_u64(obj, "second")?;
            let items = field(obj, "readings")?
                .as_arr()
                .ok_or("field `readings` must be an array")?;
            let mut detections = Vec::with_capacity(items.len());
            for pair in items {
                let pair = pair
                    .as_arr()
                    .ok_or("each reading must be [object, reader]")?;
                if pair.len() != 2 {
                    return Err("each reading must be [object, reader]".to_string());
                }
                let object = u32_at(pair, 0, "reading")?;
                let reader = u32_at(pair, 1, "reading")?;
                detections.push((ObjectId::new(object), ReaderId::new(reader)));
            }
            Ok(Request::Readings { second, detections })
        }
        "raw" => {
            let second = field_u64(obj, "second")?;
            let items = field(obj, "samples")?
                .as_arr()
                .ok_or("field `samples` must be an array")?;
            let mut samples = Vec::with_capacity(items.len());
            for entry in items {
                let entry = entry
                    .as_arr()
                    .ok_or("each sample must be [time, object, reader]")?;
                if entry.len() != 3 {
                    return Err("each sample must be [time, object, reader]".to_string());
                }
                let time = num_at(entry, 0, "sample")?;
                // NaN must fail too: NaN.floor() as u64 is 0, which
                // would slip past the second check below.
                if time.is_nan() || time < 0.0 || time.floor() as u64 != second {
                    return Err(format!("sample time {time} outside second {second}"));
                }
                let object = u32_at(entry, 1, "sample")?;
                let reader = u32_at(entry, 2, "sample")?;
                samples.push(RawReading {
                    time,
                    object: ObjectId::new(object),
                    reader: ReaderId::new(reader),
                });
            }
            Ok(Request::Raw { second, samples })
        }
        "subscribe" => {
            let sub = field_u64(obj, "sub")?;
            match (obj.get("range"), obj.get("point")) {
                (Some(range), None) => {
                    let r = range.as_arr().ok_or("field `range` must be [x, y, w, h]")?;
                    if r.len() != 4 {
                        return Err("field `range` must be [x, y, w, h]".to_string());
                    }
                    let x = num_at(r, 0, "range")?;
                    let y = num_at(r, 1, "range")?;
                    let w = num_at(r, 2, "range")?;
                    let h = num_at(r, 3, "range")?;
                    if !(w >= 0.0 && h >= 0.0) {
                        return Err("range width/height must be non-negative".to_string());
                    }
                    Ok(Request::Subscribe {
                        sub,
                        kind: SubscriptionKind::Range(Rect::new(x, y, w, h)),
                    })
                }
                (None, Some(point)) => {
                    let pt = point.as_arr().ok_or("field `point` must be [x, y]")?;
                    if pt.len() != 2 {
                        return Err("field `point` must be [x, y]".to_string());
                    }
                    let x = num_at(pt, 0, "point")?;
                    let y = num_at(pt, 1, "point")?;
                    let k = field_u64(obj, "k")? as usize;
                    Ok(Request::Subscribe {
                        sub,
                        kind: SubscriptionKind::Knn(Point2::new(x, y), k),
                    })
                }
                _ => Err("subscribe needs exactly one of `range` or `point`".to_string()),
            }
        }
        "unsubscribe" => Ok(Request::Unsubscribe {
            sub: field_u64(obj, "sub")?,
        }),
        "tick" => {
            let budget = match obj.get("budget") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("field `budget` must be a non-negative integer")?,
                ),
            };
            Ok(Request::Tick {
                second: field_u64(obj, "second")?,
                budget,
            })
        }
        "dead_letters" => {
            let drain = match obj.get("drain") {
                None => false,
                Some(v) => v.as_bool().ok_or("field `drain` must be a boolean")?,
            };
            Ok(Request::DeadLetters { drain })
        }
        "metrics" => Ok(Request::Metrics),
        "checkpoint" => Ok(Request::Checkpoint),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// An f64 as its exact 16-hex-digit bit pattern — the byte-stable
/// probability encoding used in delta and event frames.
pub fn hex_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a [`hex_bits`] rendering back to the exact f64.
pub fn from_hex_bits(s: &str) -> Option<f64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
        .map(f64::from_bits)
}

/// Renders one subscription delta as a response frame.
pub fn render_delta(sub: u64, second: u64, delta: &ResultDelta) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"delta\":{{\"sub\":{sub},\"second\":{second},\"appeared\":["
    );
    for (i, (o, pr)) in delta.appeared.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},\"{}\"]", o.raw(), hex_bits(*pr));
    }
    out.push_str("],\"disappeared\":[");
    for (i, o) in delta.disappeared.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", o.raw());
    }
    out.push_str("],\"changed\":[");
    for (i, (o, old, new)) in delta.changed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "[{},\"{}\",\"{}\"]",
            o.raw(),
            hex_bits(*old),
            hex_bits(*new)
        );
    }
    out.push_str("]}}");
    out
}

/// Renders an acknowledgment frame: `{"ok":"<op>", ...extras}` with
/// extras pre-rendered as `"key":value` fragments.
pub fn render_ok(op: &str, extras: &[(&str, String)]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"ok\":\"{op}\"");
    for (k, v) in extras {
        let _ = write!(out, ",\"{k}\":{v}");
    }
    out.push('}');
    out
}

/// Renders an overload (admission-control) rejection frame:
/// `{"busy":"<op>", ...extras, "retry_after_ticks":N}`. The hint is
/// deterministic — a retrying client that honors it provably converges
/// to the unthrottled session's final state.
pub fn render_busy(op: &str, extras: &[(&str, String)], retry_after_ticks: u64) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"busy\":\"{op}\"");
    for (k, v) in extras {
        let _ = write!(out, ",\"{k}\":{v}");
    }
    let _ = write!(out, ",\"retry_after_ticks\":{retry_after_ticks}}}");
    out
}

/// Renders a protocol error frame.
pub fn render_error(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    json::render_str(message, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let r = parse_request(br#"{"op":"reading","second":3,"readings":[[1,2]]}"#).unwrap();
        assert_eq!(
            r,
            Request::Readings {
                second: 3,
                detections: vec![(ObjectId::new(1), ReaderId::new(2))],
            }
        );
        let r = parse_request(br#"{"op":"raw","second":2,"samples":[[2.5,1,4]]}"#).unwrap();
        match r {
            Request::Raw { second, samples } => {
                assert_eq!(second, 2);
                assert_eq!(samples.len(), 1);
                assert_eq!(samples.first().unwrap().reader, ReaderId::new(4));
            }
            other => panic!("{other:?}"),
        }
        let r = parse_request(br#"{"op":"subscribe","sub":9,"range":[0,1,10,5]}"#).unwrap();
        assert_eq!(
            r,
            Request::Subscribe {
                sub: 9,
                kind: SubscriptionKind::Range(Rect::new(0.0, 1.0, 10.0, 5.0)),
            }
        );
        let r = parse_request(br#"{"op":"subscribe","sub":1,"point":[3.5,2],"k":2}"#).unwrap();
        assert_eq!(
            r,
            Request::Subscribe {
                sub: 1,
                kind: SubscriptionKind::Knn(Point2::new(3.5, 2.0), 2),
            }
        );
        assert_eq!(
            parse_request(br#"{"op":"unsubscribe","sub":9}"#).unwrap(),
            Request::Unsubscribe { sub: 9 }
        );
        assert_eq!(
            parse_request(br#"{"op":"tick","second":8}"#).unwrap(),
            Request::Tick {
                second: 8,
                budget: None
            }
        );
        assert_eq!(
            parse_request(br#"{"op":"tick","second":8,"budget":150}"#).unwrap(),
            Request::Tick {
                second: 8,
                budget: Some(150)
            }
        );
        assert_eq!(
            parse_request(br#"{"op":"dead_letters"}"#).unwrap(),
            Request::DeadLetters { drain: false }
        );
        assert_eq!(
            parse_request(br#"{"op":"dead_letters","drain":true}"#).unwrap(),
            Request::DeadLetters { drain: true }
        );
        assert_eq!(
            parse_request(br#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(br#"{"op":"checkpoint"}"#).unwrap(),
            Request::Checkpoint
        );
        assert_eq!(
            parse_request(br#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests_cleanly() {
        for bad in [
            &b"not json"[..],
            br#"[1,2]"#,
            br#"{"second":1}"#,
            br#"{"op":"warp"}"#,
            br#"{"op":"reading","second":1}"#,
            br#"{"op":"reading","second":1,"readings":[[1]]}"#,
            br#"{"op":"reading","second":-1,"readings":[]}"#,
            br#"{"op":"subscribe","sub":1}"#,
            br#"{"op":"subscribe","sub":1,"range":[0,0,1,1],"point":[0,0]}"#,
            br#"{"op":"subscribe","sub":1,"range":[0,0,-1,1]}"#,
            br#"{"op":"raw","second":5,"samples":[[4.5,1,2]]}"#,
            br#"{"op":"tick"}"#,
            br#"{"op":"tick","second":1,"budget":-3}"#,
            br#"{"op":"tick","second":1,"budget":"fast"}"#,
            br#"{"op":"dead_letters","drain":1}"#,
        ] {
            assert!(
                parse_request(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn hex_bits_round_trip() {
        for v in [0.0, 1.0, 0.25, -3.5, f64::MIN_POSITIVE] {
            assert_eq!(from_hex_bits(&hex_bits(v)), Some(v));
        }
        assert_eq!(from_hex_bits("xyz"), None);
        assert_eq!(from_hex_bits("00"), None);
    }

    #[test]
    fn renders_deltas_deterministically() {
        let delta = ResultDelta {
            appeared: vec![(ObjectId::new(3), 0.5)],
            disappeared: vec![ObjectId::new(1), ObjectId::new(2)],
            changed: vec![(ObjectId::new(4), 0.5, 0.25)],
        };
        let line = render_delta(7, 12, &delta);
        assert_eq!(
            line,
            "{\"delta\":{\"sub\":7,\"second\":12,\"appeared\":[[3,\"3fe0000000000000\"]],\
             \"disappeared\":[1,2],\"changed\":[[4,\"3fe0000000000000\",\"3fd0000000000000\"]]}}"
        );
        // The rendered frame is itself valid JSON.
        assert!(crate::json::parse(line.as_bytes()).is_ok());
    }

    #[test]
    fn ok_and_error_frames_render() {
        assert_eq!(
            render_ok("tick", &[("second", "4".to_string())]),
            "{\"ok\":\"tick\",\"second\":4}"
        );
        assert_eq!(render_error("no\nway"), "{\"error\":\"no\\nway\"}");
        assert_eq!(
            render_busy("reading", &[("second", "5".to_string())], 1),
            "{\"busy\":\"reading\",\"second\":5,\"retry_after_ticks\":1}"
        );
        assert!(crate::json::parse(render_busy("tick", &[], 2).as_bytes()).is_ok());
    }
}
