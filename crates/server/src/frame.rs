//! Length-prefixed frame codec for the streaming wire protocol.
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes
//! of JSON payload. The decoder is incremental (feed arbitrary chunk
//! boundaries) and hardened against hostile input: oversized or empty
//! declared lengths yield one typed error each and the decoder *resyncs*
//! — it discards exactly the bad frame's bytes so subsequent well-formed
//! frames decode normally. It never panics.

use std::fmt;

/// Largest payload a frame may declare (1 MiB). Anything larger is
/// rejected without buffering it.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Decoder-level frame errors. These are transport problems, distinct
/// from protocol errors inside a well-formed frame's JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header declared a payload longer than [`MAX_FRAME_LEN`]. The
    /// decoder skips the declared bytes and resynchronizes.
    Oversized {
        /// The declared payload length.
        declared: usize,
    },
    /// The header declared a zero-length payload.
    Empty,
    /// The stream ended mid-frame: a header or payload was cut short.
    Truncated {
        /// How many more bytes the pending frame still needed.
        missing: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { declared } => write!(
                f,
                "frame declares {declared} bytes, limit is {MAX_FRAME_LEN}"
            ),
            FrameError::Empty => write!(f, "frame declares an empty payload"),
            FrameError::Truncated { missing } => {
                write!(f, "stream ended mid-frame, {missing} bytes missing")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one payload as a length-prefixed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame decoder. Feed bytes with [`FrameDecoder::push`],
/// drain complete frames with [`FrameDecoder::next_frame`], and call
/// [`FrameDecoder::finish`] at end-of-stream to detect truncation.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of an oversized frame still to discard before resyncing.
    discard: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a chunk of stream bytes (any chunking is fine).
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, a frame error, or `None` when more
    /// bytes are needed. Errors are consumed: after an `Oversized` or
    /// `Empty` result the decoder has already discarded the bad frame
    /// and the next call continues with the following one.
    pub fn next_frame(&mut self) -> Option<Result<Vec<u8>, FrameError>> {
        if self.discard > 0 {
            let n = self.discard.min(self.buf.len());
            self.buf.drain(..n);
            self.discard -= n;
            if self.discard > 0 {
                return None;
            }
        }
        let header: [u8; 4] = self.buf.get(..4).and_then(|h| h.try_into().ok())?;
        let declared = u32::from_be_bytes(header) as usize;
        if declared > MAX_FRAME_LEN {
            self.buf.drain(..4);
            self.discard = declared;
            // Discard whatever already arrived so the caller may retry
            // immediately without an extra push.
            let n = self.discard.min(self.buf.len());
            self.buf.drain(..n);
            self.discard -= n;
            return Some(Err(FrameError::Oversized { declared }));
        }
        if declared == 0 {
            self.buf.drain(..4);
            return Some(Err(FrameError::Empty));
        }
        let payload = self.buf.get(4..4 + declared)?.to_vec();
        self.buf.drain(..4 + declared);
        Some(Ok(payload))
    }

    /// Declares end-of-stream: returns `Truncated` if a partial frame
    /// (or the tail of a discarded oversized one) is still pending.
    pub fn finish(&self) -> Result<(), FrameError> {
        if self.discard > 0 {
            return Err(FrameError::Truncated {
                missing: self.discard,
            });
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        let header: Option<[u8; 4]> = self.buf.get(..4).and_then(|h| h.try_into().ok());
        let missing = match header {
            None => 4 - self.buf.len(),
            Some(h) => (u32::from_be_bytes(h) as usize + 4).saturating_sub(self.buf.len()),
        };
        Err(FrameError::Truncated { missing })
    }

    /// Bytes currently buffered (pending partial frame).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() + self.discard
    }

    /// Drops any buffered partial frame and discard debt — used when a
    /// byte stream ends so the next stream starts from a clean slate.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.discard = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(dec: &mut FrameDecoder) -> Vec<Result<Vec<u8>, FrameError>> {
        let mut out = Vec::new();
        while let Some(r) = dec.next_frame() {
            out.push(r);
        }
        out
    }

    #[test]
    fn round_trips_across_chunk_boundaries() {
        let frames: Vec<Vec<u8>> = vec![b"alpha".to_vec(), b"b".to_vec(), vec![0u8; 300]];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &wire {
            dec.push(&[b]);
            got.extend(drain(&mut dec));
        }
        let got: Vec<Vec<u8>> = got.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, frames);
        assert!(dec.finish().is_ok());
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected_and_resynced() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes());
        wire.extend_from_slice(&vec![0xAB; MAX_FRAME_LEN + 1]);
        wire.extend_from_slice(&encode_frame(b"after"));
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let got = drain(&mut dec);
        assert_eq!(
            got,
            vec![
                Err(FrameError::Oversized {
                    declared: MAX_FRAME_LEN + 1
                }),
                Ok(b"after".to_vec()),
            ]
        );
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn oversized_discard_spans_chunks() {
        let mut dec = FrameDecoder::new();
        dec.push(&((MAX_FRAME_LEN as u32) + 5).to_be_bytes());
        assert!(matches!(
            dec.next_frame(),
            Some(Err(FrameError::Oversized { .. }))
        ));
        // Stream the junk in pieces, then a good frame.
        dec.push(&vec![0u8; MAX_FRAME_LEN]);
        assert!(dec.next_frame().is_none());
        assert!(matches!(dec.finish(), Err(FrameError::Truncated { .. })));
        dec.push(&[0u8; 5]);
        dec.push(&encode_frame(b"ok"));
        assert_eq!(dec.next_frame(), Some(Ok(b"ok".to_vec())));
    }

    #[test]
    fn empty_frame_is_an_error_but_stream_continues() {
        let mut dec = FrameDecoder::new();
        dec.push(&0u32.to_be_bytes());
        dec.push(&encode_frame(b"x"));
        assert_eq!(dec.next_frame(), Some(Err(FrameError::Empty)));
        assert_eq!(dec.next_frame(), Some(Ok(b"x".to_vec())));
    }

    #[test]
    fn truncation_is_reported_at_finish() {
        let mut dec = FrameDecoder::new();
        dec.push(&[0, 0]);
        assert!(dec.next_frame().is_none());
        assert_eq!(dec.finish(), Err(FrameError::Truncated { missing: 2 }));
        let mut dec = FrameDecoder::new();
        dec.push(&encode_frame(b"hello"));
        let cut = dec.buf.len() - 2;
        dec.buf.truncate(cut);
        assert!(dec.next_frame().is_none());
        assert_eq!(dec.finish(), Err(FrameError::Truncated { missing: 2 }));
    }

    #[test]
    fn display_messages_name_the_problem() {
        assert!(FrameError::Oversized { declared: 9 }
            .to_string()
            .contains("9"));
        assert!(FrameError::Empty.to_string().contains("empty"));
        assert!(FrameError::Truncated { missing: 3 }
            .to_string()
            .contains("3 bytes missing"));
    }
}
