//! The deterministic server engine: frames in, response lines out.
//!
//! `ServerCore` is the whole daemon minus IO. It consumes decoded frame
//! payloads (or raw stream bytes via its embedded [`FrameDecoder`]) and
//! produces response frames as strings, in order. Because it never reads
//! a clock, never touches thread-dependent state and drives the
//! `IndoorQuerySystem` under logical timing, the full response stream is
//! a pure function of the input frame sequence — the transcript-replay
//! tests byte-compare it across runs and worker counts.

use crate::checkpoint::{quarantine_sidecar, SidecarState};
use crate::executor::{Executor, FrameExecutor, ServerEvent};
use crate::frame::FrameDecoder;
use crate::json;
use crate::protocol::{parse_request, render_busy, render_delta, render_error, render_ok, Request};
use crate::supervisor::{DeadLetter, DispatchOutcome, SupervisedExecutor, SupervisorPolicy};
use ripq_core::clock::TimingMode;
use ripq_core::continuous::{SubscriptionKind, SubscriptionRegistry};
use ripq_core::{
    DegradationLevel, IndoorQuerySystem, Recorder, RecoveryOutcome, RipqError, SystemConfig,
};
use ripq_floorplan::FloorPlan;
use ripq_persist::PersistError;
use ripq_rfid::ObjectId;
use std::collections::{BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

/// Server behavior knobs. Everything else — timing, observability —
/// is pinned to the deterministic settings the replay contract needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Master seed for the underlying system's stochastic machinery.
    pub seed: u64,
    /// Worker threads for particle-filter preprocessing; results are
    /// bit-identical for every setting.
    pub workers: Option<usize>,
    /// Write a durable checkpoint after every N ticks (0 = only on
    /// explicit `checkpoint` frames). Needs a checkpoint directory.
    pub checkpoint_every_ticks: u64,
    /// Seconds of reader silence after which an object fires
    /// [`ServerEvent::ObjectUnseen`] (re-armed by re-detection).
    pub unseen_after: u64,
    /// Admission control: data frames (`reading`/`raw`) accepted per
    /// tick interval; excess frames get a typed `busy` response with a
    /// `retry_after_ticks` hint (0 = unbounded).
    pub max_frames_per_tick: u64,
    /// Admission control: open-subscription cap; excess `subscribe`
    /// frames get a `busy` response (0 = unbounded).
    pub max_subscriptions: u64,
    /// Admission control: response bytes (framed) per connection; once a
    /// connection has exceeded the cap, further data frames on it are
    /// shed (0 = unbounded). Only meaningful on the byte-stream path —
    /// direct `handle_frame` replay has no connection.
    pub max_conn_response_bytes: u64,
    /// Default per-tick evaluation deadline, overridable per request by
    /// the protocol's `budget` field (None = no deadline).
    pub query_budget: Option<u64>,
    /// Executor supervision: retry, circuit-breaker and dead-letter
    /// bounds.
    pub supervisor: SupervisorPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            seed: 7,
            workers: None,
            checkpoint_every_ticks: 0,
            unseen_after: 60,
            max_frames_per_tick: 0,
            max_subscriptions: 0,
            max_conn_response_bytes: 0,
            query_budget: None,
            supervisor: SupervisorPolicy::default(),
        }
    }
}

impl ServerConfig {
    /// The pinned system configuration this server runs: logical timing
    /// and observability on (both required for byte-stable replay),
    /// parallelism from [`ServerConfig::workers`].
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            timing: TimingMode::Logical,
            observability: true,
            parallelism: self.workers,
            // The server owns checkpoint cadence (per tick, via
            // `checkpoint_every_ticks`); the facade's per-second
            // auto-checkpoint stays off so the two never interleave.
            checkpoint_every: 0,
            query_budget: self.query_budget,
            ..SystemConfig::default()
        }
    }
}

/// How a [`ServerCore::recover`] call concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerRecovery {
    /// No snapshot existed; the server starts fresh.
    ColdStart,
    /// Both `system.ckpt` and `server.ckpt` restored. The replay driver
    /// skips `skip_frames` input frames; the resumed response stream
    /// continues at line `lines_emitted` of the uninterrupted output.
    Resumed {
        /// Input frames already covered by the snapshot.
        skip_frames: u64,
        /// Response lines already emitted before the snapshot.
        lines_emitted: u64,
    },
    /// A damaged snapshot was moved aside. The core's state is not
    /// usable for resumption — discard it and build a fresh one.
    Quarantined {
        /// Where the damaged file went.
        path: PathBuf,
    },
}

/// The deterministic, IO-free server engine.
pub struct ServerCore {
    system: IndoorQuerySystem,
    registry: SubscriptionRegistry,
    executors: Vec<SupervisedExecutor>,
    recorder: Recorder,
    decoder: FrameDecoder,
    config: ServerConfig,
    checkpoint_dir: Option<PathBuf>,
    unseen_alerted: BTreeSet<ObjectId>,
    frames_processed: u64,
    lines_emitted: u64,
    last_tick: Option<u64>,
    ticks_since_checkpoint: u64,
    auto_checkpoint_due: bool,
    last_checkpoint_error: Option<String>,
    shutdown: bool,
    /// Data frames admitted since the last tick attempt (admission
    /// window for `max_frames_per_tick`).
    frames_this_interval: u64,
    /// Whether anything was shed since the last tick attempt. A tick
    /// arriving with this set is itself deferred (busy) — and refills
    /// the budget — so every *evaluated* tick saw a complete interval.
    shed_since_tick: bool,
    /// Framed response bytes emitted on the current byte-stream
    /// connection (for `max_conn_response_bytes`).
    conn_response_bytes: u64,
    /// Undelivered executor events, oldest first, capacity-bounded by
    /// [`SupervisorPolicy::dead_letter_capacity`].
    dead_letters: VecDeque<DeadLetter>,
}

impl ServerCore {
    /// Builds a server over `plan` with the built-in [`FrameExecutor`]
    /// installed (standard event frames).
    pub fn new(plan: FloorPlan, config: ServerConfig) -> Self {
        let system = IndoorQuerySystem::new(plan, config.system_config(), config.seed);
        let recorder = system.recorder().clone();
        ServerCore {
            system,
            registry: SubscriptionRegistry::new(),
            executors: vec![SupervisedExecutor::new(Box::new(FrameExecutor))],
            recorder,
            decoder: FrameDecoder::new(),
            config,
            checkpoint_dir: None,
            unseen_alerted: BTreeSet::new(),
            frames_processed: 0,
            lines_emitted: 0,
            last_tick: None,
            ticks_since_checkpoint: 0,
            auto_checkpoint_due: false,
            last_checkpoint_error: None,
            shutdown: false,
            frames_this_interval: 0,
            shed_since_tick: false,
            conn_response_bytes: 0,
            dead_letters: VecDeque::new(),
        }
    }

    /// Installs an additional executor (runs after the built-ins, in
    /// installation order), wrapped with supervision.
    pub fn push_executor(&mut self, executor: Box<dyn Executor>) {
        self.executors.push(SupervisedExecutor::new(executor));
    }

    /// Removes every installed executor (including the built-in frame
    /// renderer) — for callers that only want delta output.
    pub fn clear_executors(&mut self) {
        self.executors.clear();
    }

    /// Configures where durable snapshots (`system.ckpt` +
    /// `server.ckpt`) are written.
    pub fn set_checkpoint_dir(&mut self, dir: impl Into<PathBuf>) {
        let dir = dir.into();
        self.system.set_checkpoint_dir(&dir);
        self.checkpoint_dir = Some(dir);
    }

    /// The underlying query system (read access).
    pub fn system(&self) -> &IndoorQuerySystem {
        &self.system
    }

    /// Open subscriptions.
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.registry
    }

    /// Complete input frames handled so far (well-formed or rejected).
    pub fn frames_processed(&self) -> u64 {
        self.frames_processed
    }

    /// Response lines emitted so far.
    pub fn lines_emitted(&self) -> u64 {
        self.lines_emitted
    }

    /// `true` once a `shutdown` frame was acknowledged.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// The rendered error of the most recent failed best-effort
    /// automatic checkpoint, if any.
    pub fn last_checkpoint_error(&self) -> Option<&str> {
        self.last_checkpoint_error.as_deref()
    }

    /// The pending dead letters, oldest first (read access; the
    /// `dead_letters` protocol op lists or drains them).
    pub fn dead_letters(&self) -> impl Iterator<Item = &DeadLetter> {
        self.dead_letters.iter()
    }

    /// Names of executors whose circuit breaker is currently open.
    pub fn quarantined_executors(&self) -> Vec<&'static str> {
        self.executors
            .iter()
            .filter(|e| e.is_quarantined())
            .map(|e| e.name())
            .collect()
    }

    /// The current cumulative metrics snapshot as deterministic JSON.
    pub fn metrics_json(&self) -> String {
        self.recorder.snapshot().to_json()
    }

    /// Attempts to restore a previous life from `dir` and makes it the
    /// checkpoint directory. Call on a freshly built core (no
    /// subscriptions, no frames handled). See [`ServerRecovery`] for the
    /// contract; on `Quarantined`, discard this core.
    pub fn recover(&mut self, dir: impl Into<PathBuf>) -> Result<ServerRecovery, RipqError> {
        let dir = dir.into();
        let outcome = self.system.recover(&dir)?;
        self.checkpoint_dir = Some(dir.clone());
        match outcome {
            RecoveryOutcome::ColdStart => Ok(ServerRecovery::ColdStart),
            RecoveryOutcome::Quarantined { path } => Ok(ServerRecovery::Quarantined { path }),
            RecoveryOutcome::Resumed { .. } => self.restore_sidecar(&dir),
        }
    }

    fn restore_sidecar(&mut self, dir: &Path) -> Result<ServerRecovery, RipqError> {
        let state = match SidecarState::load(dir) {
            Ok(state) => state,
            Err(PersistError::Missing) => {
                return Err(RipqError::Io(
                    "system snapshot resumed but server.ckpt is missing".to_string(),
                ));
            }
            Err(_damaged) => {
                let path = quarantine_sidecar(dir)
                    .map_err(|e| RipqError::Io(format!("quarantine server.ckpt: {e}")))?;
                return Ok(ServerRecovery::Quarantined { path });
            }
        };
        // Re-register subscriptions in id order. Engine QueryIds may
        // differ from the previous life; the subscription id is the
        // stable identity and results never depend on QueryId values.
        for (sub, kind, current) in state.subscriptions {
            let query = match kind {
                SubscriptionKind::Range(window) => self.system.register_range(window),
                SubscriptionKind::Knn(point, k) => self.system.register_knn(point, k),
            }
            .map_err(|e| RipqError::Io(format!("re-register subscription {sub}: {e}")))?;
            self.registry
                .insert(sub, kind, query)
                .map_err(|e| RipqError::Io(format!("re-register subscription {sub}: {e}")))?;
            self.registry.restore_current(sub, current);
        }
        self.recorder
            .set_gauge("server.subscriptions_active", self.registry.len() as u64);
        // Supervision state: match persisted breaker states to the
        // installed executors by stable name; states for executors no
        // longer installed are dropped (their dead letters survive).
        for (name, failures, breaker) in state.executor_states {
            if let Some(executor) = self.executors.iter_mut().find(|e| e.name() == name) {
                executor.restore(failures, breaker);
            }
        }
        self.dead_letters = state.dead_letters.into();
        self.recorder.set_gauge(
            "server.executor.quarantined",
            self.executors.iter().filter(|e| e.is_quarantined()).count() as u64,
        );
        self.frames_processed = state.frames_processed;
        self.lines_emitted = state.lines_emitted;
        self.last_tick = state.last_tick;
        self.unseen_alerted = state.unseen_alerted;
        self.ticks_since_checkpoint = 0;
        Ok(ServerRecovery::Resumed {
            skip_frames: state.frames_processed,
            lines_emitted: state.lines_emitted,
        })
    }

    /// Feeds raw stream bytes through the embedded frame decoder and
    /// handles every complete frame. Frame-level errors (oversized,
    /// empty) become error lines and the decoder resyncs, so one bad
    /// frame never takes later ones down.
    pub fn ingest_bytes(&mut self, chunk: &[u8]) -> Vec<String> {
        self.decoder.push(chunk);
        let mut out = Vec::new();
        while !self.shutdown {
            match self.decoder.next_frame() {
                None => break,
                Some(Ok(payload)) => out.extend(self.handle_frame(&payload)),
                Some(Err(e)) => {
                    self.recorder.add("server.frames_rejected", 1);
                    out.push(render_error(&format!("frame error: {e}")));
                    self.lines_emitted += 1;
                }
            }
        }
        // Account framed response bytes against the per-connection cap
        // (4-byte length prefix per line on the wire).
        for line in &out {
            self.conn_response_bytes += line.len() as u64 + 4;
        }
        out
    }

    /// Declares end-of-stream on the embedded decoder: a pending partial
    /// frame becomes a final error line. The decoder is reset afterwards
    /// so a following stream (next connection) starts clean.
    pub fn finish_input(&mut self) -> Vec<String> {
        let out = match self.decoder.finish() {
            Ok(()) => Vec::new(),
            Err(e) => {
                self.recorder.add("server.frames_rejected", 1);
                self.lines_emitted += 1;
                vec![render_error(&format!("frame error: {e}"))]
            }
        };
        self.decoder.reset();
        self.conn_response_bytes = 0;
        out
    }

    /// Handles one complete frame payload and returns its response
    /// lines. This is the replay entry point: feeding the same payload
    /// sequence to a fresh core always produces the same lines.
    pub fn handle_frame(&mut self, payload: &[u8]) -> Vec<String> {
        let mut out = Vec::new();
        match parse_request(payload) {
            Err(message) => {
                self.recorder.add("server.frames_rejected", 1);
                out.push(render_error(&message));
            }
            Ok(request) => {
                self.recorder.add("server.frames_ingested", 1);
                self.dispatch(request, &mut out);
            }
        }
        self.frames_processed += 1;
        self.lines_emitted += out.len() as u64;
        if self.auto_checkpoint_due {
            self.auto_checkpoint_due = false;
            // Best-effort, after this frame's accounting is final so the
            // sidecar's offsets point exactly past it.
            if let Err(e) = self.write_checkpoint(self.frames_processed, self.lines_emitted) {
                self.recorder.add("server.checkpoint_errors", 1);
                self.last_checkpoint_error = Some(e.to_string());
            }
        }
        out
    }

    /// The admission gate: decides whether `request` is shed under the
    /// configured overload limits, returning the `busy` line if so. Data
    /// frames are bounded per tick interval (and by the connection byte
    /// cap); subscribes by the registry cap. Any shed arms tick
    /// deferral, so the next tick refills the budget instead of
    /// evaluating a torn interval.
    fn admission(&mut self, request: &Request) -> Option<String> {
        let (op, second) = match request {
            Request::Readings { second, .. } => ("reading", Some(*second)),
            Request::Raw { second, .. } => ("raw", Some(*second)),
            Request::Subscribe { sub, .. } => {
                if self.config.max_subscriptions > 0
                    && self.registry.len() as u64 >= self.config.max_subscriptions
                {
                    self.recorder.add("server.overload.subscriptions_shed", 1);
                    self.recorder.add("server.overload.busy_responses", 1);
                    self.shed_since_tick = true;
                    return Some(render_busy("subscribe", &[("sub", sub.to_string())], 1));
                }
                return None;
            }
            _ => return None,
        };
        let second = second.unwrap_or(0);
        if self.config.max_conn_response_bytes > 0
            && self.conn_response_bytes >= self.config.max_conn_response_bytes
        {
            self.recorder.add("server.overload.conn_bytes_shed", 1);
            self.recorder.add("server.overload.busy_responses", 1);
            self.shed_since_tick = true;
            return Some(render_busy(op, &[("second", second.to_string())], 1));
        }
        if self.config.max_frames_per_tick > 0 {
            if self.frames_this_interval >= self.config.max_frames_per_tick {
                self.recorder.add("server.overload.frames_shed", 1);
                self.recorder.add("server.overload.busy_responses", 1);
                self.shed_since_tick = true;
                return Some(render_busy(op, &[("second", second.to_string())], 1));
            }
            self.frames_this_interval += 1;
        }
        None
    }

    fn dispatch(&mut self, request: Request, out: &mut Vec<String>) {
        if let Some(busy) = self.admission(&request) {
            out.push(busy);
            return;
        }
        match request {
            Request::Readings { second, detections } => {
                self.system.ingest_detections(second, &detections);
                out.push(render_ok(
                    "reading",
                    &[
                        ("second", second.to_string()),
                        ("count", detections.len().to_string()),
                    ],
                ));
            }
            Request::Raw { second, samples } => {
                self.system.ingest_raw(second, &samples);
                out.push(render_ok(
                    "raw",
                    &[
                        ("second", second.to_string()),
                        ("count", samples.len().to_string()),
                    ],
                ));
            }
            Request::Subscribe { sub, kind } => self.subscribe(sub, kind, out),
            Request::Unsubscribe { sub } => match self.registry.remove(sub) {
                Some(s) => {
                    let _ = self.system.deregister(s.query);
                    self.recorder.add("server.subscriptions_closed", 1);
                    self.recorder
                        .set_gauge("server.subscriptions_active", self.registry.len() as u64);
                    out.push(render_ok("unsubscribe", &[("sub", sub.to_string())]));
                }
                None => out.push(render_error(&format!("unknown subscription {sub}"))),
            },
            Request::Tick { second, budget } => {
                if self.shed_since_tick {
                    // Something was shed this interval: the collector
                    // timeline is incomplete, so evaluating now would
                    // diverge from the unthrottled stream. Defer the
                    // tick, refill the budget, and let the client retry
                    // — resending the shed frames first.
                    self.shed_since_tick = false;
                    self.frames_this_interval = 0;
                    self.recorder.add("server.overload.ticks_deferred", 1);
                    self.recorder.add("server.overload.busy_responses", 1);
                    out.push(render_busy("tick", &[("second", second.to_string())], 1));
                } else {
                    self.frames_this_interval = 0;
                    self.tick(second, budget, out);
                }
            }
            Request::DeadLetters { drain } => {
                out.push(self.render_dead_letters());
                if drain {
                    self.dead_letters.clear();
                }
            }
            Request::Metrics => out.push(self.metrics_json()),
            Request::Checkpoint => {
                // Offsets include this frame and its single ack line —
                // both success and failure paths emit exactly one.
                let frames_after = self.frames_processed + 1;
                let lines_after = self.lines_emitted + out.len() as u64 + 1;
                match self.write_checkpoint(frames_after, lines_after) {
                    Ok(()) => out.push(render_ok("checkpoint", &[])),
                    Err(e) => out.push(render_error(&e.to_string())),
                }
            }
            Request::Shutdown => {
                // Graceful: persist both snapshots before the ack so an
                // operator-initiated stop never races the checkpoint
                // cadence. Best-effort — a failed write is surfaced via
                // counters, never blocks shutdown.
                if self.checkpoint_dir.is_some() {
                    let frames_after = self.frames_processed + 1;
                    let lines_after = self.lines_emitted + out.len() as u64 + 1;
                    if let Err(e) = self.write_checkpoint(frames_after, lines_after) {
                        self.recorder.add("server.checkpoint_errors", 1);
                        self.last_checkpoint_error = Some(e.to_string());
                    }
                }
                self.shutdown = true;
                out.push(render_ok("shutdown", &[]));
            }
        }
    }

    /// Renders the dead-letter queue as one deterministic JSON line.
    fn render_dead_letters(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"dead_letters\":{},\"letters\":[",
            self.dead_letters.len()
        );
        for (i, letter) in self.dead_letters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"executor\":");
            json::render_str(&letter.executor, &mut out);
            let _ = write!(
                out,
                ",\"event\":\"{}\",\"second\":{},\"reason\":",
                letter.event.name(),
                letter.second
            );
            json::render_str(&letter.reason, &mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Queues an undeliverable event, evicting the oldest letter (with
    /// accounting — never silently) when the bounded queue is full.
    fn push_dead_letter(&mut self, letter: DeadLetter) {
        let capacity = self.config.supervisor.dead_letter_capacity.max(1);
        while self.dead_letters.len() >= capacity {
            self.dead_letters.pop_front();
            self.recorder.add("server.executor.dead_letters_dropped", 1);
        }
        self.dead_letters.push_back(letter);
        self.recorder.add("server.executor.dead_letters", 1);
    }

    fn subscribe(&mut self, sub: u64, kind: SubscriptionKind, out: &mut Vec<String>) {
        let registered = match kind {
            SubscriptionKind::Range(window) => self.system.register_range(window),
            SubscriptionKind::Knn(point, k) => self.system.register_knn(point, k),
        };
        let query = match registered {
            Ok(query) => query,
            Err(e) => {
                out.push(render_error(&e.to_string()));
                return;
            }
        };
        match self.registry.insert(sub, kind, query) {
            Ok(()) => {
                self.recorder.add("server.subscriptions_opened", 1);
                self.recorder
                    .set_gauge("server.subscriptions_active", self.registry.len() as u64);
                out.push(render_ok("subscribe", &[("sub", sub.to_string())]));
            }
            Err(e) => {
                let _ = self.system.deregister(query);
                out.push(render_error(&e.to_string()));
            }
        }
    }

    fn tick(&mut self, second: u64, budget: Option<u64>, out: &mut Vec<String>) {
        let effective_budget = budget.or(self.config.query_budget);
        let report = self.system.evaluate_budgeted(second, effective_budget);
        let worst_degradation = report
            .degradation
            .values()
            .chain(report.object_degradation.values())
            .copied()
            .max()
            .unwrap_or(DegradationLevel::Full);
        let deltas = self.registry.deltas(&report);
        let mut events: Vec<ServerEvent> = Vec::new();
        for (sub, delta) in &deltas {
            out.push(render_delta(*sub, second, delta));
            // Geofence semantics apply to range subscriptions: their
            // window is the fence.
            let is_range = matches!(
                self.registry.get(*sub).map(|s| s.kind),
                Some(SubscriptionKind::Range(_))
            );
            if is_range {
                for (object, _) in &delta.appeared {
                    events.push(ServerEvent::GeofenceEntered {
                        sub: *sub,
                        object: *object,
                        second,
                    });
                }
                for object in &delta.disappeared {
                    events.push(ServerEvent::GeofenceLeft {
                        sub: *sub,
                        object: *object,
                        second,
                    });
                }
            }
        }
        // Silence detection: one alert per silent episode, re-armed by
        // any re-detection. Collector iteration is id-ordered, so event
        // order is stable.
        let silent: Vec<(ObjectId, u64)> = self
            .system
            .collector()
            .objects()
            .filter_map(|o| {
                self.system
                    .collector()
                    .last_detection(o)
                    .map(|(_, last)| (o, last))
            })
            .collect();
        for (object, last_seen) in silent {
            if second.saturating_sub(last_seen) > self.config.unseen_after {
                if self.unseen_alerted.insert(object) {
                    events.push(ServerEvent::ObjectUnseen {
                        object,
                        second,
                        last_seen,
                    });
                }
            } else {
                self.unseen_alerted.remove(&object);
            }
        }
        self.recorder.add("server.ticks", 1);
        self.recorder
            .add("server.deltas_emitted", deltas.len() as u64);
        self.recorder
            .add("server.events_fired", events.len() as u64);
        let seed = self.config.seed;
        let policy = self.config.supervisor;
        let mut letters = Vec::new();
        for event in &events {
            for executor in &mut self.executors {
                match executor.dispatch(event, second, &policy, seed, &self.recorder) {
                    DispatchOutcome::Delivered(frames) => out.extend(frames),
                    DispatchOutcome::DeadLettered(letter) => letters.push(letter),
                }
            }
        }
        for letter in letters {
            self.push_dead_letter(letter);
        }
        self.recorder.set_gauge(
            "server.executor.quarantined",
            self.executors.iter().filter(|e| e.is_quarantined()).count() as u64,
        );
        let mut ack_fields = vec![
            ("second", second.to_string()),
            ("deltas", deltas.len().to_string()),
            ("events", events.len().to_string()),
        ];
        // The degradation tag appears only when a per-request deadline
        // was supplied or evaluation actually degraded — existing golden
        // transcripts (no budget, Full fidelity) are unchanged.
        if budget.is_some() || worst_degradation > DegradationLevel::Full {
            ack_fields.push(("degradation", format!("\"{worst_degradation}\"")));
        }
        out.push(render_ok("tick", &ack_fields));
        self.last_tick = Some(second);
        if self.config.checkpoint_every_ticks > 0 && self.checkpoint_dir.is_some() {
            self.ticks_since_checkpoint += 1;
            if self.ticks_since_checkpoint >= self.config.checkpoint_every_ticks {
                self.ticks_since_checkpoint = 0;
                self.auto_checkpoint_due = true;
            }
        }
    }

    /// Writes `system.ckpt` plus the server sidecar, recording the given
    /// final frame/line offsets in the sidecar.
    fn write_checkpoint(
        &mut self,
        frames_processed: u64,
        lines_emitted: u64,
    ) -> Result<(), RipqError> {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return Err(RipqError::Io(
                "no checkpoint directory configured".to_string(),
            ));
        };
        self.system.checkpoint_now()?;
        SidecarState::capture(
            frames_processed,
            lines_emitted,
            self.last_tick,
            &self.unseen_alerted,
            &self.registry,
            self.executors
                .iter()
                .map(|e| (e.name().to_string(), e.consecutive_failures, e.breaker))
                .collect(),
            self.dead_letters.iter().cloned().collect(),
        )
        .save(&dir)
        .map_err(|e| RipqError::Io(format!("server.ckpt: {e}")))?;
        self.recorder.add("server.checkpoints_written", 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::CountingExecutor;
    use crate::frame::encode_frame;
    use ripq_floorplan::{office_building, OfficeParams};

    fn core() -> ServerCore {
        let plan = office_building(&OfficeParams::default()).unwrap();
        ServerCore::new(plan, ServerConfig::default())
    }

    fn one(core: &mut ServerCore, payload: &str) -> Vec<String> {
        core.handle_frame(payload.as_bytes())
    }

    #[test]
    fn reading_subscribe_tick_produces_deltas_and_events() {
        let mut core = core();
        let reader = core.system().readers()[2];
        let window = ripq_geom::Rect::centered(reader.position(), 10.0, 6.0);
        let sub_frame = format!(
            "{{\"op\":\"subscribe\",\"sub\":4,\"range\":[{},{},{},{}]}}",
            window.min().x,
            window.min().y,
            window.width(),
            window.height()
        );
        assert_eq!(
            one(&mut core, &sub_frame),
            vec!["{\"ok\":\"subscribe\",\"sub\":4}"]
        );
        for s in 0..3u64 {
            let frame = format!(
                "{{\"op\":\"reading\",\"second\":{s},\"readings\":[[0,{}]]}}",
                reader.id().raw()
            );
            let lines = one(&mut core, &frame);
            assert_eq!(lines.len(), 1);
            assert!(lines[0].starts_with("{\"ok\":\"reading\""));
        }
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":3}");
        // Delta, geofence event, tick ack.
        assert!(lines[0].starts_with("{\"delta\":{\"sub\":4,"));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"geofence_entered\"")));
        assert!(lines.last().unwrap().starts_with("{\"ok\":\"tick\""));
        assert_eq!(core.frames_processed(), 5);
        assert_eq!(core.lines_emitted() as usize, 4 + lines.len());

        // Unseen alert fires once the object stays silent past 60 s.
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":70}");
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"object_unseen\"")));
        let again = one(&mut core, "{\"op\":\"tick\",\"second\":71}");
        assert!(
            !again.iter().any(|l| l.contains("object_unseen")),
            "one alert per silent episode: {again:?}"
        );
    }

    #[test]
    fn replay_is_deterministic_across_worker_counts() {
        let reader_pos = core().system().readers()[2].position();
        let window = ripq_geom::Rect::centered(reader_pos, 10.0, 6.0);
        let frames: Vec<String> = {
            let mut f = vec![format!(
                "{{\"op\":\"subscribe\",\"sub\":1,\"range\":[{},{},{},{}]}}",
                window.min().x,
                window.min().y,
                window.width(),
                window.height()
            )];
            f.push(format!(
                "{{\"op\":\"subscribe\",\"sub\":2,\"point\":[{},{}],\"k\":2}}",
                reader_pos.x, reader_pos.y
            ));
            for s in 0..6u64 {
                f.push(format!(
                    "{{\"op\":\"reading\",\"second\":{s},\"readings\":[[0,2],[1,{}]]}}",
                    (s % 3) + 4
                ));
            }
            f.push("{\"op\":\"tick\",\"second\":6}".to_string());
            f.push("{\"op\":\"metrics\"}".to_string());
            f.push("{\"op\":\"shutdown\"}".to_string());
            f
        };
        let run = |workers: Option<usize>| -> Vec<String> {
            let plan = office_building(&OfficeParams::default()).unwrap();
            let mut core = ServerCore::new(
                plan,
                ServerConfig {
                    workers,
                    ..ServerConfig::default()
                },
            );
            let mut out = Vec::new();
            for f in &frames {
                out.extend(core.handle_frame(f.as_bytes()));
            }
            assert!(core.is_shutdown());
            out
        };
        let a = run(None);
        let b = run(Some(2));
        let c = run(Some(4));
        assert_eq!(a, b, "worker count must not change output");
        assert_eq!(a, c);
    }

    #[test]
    fn malformed_frames_reject_without_poisoning_the_stream() {
        let mut core = core();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(b"not json at all"));
        bytes.extend_from_slice(&0u32.to_be_bytes()); // empty frame
        bytes.extend_from_slice(&encode_frame(b"{\"op\":\"tick\",\"second\":0}"));
        let lines = core.ingest_bytes(&bytes);
        assert!(lines[0].starts_with("{\"error\":"));
        assert!(lines[1].starts_with("{\"error\":"));
        assert!(lines.last().unwrap().starts_with("{\"ok\":\"tick\""));
        assert!(core.finish_input().is_empty());
        // A cut-off frame surfaces at end of stream.
        core.decoder.push(&[0, 0, 0]);
        let tail = core.finish_input();
        assert_eq!(tail.len(), 1);
        assert!(tail[0].contains("mid-frame"));
    }

    #[test]
    fn subscription_lifecycle_and_errors() {
        let mut core = core();
        assert_eq!(
            one(
                &mut core,
                "{\"op\":\"subscribe\",\"sub\":1,\"range\":[0,0,5,5]}"
            )
            .len(),
            1
        );
        let dup = one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":1,\"range\":[0,0,5,5]}",
        );
        assert!(dup[0].contains("already registered"));
        // Query rollback happened: only sub 1's query remains.
        assert_eq!(core.system().query_count(), 1);
        let bad = one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":2,\"point\":[0,0],\"k\":0}",
        );
        assert!(bad[0].starts_with("{\"error\":"));
        assert_eq!(
            one(&mut core, "{\"op\":\"unsubscribe\",\"sub\":1}"),
            vec!["{\"ok\":\"unsubscribe\",\"sub\":1}"]
        );
        assert_eq!(core.system().query_count(), 0);
        assert!(one(&mut core, "{\"op\":\"unsubscribe\",\"sub\":1}")[0].contains("unknown"));
    }

    #[test]
    fn custom_executors_see_events() {
        let mut core = core();
        core.clear_executors();
        core.push_executor(Box::new(CountingExecutor::default()));
        one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":1,\"range\":[-500,-500,1000,1000]}",
        );
        let reader = core.system().readers()[0].id().raw();
        one(
            &mut core,
            &format!("{{\"op\":\"reading\",\"second\":0,\"readings\":[[0,{reader}]]}}"),
        );
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":0}");
        // Counting executor emits nothing; only delta + ack remain.
        assert!(lines.iter().all(|l| !l.contains("\"event\"")));
        assert!(lines.last().unwrap().contains("\"events\":1"));
    }

    #[test]
    fn checkpoint_without_dir_is_a_clean_error() {
        let mut core = core();
        let lines = one(&mut core, "{\"op\":\"checkpoint\"}");
        assert!(lines[0].contains("no checkpoint directory"));
        assert!(core.last_checkpoint_error().is_none());
    }

    #[test]
    fn metrics_frame_is_deterministic_json() {
        let mut core = core();
        let m1 = one(&mut core, "{\"op\":\"metrics\"}");
        assert_eq!(m1.len(), 1);
        assert!(m1[0].contains("\"counters\""));
        assert_eq!(core.metrics_json(), core.metrics_json());
    }

    fn overloaded_core(max_frames_per_tick: u64) -> ServerCore {
        let plan = office_building(&OfficeParams::default()).unwrap();
        ServerCore::new(
            plan,
            ServerConfig {
                max_frames_per_tick,
                ..ServerConfig::default()
            },
        )
    }

    #[test]
    fn frames_past_the_budget_get_busy_and_the_tick_defers_once() {
        let mut core = overloaded_core(2);
        for s in 0..2u64 {
            let lines = one(
                &mut core,
                &format!("{{\"op\":\"reading\",\"second\":{s},\"readings\":[[0,1]]}}"),
            );
            assert!(lines[0].starts_with("{\"ok\":\"reading\""), "{lines:?}");
        }
        let shed = one(
            &mut core,
            "{\"op\":\"reading\",\"second\":2,\"readings\":[[0,1]]}",
        );
        assert_eq!(
            shed,
            vec!["{\"busy\":\"reading\",\"second\":2,\"retry_after_ticks\":1}"]
        );
        // The tick after a shed is deferred and refills the budget.
        let deferred = one(&mut core, "{\"op\":\"tick\",\"second\":3}");
        assert_eq!(
            deferred,
            vec!["{\"busy\":\"tick\",\"second\":3,\"retry_after_ticks\":1}"]
        );
        // Resend of the shed frame is now admitted; the retried tick runs.
        let resent = one(
            &mut core,
            "{\"op\":\"reading\",\"second\":2,\"readings\":[[0,1]]}",
        );
        assert!(resent[0].starts_with("{\"ok\":\"reading\""));
        let ticked = one(&mut core, "{\"op\":\"tick\",\"second\":3}");
        assert!(ticked.last().unwrap().starts_with("{\"ok\":\"tick\""));
        let metrics = core.metrics_json();
        assert!(metrics.contains("server.overload.frames_shed"));
        assert!(metrics.contains("server.overload.ticks_deferred"));
    }

    #[test]
    fn subscription_cap_sheds_subscribes() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut core = ServerCore::new(
            plan,
            ServerConfig {
                max_subscriptions: 1,
                ..ServerConfig::default()
            },
        );
        assert!(one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":1,\"range\":[0,0,5,5]}"
        )[0]
        .starts_with("{\"ok\":"));
        let shed = one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":2,\"range\":[0,0,5,5]}",
        );
        assert_eq!(
            shed,
            vec!["{\"busy\":\"subscribe\",\"sub\":2,\"retry_after_ticks\":1}"]
        );
        // Freeing a slot lets the retried subscribe in (after the
        // deferred tick clears the shed flag).
        one(&mut core, "{\"op\":\"unsubscribe\",\"sub\":1}");
        one(&mut core, "{\"op\":\"tick\",\"second\":0}");
        let retried = one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":2,\"range\":[0,0,5,5]}",
        );
        assert_eq!(retried, vec!["{\"ok\":\"subscribe\",\"sub\":2}"]);
    }

    #[test]
    fn per_request_budget_tags_the_tick_ack() {
        let mut core = core();
        // A whole-floor subscription so every detected object answers —
        // the degradation tag is the worst level among answering objects.
        one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":1,\"range\":[-500,-500,1000,1000]}",
        );
        let readers: Vec<u32> = core
            .system()
            .readers()
            .iter()
            .map(|r| r.id().raw())
            .collect();
        let feed = |core: &mut ServerCore, s: u64| {
            let readings: Vec<String> = readers
                .iter()
                .enumerate()
                .map(|(o, r)| format!("[{o},{r}]"))
                .collect();
            one(
                core,
                &format!(
                    "{{\"op\":\"reading\",\"second\":{s},\"readings\":[{}]}}",
                    readings.join(",")
                ),
            );
        };
        for s in 0..3u64 {
            feed(&mut core, s);
        }
        // A generous explicit budget stays at full fidelity but is tagged.
        let lines = one(
            &mut core,
            "{\"op\":\"tick\",\"second\":3,\"budget\":100000000}",
        );
        let ack = lines.last().unwrap();
        assert!(ack.contains("\"degradation\":\"full\""), "{ack}");
        // A starvation budget degrades below Full.
        for s in 4..6u64 {
            feed(&mut core, s);
        }
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":6,\"budget\":1}");
        let ack = lines.last().unwrap();
        assert!(ack.contains("\"degradation\":"), "{ack}");
        assert!(!ack.contains("\"degradation\":\"full\""), "{ack}");
        // No budget, no degradation → no tag (golden stability).
        feed(&mut core, 7);
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":8}");
        assert!(!lines.last().unwrap().contains("degradation"));
    }

    #[test]
    fn dead_letters_op_lists_and_drains() {
        let mut core = core();
        let lines = one(&mut core, "{\"op\":\"dead_letters\"}");
        assert_eq!(lines, vec!["{\"dead_letters\":0,\"letters\":[]}"]);
        // Inject letters directly; executor-driven paths are covered by
        // the integration tests.
        core.push_dead_letter(DeadLetter {
            executor: "e".to_string(),
            event: ServerEvent::ObjectUnseen {
                object: ObjectId::new(1),
                second: 5,
                last_seen: 0,
            },
            second: 5,
            reason: "panic: \"quoted\"".to_string(),
        });
        let listed = one(&mut core, "{\"op\":\"dead_letters\"}");
        assert_eq!(listed.len(), 1);
        assert!(listed[0].starts_with("{\"dead_letters\":1,"));
        assert!(listed[0].contains("\"event\":\"object_unseen\""));
        assert!(
            listed[0].contains("\\\"quoted\\\""),
            "reason is escaped: {}",
            listed[0]
        );
        let drained = one(&mut core, "{\"op\":\"dead_letters\",\"drain\":true}");
        assert!(drained[0].starts_with("{\"dead_letters\":1,"));
        assert_eq!(
            one(&mut core, "{\"op\":\"dead_letters\"}"),
            vec!["{\"dead_letters\":0,\"letters\":[]}"]
        );
    }

    #[test]
    fn dead_letter_queue_is_capacity_bounded() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut core = ServerCore::new(
            plan,
            ServerConfig {
                supervisor: SupervisorPolicy {
                    dead_letter_capacity: 2,
                    ..SupervisorPolicy::default()
                },
                ..ServerConfig::default()
            },
        );
        for second in 0..4u64 {
            core.push_dead_letter(DeadLetter {
                executor: "e".to_string(),
                event: ServerEvent::ObjectUnseen {
                    object: ObjectId::new(1),
                    second,
                    last_seen: 0,
                },
                second,
                reason: "r".to_string(),
            });
        }
        let seconds: Vec<u64> = core.dead_letters().map(|l| l.second).collect();
        assert_eq!(seconds, vec![2, 3], "oldest letters evicted first");
        assert!(core
            .metrics_json()
            .contains("server.executor.dead_letters_dropped"));
    }

    #[test]
    fn graceful_shutdown_checkpoints_before_the_ack() {
        let dir = std::env::temp_dir().join("ripq_core_graceful_shutdown");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut core = core();
        core.set_checkpoint_dir(&dir);
        one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":3,\"range\":[0,0,9,9]}",
        );
        let lines = one(&mut core, "{\"op\":\"shutdown\"}");
        assert_eq!(lines, vec!["{\"ok\":\"shutdown\"}"]);
        assert!(core.is_shutdown());
        assert!(core.last_checkpoint_error().is_none());
        assert!(dir.join("server.ckpt").exists(), "sidecar written");
        assert!(dir.join("system.ckpt").exists(), "system snapshot written");
        let state = SidecarState::load(&dir).unwrap();
        assert_eq!(
            state.frames_processed, 2,
            "offsets include the shutdown frame"
        );
        assert_eq!(state.subscriptions.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
