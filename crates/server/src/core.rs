//! The deterministic server engine: frames in, response lines out.
//!
//! `ServerCore` is the whole daemon minus IO. It consumes decoded frame
//! payloads (or raw stream bytes via its embedded [`FrameDecoder`]) and
//! produces response frames as strings, in order. Because it never reads
//! a clock, never touches thread-dependent state and drives the
//! `IndoorQuerySystem` under logical timing, the full response stream is
//! a pure function of the input frame sequence — the transcript-replay
//! tests byte-compare it across runs and worker counts.

use crate::checkpoint::{quarantine_sidecar, SidecarState};
use crate::executor::{Executor, FrameExecutor, ServerEvent};
use crate::frame::FrameDecoder;
use crate::protocol::{parse_request, render_delta, render_error, render_ok, Request};
use ripq_core::clock::TimingMode;
use ripq_core::continuous::{SubscriptionKind, SubscriptionRegistry};
use ripq_core::{IndoorQuerySystem, Recorder, RecoveryOutcome, RipqError, SystemConfig};
use ripq_floorplan::FloorPlan;
use ripq_persist::PersistError;
use ripq_rfid::ObjectId;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Server behavior knobs. Everything else — timing, observability —
/// is pinned to the deterministic settings the replay contract needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Master seed for the underlying system's stochastic machinery.
    pub seed: u64,
    /// Worker threads for particle-filter preprocessing; results are
    /// bit-identical for every setting.
    pub workers: Option<usize>,
    /// Write a durable checkpoint after every N ticks (0 = only on
    /// explicit `checkpoint` frames). Needs a checkpoint directory.
    pub checkpoint_every_ticks: u64,
    /// Seconds of reader silence after which an object fires
    /// [`ServerEvent::ObjectUnseen`] (re-armed by re-detection).
    pub unseen_after: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            seed: 7,
            workers: None,
            checkpoint_every_ticks: 0,
            unseen_after: 60,
        }
    }
}

impl ServerConfig {
    /// The pinned system configuration this server runs: logical timing
    /// and observability on (both required for byte-stable replay),
    /// parallelism from [`ServerConfig::workers`].
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            timing: TimingMode::Logical,
            observability: true,
            parallelism: self.workers,
            // The server owns checkpoint cadence (per tick, via
            // `checkpoint_every_ticks`); the facade's per-second
            // auto-checkpoint stays off so the two never interleave.
            checkpoint_every: 0,
            ..SystemConfig::default()
        }
    }
}

/// How a [`ServerCore::recover`] call concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerRecovery {
    /// No snapshot existed; the server starts fresh.
    ColdStart,
    /// Both `system.ckpt` and `server.ckpt` restored. The replay driver
    /// skips `skip_frames` input frames; the resumed response stream
    /// continues at line `lines_emitted` of the uninterrupted output.
    Resumed {
        /// Input frames already covered by the snapshot.
        skip_frames: u64,
        /// Response lines already emitted before the snapshot.
        lines_emitted: u64,
    },
    /// A damaged snapshot was moved aside. The core's state is not
    /// usable for resumption — discard it and build a fresh one.
    Quarantined {
        /// Where the damaged file went.
        path: PathBuf,
    },
}

/// The deterministic, IO-free server engine.
pub struct ServerCore {
    system: IndoorQuerySystem,
    registry: SubscriptionRegistry,
    executors: Vec<Box<dyn Executor>>,
    recorder: Recorder,
    decoder: FrameDecoder,
    config: ServerConfig,
    checkpoint_dir: Option<PathBuf>,
    unseen_alerted: BTreeSet<ObjectId>,
    frames_processed: u64,
    lines_emitted: u64,
    last_tick: Option<u64>,
    ticks_since_checkpoint: u64,
    auto_checkpoint_due: bool,
    last_checkpoint_error: Option<String>,
    shutdown: bool,
}

impl ServerCore {
    /// Builds a server over `plan` with the built-in [`FrameExecutor`]
    /// installed (standard event frames).
    pub fn new(plan: FloorPlan, config: ServerConfig) -> Self {
        let system = IndoorQuerySystem::new(plan, config.system_config(), config.seed);
        let recorder = system.recorder().clone();
        ServerCore {
            system,
            registry: SubscriptionRegistry::new(),
            executors: vec![Box::new(FrameExecutor)],
            recorder,
            decoder: FrameDecoder::new(),
            config,
            checkpoint_dir: None,
            unseen_alerted: BTreeSet::new(),
            frames_processed: 0,
            lines_emitted: 0,
            last_tick: None,
            ticks_since_checkpoint: 0,
            auto_checkpoint_due: false,
            last_checkpoint_error: None,
            shutdown: false,
        }
    }

    /// Installs an additional executor (runs after the built-ins, in
    /// installation order).
    pub fn push_executor(&mut self, executor: Box<dyn Executor>) {
        self.executors.push(executor);
    }

    /// Removes every installed executor (including the built-in frame
    /// renderer) — for callers that only want delta output.
    pub fn clear_executors(&mut self) {
        self.executors.clear();
    }

    /// Configures where durable snapshots (`system.ckpt` +
    /// `server.ckpt`) are written.
    pub fn set_checkpoint_dir(&mut self, dir: impl Into<PathBuf>) {
        let dir = dir.into();
        self.system.set_checkpoint_dir(&dir);
        self.checkpoint_dir = Some(dir);
    }

    /// The underlying query system (read access).
    pub fn system(&self) -> &IndoorQuerySystem {
        &self.system
    }

    /// Open subscriptions.
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.registry
    }

    /// Complete input frames handled so far (well-formed or rejected).
    pub fn frames_processed(&self) -> u64 {
        self.frames_processed
    }

    /// Response lines emitted so far.
    pub fn lines_emitted(&self) -> u64 {
        self.lines_emitted
    }

    /// `true` once a `shutdown` frame was acknowledged.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// The rendered error of the most recent failed best-effort
    /// automatic checkpoint, if any.
    pub fn last_checkpoint_error(&self) -> Option<&str> {
        self.last_checkpoint_error.as_deref()
    }

    /// The current cumulative metrics snapshot as deterministic JSON.
    pub fn metrics_json(&self) -> String {
        self.recorder.snapshot().to_json()
    }

    /// Attempts to restore a previous life from `dir` and makes it the
    /// checkpoint directory. Call on a freshly built core (no
    /// subscriptions, no frames handled). See [`ServerRecovery`] for the
    /// contract; on `Quarantined`, discard this core.
    pub fn recover(&mut self, dir: impl Into<PathBuf>) -> Result<ServerRecovery, RipqError> {
        let dir = dir.into();
        let outcome = self.system.recover(&dir)?;
        self.checkpoint_dir = Some(dir.clone());
        match outcome {
            RecoveryOutcome::ColdStart => Ok(ServerRecovery::ColdStart),
            RecoveryOutcome::Quarantined { path } => Ok(ServerRecovery::Quarantined { path }),
            RecoveryOutcome::Resumed { .. } => self.restore_sidecar(&dir),
        }
    }

    fn restore_sidecar(&mut self, dir: &Path) -> Result<ServerRecovery, RipqError> {
        let state = match SidecarState::load(dir) {
            Ok(state) => state,
            Err(PersistError::Missing) => {
                return Err(RipqError::Io(
                    "system snapshot resumed but server.ckpt is missing".to_string(),
                ));
            }
            Err(_damaged) => {
                let path = quarantine_sidecar(dir)
                    .map_err(|e| RipqError::Io(format!("quarantine server.ckpt: {e}")))?;
                return Ok(ServerRecovery::Quarantined { path });
            }
        };
        // Re-register subscriptions in id order. Engine QueryIds may
        // differ from the previous life; the subscription id is the
        // stable identity and results never depend on QueryId values.
        for (sub, kind, current) in state.subscriptions {
            let query = match kind {
                SubscriptionKind::Range(window) => self.system.register_range(window),
                SubscriptionKind::Knn(point, k) => self.system.register_knn(point, k),
            }
            .map_err(|e| RipqError::Io(format!("re-register subscription {sub}: {e}")))?;
            self.registry
                .insert(sub, kind, query)
                .map_err(|e| RipqError::Io(format!("re-register subscription {sub}: {e}")))?;
            self.registry.restore_current(sub, current);
        }
        self.recorder
            .set_gauge("server.subscriptions_active", self.registry.len() as u64);
        self.frames_processed = state.frames_processed;
        self.lines_emitted = state.lines_emitted;
        self.last_tick = state.last_tick;
        self.unseen_alerted = state.unseen_alerted;
        self.ticks_since_checkpoint = 0;
        Ok(ServerRecovery::Resumed {
            skip_frames: state.frames_processed,
            lines_emitted: state.lines_emitted,
        })
    }

    /// Feeds raw stream bytes through the embedded frame decoder and
    /// handles every complete frame. Frame-level errors (oversized,
    /// empty) become error lines and the decoder resyncs, so one bad
    /// frame never takes later ones down.
    pub fn ingest_bytes(&mut self, chunk: &[u8]) -> Vec<String> {
        self.decoder.push(chunk);
        let mut out = Vec::new();
        while !self.shutdown {
            match self.decoder.next_frame() {
                None => break,
                Some(Ok(payload)) => out.extend(self.handle_frame(&payload)),
                Some(Err(e)) => {
                    self.recorder.add("server.frames_rejected", 1);
                    out.push(render_error(&format!("frame error: {e}")));
                    self.lines_emitted += 1;
                }
            }
        }
        out
    }

    /// Declares end-of-stream on the embedded decoder: a pending partial
    /// frame becomes a final error line. The decoder is reset afterwards
    /// so a following stream (next connection) starts clean.
    pub fn finish_input(&mut self) -> Vec<String> {
        let out = match self.decoder.finish() {
            Ok(()) => Vec::new(),
            Err(e) => {
                self.recorder.add("server.frames_rejected", 1);
                self.lines_emitted += 1;
                vec![render_error(&format!("frame error: {e}"))]
            }
        };
        self.decoder.reset();
        out
    }

    /// Handles one complete frame payload and returns its response
    /// lines. This is the replay entry point: feeding the same payload
    /// sequence to a fresh core always produces the same lines.
    pub fn handle_frame(&mut self, payload: &[u8]) -> Vec<String> {
        let mut out = Vec::new();
        match parse_request(payload) {
            Err(message) => {
                self.recorder.add("server.frames_rejected", 1);
                out.push(render_error(&message));
            }
            Ok(request) => {
                self.recorder.add("server.frames_ingested", 1);
                self.dispatch(request, &mut out);
            }
        }
        self.frames_processed += 1;
        self.lines_emitted += out.len() as u64;
        if self.auto_checkpoint_due {
            self.auto_checkpoint_due = false;
            // Best-effort, after this frame's accounting is final so the
            // sidecar's offsets point exactly past it.
            if let Err(e) = self.write_checkpoint(self.frames_processed, self.lines_emitted) {
                self.recorder.add("server.checkpoint_errors", 1);
                self.last_checkpoint_error = Some(e.to_string());
            }
        }
        out
    }

    fn dispatch(&mut self, request: Request, out: &mut Vec<String>) {
        match request {
            Request::Readings { second, detections } => {
                self.system.ingest_detections(second, &detections);
                out.push(render_ok(
                    "reading",
                    &[
                        ("second", second.to_string()),
                        ("count", detections.len().to_string()),
                    ],
                ));
            }
            Request::Raw { second, samples } => {
                self.system.ingest_raw(second, &samples);
                out.push(render_ok(
                    "raw",
                    &[
                        ("second", second.to_string()),
                        ("count", samples.len().to_string()),
                    ],
                ));
            }
            Request::Subscribe { sub, kind } => self.subscribe(sub, kind, out),
            Request::Unsubscribe { sub } => match self.registry.remove(sub) {
                Some(s) => {
                    let _ = self.system.deregister(s.query);
                    self.recorder.add("server.subscriptions_closed", 1);
                    self.recorder
                        .set_gauge("server.subscriptions_active", self.registry.len() as u64);
                    out.push(render_ok("unsubscribe", &[("sub", sub.to_string())]));
                }
                None => out.push(render_error(&format!("unknown subscription {sub}"))),
            },
            Request::Tick { second } => self.tick(second, out),
            Request::Metrics => out.push(self.metrics_json()),
            Request::Checkpoint => {
                // Offsets include this frame and its single ack line —
                // both success and failure paths emit exactly one.
                let frames_after = self.frames_processed + 1;
                let lines_after = self.lines_emitted + out.len() as u64 + 1;
                match self.write_checkpoint(frames_after, lines_after) {
                    Ok(()) => out.push(render_ok("checkpoint", &[])),
                    Err(e) => out.push(render_error(&e.to_string())),
                }
            }
            Request::Shutdown => {
                self.shutdown = true;
                out.push(render_ok("shutdown", &[]));
            }
        }
    }

    fn subscribe(&mut self, sub: u64, kind: SubscriptionKind, out: &mut Vec<String>) {
        let registered = match kind {
            SubscriptionKind::Range(window) => self.system.register_range(window),
            SubscriptionKind::Knn(point, k) => self.system.register_knn(point, k),
        };
        let query = match registered {
            Ok(query) => query,
            Err(e) => {
                out.push(render_error(&e.to_string()));
                return;
            }
        };
        match self.registry.insert(sub, kind, query) {
            Ok(()) => {
                self.recorder.add("server.subscriptions_opened", 1);
                self.recorder
                    .set_gauge("server.subscriptions_active", self.registry.len() as u64);
                out.push(render_ok("subscribe", &[("sub", sub.to_string())]));
            }
            Err(e) => {
                let _ = self.system.deregister(query);
                out.push(render_error(&e.to_string()));
            }
        }
    }

    fn tick(&mut self, second: u64, out: &mut Vec<String>) {
        let report = self.system.evaluate(second);
        let deltas = self.registry.deltas(&report);
        let mut events: Vec<ServerEvent> = Vec::new();
        for (sub, delta) in &deltas {
            out.push(render_delta(*sub, second, delta));
            // Geofence semantics apply to range subscriptions: their
            // window is the fence.
            let is_range = matches!(
                self.registry.get(*sub).map(|s| s.kind),
                Some(SubscriptionKind::Range(_))
            );
            if is_range {
                for (object, _) in &delta.appeared {
                    events.push(ServerEvent::GeofenceEntered {
                        sub: *sub,
                        object: *object,
                        second,
                    });
                }
                for object in &delta.disappeared {
                    events.push(ServerEvent::GeofenceLeft {
                        sub: *sub,
                        object: *object,
                        second,
                    });
                }
            }
        }
        // Silence detection: one alert per silent episode, re-armed by
        // any re-detection. Collector iteration is id-ordered, so event
        // order is stable.
        let silent: Vec<(ObjectId, u64)> = self
            .system
            .collector()
            .objects()
            .filter_map(|o| {
                self.system
                    .collector()
                    .last_detection(o)
                    .map(|(_, last)| (o, last))
            })
            .collect();
        for (object, last_seen) in silent {
            if second.saturating_sub(last_seen) > self.config.unseen_after {
                if self.unseen_alerted.insert(object) {
                    events.push(ServerEvent::ObjectUnseen {
                        object,
                        second,
                        last_seen,
                    });
                }
            } else {
                self.unseen_alerted.remove(&object);
            }
        }
        self.recorder.add("server.ticks", 1);
        self.recorder
            .add("server.deltas_emitted", deltas.len() as u64);
        self.recorder
            .add("server.events_fired", events.len() as u64);
        for event in &events {
            for executor in &mut self.executors {
                out.extend(executor.on_event(event));
            }
        }
        out.push(render_ok(
            "tick",
            &[
                ("second", second.to_string()),
                ("deltas", deltas.len().to_string()),
                ("events", events.len().to_string()),
            ],
        ));
        self.last_tick = Some(second);
        if self.config.checkpoint_every_ticks > 0 && self.checkpoint_dir.is_some() {
            self.ticks_since_checkpoint += 1;
            if self.ticks_since_checkpoint >= self.config.checkpoint_every_ticks {
                self.ticks_since_checkpoint = 0;
                self.auto_checkpoint_due = true;
            }
        }
    }

    /// Writes `system.ckpt` plus the server sidecar, recording the given
    /// final frame/line offsets in the sidecar.
    fn write_checkpoint(
        &mut self,
        frames_processed: u64,
        lines_emitted: u64,
    ) -> Result<(), RipqError> {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return Err(RipqError::Io(
                "no checkpoint directory configured".to_string(),
            ));
        };
        self.system.checkpoint_now()?;
        SidecarState::capture(
            frames_processed,
            lines_emitted,
            self.last_tick,
            &self.unseen_alerted,
            &self.registry,
        )
        .save(&dir)
        .map_err(|e| RipqError::Io(format!("server.ckpt: {e}")))?;
        self.recorder.add("server.checkpoints_written", 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::CountingExecutor;
    use crate::frame::encode_frame;
    use ripq_floorplan::{office_building, OfficeParams};

    fn core() -> ServerCore {
        let plan = office_building(&OfficeParams::default()).unwrap();
        ServerCore::new(plan, ServerConfig::default())
    }

    fn one(core: &mut ServerCore, payload: &str) -> Vec<String> {
        core.handle_frame(payload.as_bytes())
    }

    #[test]
    fn reading_subscribe_tick_produces_deltas_and_events() {
        let mut core = core();
        let reader = core.system().readers()[2];
        let window = ripq_geom::Rect::centered(reader.position(), 10.0, 6.0);
        let sub_frame = format!(
            "{{\"op\":\"subscribe\",\"sub\":4,\"range\":[{},{},{},{}]}}",
            window.min().x,
            window.min().y,
            window.width(),
            window.height()
        );
        assert_eq!(
            one(&mut core, &sub_frame),
            vec!["{\"ok\":\"subscribe\",\"sub\":4}"]
        );
        for s in 0..3u64 {
            let frame = format!(
                "{{\"op\":\"reading\",\"second\":{s},\"readings\":[[0,{}]]}}",
                reader.id().raw()
            );
            let lines = one(&mut core, &frame);
            assert_eq!(lines.len(), 1);
            assert!(lines[0].starts_with("{\"ok\":\"reading\""));
        }
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":3}");
        // Delta, geofence event, tick ack.
        assert!(lines[0].starts_with("{\"delta\":{\"sub\":4,"));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"geofence_entered\"")));
        assert!(lines.last().unwrap().starts_with("{\"ok\":\"tick\""));
        assert_eq!(core.frames_processed(), 5);
        assert_eq!(core.lines_emitted() as usize, 4 + lines.len());

        // Unseen alert fires once the object stays silent past 60 s.
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":70}");
        assert!(lines
            .iter()
            .any(|l| l.contains("\"event\":\"object_unseen\"")));
        let again = one(&mut core, "{\"op\":\"tick\",\"second\":71}");
        assert!(
            !again.iter().any(|l| l.contains("object_unseen")),
            "one alert per silent episode: {again:?}"
        );
    }

    #[test]
    fn replay_is_deterministic_across_worker_counts() {
        let reader_pos = core().system().readers()[2].position();
        let window = ripq_geom::Rect::centered(reader_pos, 10.0, 6.0);
        let frames: Vec<String> = {
            let mut f = vec![format!(
                "{{\"op\":\"subscribe\",\"sub\":1,\"range\":[{},{},{},{}]}}",
                window.min().x,
                window.min().y,
                window.width(),
                window.height()
            )];
            f.push(format!(
                "{{\"op\":\"subscribe\",\"sub\":2,\"point\":[{},{}],\"k\":2}}",
                reader_pos.x, reader_pos.y
            ));
            for s in 0..6u64 {
                f.push(format!(
                    "{{\"op\":\"reading\",\"second\":{s},\"readings\":[[0,2],[1,{}]]}}",
                    (s % 3) + 4
                ));
            }
            f.push("{\"op\":\"tick\",\"second\":6}".to_string());
            f.push("{\"op\":\"metrics\"}".to_string());
            f.push("{\"op\":\"shutdown\"}".to_string());
            f
        };
        let run = |workers: Option<usize>| -> Vec<String> {
            let plan = office_building(&OfficeParams::default()).unwrap();
            let mut core = ServerCore::new(
                plan,
                ServerConfig {
                    workers,
                    ..ServerConfig::default()
                },
            );
            let mut out = Vec::new();
            for f in &frames {
                out.extend(core.handle_frame(f.as_bytes()));
            }
            assert!(core.is_shutdown());
            out
        };
        let a = run(None);
        let b = run(Some(2));
        let c = run(Some(4));
        assert_eq!(a, b, "worker count must not change output");
        assert_eq!(a, c);
    }

    #[test]
    fn malformed_frames_reject_without_poisoning_the_stream() {
        let mut core = core();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(b"not json at all"));
        bytes.extend_from_slice(&0u32.to_be_bytes()); // empty frame
        bytes.extend_from_slice(&encode_frame(b"{\"op\":\"tick\",\"second\":0}"));
        let lines = core.ingest_bytes(&bytes);
        assert!(lines[0].starts_with("{\"error\":"));
        assert!(lines[1].starts_with("{\"error\":"));
        assert!(lines.last().unwrap().starts_with("{\"ok\":\"tick\""));
        assert!(core.finish_input().is_empty());
        // A cut-off frame surfaces at end of stream.
        core.decoder.push(&[0, 0, 0]);
        let tail = core.finish_input();
        assert_eq!(tail.len(), 1);
        assert!(tail[0].contains("mid-frame"));
    }

    #[test]
    fn subscription_lifecycle_and_errors() {
        let mut core = core();
        assert_eq!(
            one(
                &mut core,
                "{\"op\":\"subscribe\",\"sub\":1,\"range\":[0,0,5,5]}"
            )
            .len(),
            1
        );
        let dup = one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":1,\"range\":[0,0,5,5]}",
        );
        assert!(dup[0].contains("already registered"));
        // Query rollback happened: only sub 1's query remains.
        assert_eq!(core.system().query_count(), 1);
        let bad = one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":2,\"point\":[0,0],\"k\":0}",
        );
        assert!(bad[0].starts_with("{\"error\":"));
        assert_eq!(
            one(&mut core, "{\"op\":\"unsubscribe\",\"sub\":1}"),
            vec!["{\"ok\":\"unsubscribe\",\"sub\":1}"]
        );
        assert_eq!(core.system().query_count(), 0);
        assert!(one(&mut core, "{\"op\":\"unsubscribe\",\"sub\":1}")[0].contains("unknown"));
    }

    #[test]
    fn custom_executors_see_events() {
        let mut core = core();
        core.clear_executors();
        core.push_executor(Box::new(CountingExecutor::default()));
        one(
            &mut core,
            "{\"op\":\"subscribe\",\"sub\":1,\"range\":[-500,-500,1000,1000]}",
        );
        let reader = core.system().readers()[0].id().raw();
        one(
            &mut core,
            &format!("{{\"op\":\"reading\",\"second\":0,\"readings\":[[0,{reader}]]}}"),
        );
        let lines = one(&mut core, "{\"op\":\"tick\",\"second\":0}");
        // Counting executor emits nothing; only delta + ack remain.
        assert!(lines.iter().all(|l| !l.contains("\"event\"")));
        assert!(lines.last().unwrap().contains("\"events\":1"));
    }

    #[test]
    fn checkpoint_without_dir_is_a_clean_error() {
        let mut core = core();
        let lines = one(&mut core, "{\"op\":\"checkpoint\"}");
        assert!(lines[0].contains("no checkpoint directory"));
        assert!(core.last_checkpoint_error().is_none());
    }

    #[test]
    fn metrics_frame_is_deterministic_json() {
        let mut core = core();
        let m1 = one(&mut core, "{\"op\":\"metrics\"}");
        assert_eq!(m1.len(), 1);
        assert!(m1[0].contains("\"counters\""));
        assert_eq!(core.metrics_json(), core.metrics_json());
    }
}
