//! The deterministic retry client.
//!
//! When the server sheds load it answers a typed `busy` line with a
//! `retry_after_ticks` hint instead of silently stalling. This module is
//! the client half of that contract: shed data frames are queued, and
//! when a tick is deferred the client waits a seeded
//! exponential-backoff-with-jitter number of logical ticks (never less
//! than the server's hint), resends the queued frames **in their
//! original order**, and retries the tick — repeating until the tick is
//! admitted or the round bound is hit.
//!
//! Because the server sheds data frames as a strict suffix of each tick
//! interval (the admission budget exhausts monotonically) and the
//! client replays them in order before the deferred tick, every
//! evaluated tick sees exactly the frame timeline an unthrottled
//! session would have produced. The response lines of a retried session
//! are therefore **byte-identical** to the unthrottled run — the busy
//! lines themselves are accounted separately, not interleaved. The
//! overload proptests pin exactly this property.
//!
//! Backoff is purely logical (SplitMix64 stream over `(seed, round)` —
//! the PR 1 idiom): nothing sleeps, but the waits are summed in
//! [`RetryOutcome::backoff_ticks`] so a trace of the exchange is fully
//! reproducible from the seed.

use crate::core::ServerCore;
use rand::split_mix64;

/// Client-side retry knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Seed of the jitter stream (a client identity; two clients with
    /// the same seed back off identically).
    pub seed: u64,
    /// Retry rounds per deferred tick before giving up.
    pub max_rounds: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            seed: 0x5EED,
            max_rounds: 8,
        }
    }
}

/// What a retried session did and received.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Response lines of every ultimately-delivered frame, in delivery
    /// order — byte-identical to the unthrottled session when retry
    /// converged. `busy` lines are **not** included.
    pub lines: Vec<String>,
    /// `busy` responses received (shed frames + deferred ticks).
    pub busy_lines: u64,
    /// Retry rounds run across all deferred ticks.
    pub retry_rounds: u64,
    /// Queued frames resent (a frame shed twice counts twice).
    pub frames_resent: u64,
    /// Logical ticks spent backing off, `max(server hint, jittered
    /// exponential)` summed over rounds.
    pub backoff_ticks: u64,
    /// `true` if the round bound was hit with work still pending.
    pub gave_up: bool,
    /// Frames still undelivered when the session ended (0 unless
    /// `gave_up` or the transcript never ticked after a shed).
    pub frames_abandoned: u64,
}

/// The op of a `busy` line (`{"busy":"tick",...}` → `"tick"`), if the
/// line is one.
pub fn busy_op(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("{\"busy\":\"")?;
    let end = rest.find('"')?;
    rest.get(..end)
}

/// The `retry_after_ticks` hint of a `busy` line.
pub fn busy_hint(line: &str) -> Option<u64> {
    busy_op(line)?;
    let key = "\"retry_after_ticks\":";
    let idx = line.find(key)?;
    let digits = line
        .get(idx + key.len()..)?
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("");
    digits.parse().ok()
}

/// The client's jittered exponential backoff for retry `round` (1-based):
/// a window of `2^min(round-1, 6)` logical ticks plus a seeded draw
/// inside the window. Deterministic in `(seed, round)`.
pub fn client_backoff_ticks(seed: u64, round: u32) -> u64 {
    let window = 1u64 << u64::from(round.saturating_sub(1).min(6));
    let mut state = seed ^ u64::from(round).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    window + split_mix64(&mut state) % window
}

/// Replays `frames` against `core` with shed-aware retry: the
/// in-process equivalent of the socket client in
/// [`crate::net::send_frames_with_retry`]. See the module docs for the
/// algorithm and the byte-identity guarantee.
pub fn replay_with_retry(
    core: &mut ServerCore,
    frames: &[String],
    policy: &RetryPolicy,
) -> RetryOutcome {
    let mut outcome = RetryOutcome::default();
    let mut queued: Vec<String> = Vec::new();
    for frame in frames {
        if core.is_shutdown() {
            break;
        }
        let mut lines = core.handle_frame(frame.as_bytes());
        let Some(op) = lines.last().and_then(|l| busy_op(l)).map(str::to_string) else {
            outcome.lines.append(&mut lines);
            continue;
        };
        outcome.busy_lines += 1;
        if op != "tick" {
            // A shed data/subscribe frame: queue it for the deferred
            // tick's retry rounds.
            queued.push(frame.clone());
            continue;
        }
        let mut hint = lines.last().and_then(|l| busy_hint(l)).unwrap_or(1);
        let mut round = 0u32;
        loop {
            round += 1;
            if round > policy.max_rounds.max(1) {
                outcome.gave_up = true;
                break;
            }
            outcome.retry_rounds += 1;
            outcome.backoff_ticks += hint.max(client_backoff_ticks(policy.seed, round));
            // Resend everything shed so far, oldest first — order is
            // what makes the replayed timeline identical.
            let resend = std::mem::take(&mut queued);
            for f in &resend {
                outcome.frames_resent += 1;
                let mut ls = core.handle_frame(f.as_bytes());
                if ls.last().and_then(|l| busy_op(l)).is_some() {
                    outcome.busy_lines += 1;
                    queued.push(f.clone());
                } else {
                    outcome.lines.append(&mut ls);
                }
            }
            let mut tick_lines = core.handle_frame(frame.as_bytes());
            match tick_lines.last().and_then(|l| busy_hint(l)) {
                Some(next_hint) => {
                    outcome.busy_lines += 1;
                    hint = next_hint;
                }
                None => {
                    outcome.lines.append(&mut tick_lines);
                    break;
                }
            }
        }
    }
    outcome.frames_abandoned = queued.len() as u64;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_line_parsing() {
        let line = "{\"busy\":\"reading\",\"second\":5,\"retry_after_ticks\":1}";
        assert_eq!(busy_op(line), Some("reading"));
        assert_eq!(busy_hint(line), Some(1));
        assert_eq!(busy_op("{\"ok\":\"reading\"}"), None);
        assert_eq!(busy_hint("{\"ok\":\"tick\",\"second\":3}"), None);
        assert_eq!(
            busy_hint("{\"busy\":\"tick\",\"second\":9,\"retry_after_ticks\":12}"),
            Some(12)
        );
    }

    #[test]
    fn backoff_is_deterministic_and_window_bounded() {
        for round in 1..=12u32 {
            let a = client_backoff_ticks(0x5EED, round);
            assert_eq!(a, client_backoff_ticks(0x5EED, round));
            let window = 1u64 << u64::from(round.saturating_sub(1).min(6));
            assert!(a >= window && a < 2 * window, "round {round}: {a}");
        }
        let seq =
            |seed: u64| -> Vec<u64> { (1..=12).map(|r| client_backoff_ticks(seed, r)).collect() };
        assert_ne!(seq(1), seq(2), "seed must matter somewhere in the schedule");
    }
}
