//! Executor supervision: crash isolation, deterministic retry, and the
//! circuit breaker feeding the dead-letter queue.
//!
//! Every [`Executor`](crate::executor::Executor) dispatch runs under
//! `catch_unwind`, so a panicking executor can never take a tick (or the
//! daemon) down. A failed dispatch is retried a bounded number of times
//! with a deterministically-jittered logical backoff (SplitMix64 stream
//! derived from the server seed, the executor name and the event
//! identity — the same construction as `ripq_sim`'s fault seeds and
//! `ripq_pf`'s particle streams). An executor that keeps failing trips a
//! circuit breaker: while the breaker is open its events go straight to
//! the dead-letter queue instead of being attempted, and after
//! [`SupervisorPolicy::open_ticks`] logical ticks one probe event is
//! allowed through (half-open) — success re-closes the breaker, another
//! failure re-opens it. Undeliverable events are **never dropped
//! silently**: they become [`DeadLetter`]s that persist in the
//! `server.ckpt` sidecar and can be listed or drained through the
//! `dead_letters` protocol op.
//!
//! Everything here is driven by logical tick time and seeded streams, so
//! a supervised replay stays byte-identical across runs and worker
//! counts.

use crate::executor::{Executor, ServerEvent};
use rand::split_mix64;
use ripq_core::Recorder;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Supervision knobs. All bounds are enforced to be at least 1 at use
/// sites, so a zeroed policy degenerates to "one attempt, quarantine
/// immediately" instead of dividing by zero or looping forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Total dispatch attempts per event per executor (first try
    /// included).
    pub max_attempts: u32,
    /// Consecutive failed *events* (all attempts exhausted) before the
    /// executor's circuit breaker opens.
    pub quarantine_after: u32,
    /// Logical ticks the breaker stays open before a half-open probe.
    pub open_ticks: u64,
    /// Dead letters retained in memory and in the sidecar; overflow
    /// drops the oldest letter and counts it — never silently.
    pub dead_letter_capacity: usize,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_attempts: 3,
            quarantine_after: 2,
            open_ticks: 2,
            dead_letter_capacity: 256,
        }
    }
}

/// The circuit-breaker state of one supervised executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: events are dispatched normally.
    Closed,
    /// Quarantined: events dead-letter without being attempted until
    /// `until_tick`.
    Open {
        /// The first tick second at which a half-open probe is allowed.
        until_tick: u64,
    },
    /// One probe event is in flight; success re-closes, failure
    /// re-opens. Transient within a single dispatch — never persisted.
    HalfOpen,
}

/// An event the supervisor could not deliver, with why.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The executor that should have handled the event.
    pub executor: String,
    /// The undelivered event.
    pub event: ServerEvent,
    /// The tick second the delivery failed at.
    pub second: u64,
    /// Human-readable failure reason (panic payload or breaker state).
    pub reason: String,
}

/// How one supervised dispatch concluded.
#[derive(Debug)]
pub enum DispatchOutcome {
    /// The executor handled the event; its response frames follow.
    Delivered(Vec<String>),
    /// Delivery failed permanently (or the breaker was open); the event
    /// belongs in the dead-letter queue.
    DeadLettered(DeadLetter),
}

/// A stable u64 identity for an event — folds the kind and every field,
/// so the jitter stream of one event never depends on another.
fn event_ident(event: &ServerEvent) -> u64 {
    match event {
        ServerEvent::GeofenceEntered {
            sub,
            object,
            second,
        } => chain(&[1, *sub, u64::from(object.raw()), *second]),
        ServerEvent::GeofenceLeft {
            sub,
            object,
            second,
        } => chain(&[2, *sub, u64::from(object.raw()), *second]),
        ServerEvent::ObjectUnseen {
            object,
            second,
            last_seen,
        } => chain(&[3, u64::from(object.raw()), *second, *last_seen]),
    }
}

/// FNV-1a over a name, for folding executor names into seed chains.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Successive SplitMix64 outputs folded over the inputs — the workspace
/// seed-derivation idiom (`ripq_pf::derive_stream_seed`,
/// `ripq_sim::faults`).
fn chain(parts: &[u64]) -> u64 {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut out = 0u64;
    for p in parts {
        state ^= *p;
        out ^= split_mix64(&mut state);
    }
    out
}

/// The deterministic jittered backoff (in logical ticks) before retry
/// `attempt` of `event` on executor `name`: an exponential window
/// `2^min(attempt-1, 6)` plus a seeded jitter draw inside the same
/// window. Purely logical — nothing sleeps — but the waits are recorded
/// so overload behavior is observable and reproducible.
pub fn backoff_ticks(seed: u64, name: &str, event: &ServerEvent, attempt: u32) -> u64 {
    let window = 1u64 << u64::from(attempt.saturating_sub(1).min(6));
    let draw = chain(&[
        seed,
        name_hash(name),
        event_ident(event),
        u64::from(attempt),
    ]);
    window + draw % window
}

/// An [`Executor`] wrapped with its supervision state.
pub struct SupervisedExecutor {
    inner: Box<dyn Executor>,
    /// Consecutive events for which every attempt failed.
    pub consecutive_failures: u32,
    /// The circuit-breaker state.
    pub breaker: BreakerState,
}

impl SupervisedExecutor {
    /// Wraps an executor with a closed breaker.
    pub fn new(inner: Box<dyn Executor>) -> Self {
        SupervisedExecutor {
            inner,
            consecutive_failures: 0,
            breaker: BreakerState::Closed,
        }
    }

    /// The wrapped executor's stable name.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// `true` while the breaker is open (the executor is quarantined).
    pub fn is_quarantined(&self) -> bool {
        matches!(self.breaker, BreakerState::Open { .. })
    }

    /// Dispatches one event under supervision. See the module docs for
    /// the state machine; `seed` feeds the jitter stream and `recorder`
    /// receives the `server.executor.*` accounting.
    pub fn dispatch(
        &mut self,
        event: &ServerEvent,
        second: u64,
        policy: &SupervisorPolicy,
        seed: u64,
        recorder: &Recorder,
    ) -> DispatchOutcome {
        match self.breaker {
            BreakerState::Open { until_tick } if second < until_tick => {
                return DispatchOutcome::DeadLettered(DeadLetter {
                    executor: self.inner.name().to_string(),
                    event: *event,
                    second,
                    reason: format!("circuit open until tick {until_tick}"),
                });
            }
            BreakerState::Open { .. } => self.breaker = BreakerState::HalfOpen,
            _ => {}
        }
        let mut attempt = 1u32;
        loop {
            // The executor may be left mid-update by a panic; the
            // AssertUnwindSafe is deliberate — a failing executor is
            // retried and then quarantined, never trusted to be
            // consistent.
            let result = catch_unwind(AssertUnwindSafe(|| self.inner.on_event(event)));
            match result {
                Ok(frames) => {
                    if matches!(self.breaker, BreakerState::HalfOpen) {
                        recorder.add("server.executor.reclosed", 1);
                    }
                    self.breaker = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    return DispatchOutcome::Delivered(frames);
                }
                Err(payload) => {
                    recorder.add("server.executor.failures", 1);
                    if attempt < policy.max_attempts.max(1) {
                        recorder.add("server.executor.retries", 1);
                        recorder.add(
                            "server.executor.backoff_ticks",
                            backoff_ticks(seed, self.inner.name(), event, attempt),
                        );
                        attempt += 1;
                        continue;
                    }
                    self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                    let was_probe = matches!(self.breaker, BreakerState::HalfOpen);
                    if was_probe || self.consecutive_failures >= policy.quarantine_after.max(1) {
                        self.breaker = BreakerState::Open {
                            until_tick: second.saturating_add(policy.open_ticks.max(1)),
                        };
                    }
                    return DispatchOutcome::DeadLettered(DeadLetter {
                        executor: self.inner.name().to_string(),
                        event: *event,
                        second,
                        reason: panic_text(payload),
                    });
                }
            }
        }
    }

    /// Restores persisted supervision state (crash recovery).
    pub fn restore(&mut self, consecutive_failures: u32, breaker: BreakerState) {
        self.consecutive_failures = consecutive_failures;
        // HalfOpen is transient and never persisted; normalize defensively.
        self.breaker = match breaker {
            BreakerState::HalfOpen => BreakerState::Closed,
            other => other,
        };
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return format!("panic: {s}");
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return format!("panic: {s}");
    }
    "panic: <non-string payload>".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripq_rfid::ObjectId;

    /// Panics on the first `fail_times` events, then succeeds.
    struct FlakyExecutor {
        fail_times: u32,
        calls: u32,
    }

    impl Executor for FlakyExecutor {
        fn name(&self) -> &'static str {
            "flaky"
        }

        fn on_event(&mut self, event: &ServerEvent) -> Vec<String> {
            self.calls += 1;
            if self.calls <= self.fail_times {
                // ripq-lint: allow(no-panic-paths) -- deliberate fault injection: this panic is the supervision test fixture, caught by the dispatch catch_unwind
                panic!("flaky failure {}", self.calls);
            }
            vec![format!(
                "{{\"ok\":\"flaky\",\"event\":\"{}\"}}",
                event.name()
            )]
        }
    }

    fn event() -> ServerEvent {
        ServerEvent::GeofenceEntered {
            sub: 1,
            object: ObjectId::new(4),
            second: 9,
        }
    }

    fn quiet_recorder() -> Recorder {
        Recorder::from_flag(true)
    }

    #[test]
    fn retry_recovers_a_flaky_executor() {
        let mut s = SupervisedExecutor::new(Box::new(FlakyExecutor {
            fail_times: 2,
            calls: 0,
        }));
        let recorder = quiet_recorder();
        let out = s.dispatch(&event(), 9, &SupervisorPolicy::default(), 7, &recorder);
        match out {
            DispatchOutcome::Delivered(frames) => {
                assert_eq!(frames.len(), 1);
                assert!(frames.first().is_some_and(|f| f.contains("flaky")));
            }
            DispatchOutcome::DeadLettered(l) => panic!("should have recovered: {l:?}"),
        }
        assert_eq!(s.consecutive_failures, 0);
        assert_eq!(s.breaker, BreakerState::Closed);
        let snap = recorder.snapshot().to_json();
        assert!(snap.contains("server.executor.retries"));
    }

    #[test]
    fn persistent_failure_trips_the_breaker_then_half_open_probe_recloses() {
        let mut s = SupervisedExecutor::new(Box::new(FlakyExecutor {
            fail_times: u32::MAX,
            calls: 0,
        }));
        let policy = SupervisorPolicy::default();
        let recorder = quiet_recorder();
        // Two exhausted events → breaker opens.
        for second in [10, 11] {
            match s.dispatch(&event(), second, &policy, 7, &recorder) {
                DispatchOutcome::DeadLettered(l) => {
                    assert_eq!(l.executor, "flaky");
                    assert!(l.reason.contains("panic"));
                }
                DispatchOutcome::Delivered(_) => panic!("must fail"),
            }
        }
        assert!(s.is_quarantined());
        // While open: straight to the DLQ, no attempts.
        match s.dispatch(&event(), 12, &policy, 7, &recorder) {
            DispatchOutcome::DeadLettered(l) => assert!(l.reason.contains("circuit open")),
            DispatchOutcome::Delivered(_) => panic!("breaker must be open"),
        }
        // Past open_ticks, a now-healthy executor re-closes via probe.
        let mut healthy = SupervisedExecutor::new(Box::new(FlakyExecutor {
            fail_times: 0,
            calls: 0,
        }));
        healthy.restore(s.consecutive_failures, s.breaker);
        match healthy.dispatch(&event(), 14, &policy, 7, &recorder) {
            DispatchOutcome::Delivered(_) => {}
            DispatchOutcome::DeadLettered(l) => panic!("probe should succeed: {l:?}"),
        }
        assert_eq!(healthy.breaker, BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut s = SupervisedExecutor::new(Box::new(FlakyExecutor {
            fail_times: u32::MAX,
            calls: 0,
        }));
        let policy = SupervisorPolicy {
            quarantine_after: 1,
            ..SupervisorPolicy::default()
        };
        let recorder = quiet_recorder();
        let _ = s.dispatch(&event(), 10, &policy, 7, &recorder);
        assert_eq!(s.breaker, BreakerState::Open { until_tick: 12 });
        // Probe at 12 fails → reopen relative to the probe tick.
        let _ = s.dispatch(&event(), 12, &policy, 7, &recorder);
        assert_eq!(s.breaker, BreakerState::Open { until_tick: 14 });
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_window_bounded() {
        let e = event();
        for attempt in 1..=10u32 {
            let a = backoff_ticks(7, "frames", &e, attempt);
            let b = backoff_ticks(7, "frames", &e, attempt);
            assert_eq!(a, b, "same inputs, same backoff");
            let window = 1u64 << u64::from(attempt.saturating_sub(1).min(6));
            assert!(a >= window && a < 2 * window, "attempt {attempt}: {a}");
        }
        // Seed, executor and event identity all matter.
        assert!(
            backoff_ticks(7, "frames", &e, 3) != backoff_ticks(8, "frames", &e, 3)
                || backoff_ticks(7, "frames", &e, 3) != backoff_ticks(7, "other", &e, 3)
        );
    }

    #[test]
    fn restore_normalizes_half_open() {
        let mut s = SupervisedExecutor::new(Box::new(FlakyExecutor {
            fail_times: 0,
            calls: 0,
        }));
        s.restore(3, BreakerState::HalfOpen);
        assert_eq!(s.breaker, BreakerState::Closed);
        assert_eq!(s.consecutive_failures, 3);
        s.restore(1, BreakerState::Open { until_tick: 20 });
        assert!(s.is_quarantined());
    }
}
