//! The daemon's IO shell: TCP / Unix-domain transport around
//! [`ServerCore`](crate::core::ServerCore).
//!
//! Networking is deliberately thin — one connection served at a time,
//! blocking reads, responses written back as length-prefixed frames.
//! All evaluation state lives in the core, which stays byte-stream →
//! line-stream deterministic; the transport only moves bytes.

use crate::core::ServerCore;
use crate::frame::{encode_frame, FrameDecoder};
use crate::retry::{busy_hint, busy_op, client_backoff_ticks, RetryOutcome, RetryPolicy};
use ripq_core::RipqError;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Where the daemon listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP, e.g. `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT` / `uds:PATH` (bare values with a `/` or
    /// without a `:` are treated as UDS paths, else TCP).
    pub fn parse(spec: &str) -> Endpoint {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            return Endpoint::Tcp(rest.to_string());
        }
        if let Some(rest) = spec.strip_prefix("uds:") {
            return Endpoint::Uds(PathBuf::from(rest));
        }
        if spec.contains('/') || !spec.contains(':') {
            Endpoint::Uds(PathBuf::from(spec))
        } else {
            Endpoint::Tcp(spec.to_string())
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    Uds(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn shutdown_write(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Write),
            Stream::Uds(s) => s.shutdown(Shutdown::Write),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Uds(s) => Stream::Uds(s.try_clone()?),
        })
    }
}

/// Unsized byte-buffer alias for IO signatures; this crate's panic
/// surface (including index-expression shapes) is ratcheted to zero.
type IoBuf = [u8];

impl Read for Stream {
    fn read(&mut self, buf: &mut IoBuf) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

fn io_err(context: &str, e: std::io::Error) -> RipqError {
    RipqError::Io(format!("{context}: {e}"))
}

/// A bound, listening daemon socket. Binding is split from serving so a
/// caller (tests, CI) knows the endpoint is ready before launching a
/// client.
pub struct Server {
    listener: ListenerKind,
    endpoint: Endpoint,
}

impl Server {
    /// Binds the endpoint. A stale UDS socket file is removed first.
    pub fn bind(endpoint: &Endpoint) -> Result<Server, RipqError> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => ListenerKind::Tcp(
                TcpListener::bind(addr).map_err(|e| io_err(&format!("bind {addr}"), e))?,
            ),
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(path);
                ListenerKind::Uds(
                    UnixListener::bind(path)
                        .map_err(|e| io_err(&format!("bind {}", path.display()), e))?,
                )
            }
        };
        Ok(Server {
            listener,
            endpoint: endpoint.clone(),
        })
    }

    /// The bound endpoint, with the real TCP port resolved (useful after
    /// binding port 0).
    pub fn endpoint(&self) -> Endpoint {
        match &self.listener {
            ListenerKind::Tcp(l) => match l.local_addr() {
                Ok(addr) => Endpoint::Tcp(addr.to_string()),
                Err(_) => self.endpoint.clone(),
            },
            ListenerKind::Uds(_) => self.endpoint.clone(),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            ListenerKind::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
        }
    }

    /// Serves connections one at a time until the core acknowledges a
    /// `shutdown` frame, then returns. A dropped connection ends that
    /// stream (possibly with a truncation error line) and the loop moves
    /// to the next client; the core's state carries across connections.
    pub fn serve(&self, core: &mut ServerCore) -> Result<(), RipqError> {
        while !core.is_shutdown() {
            let conn = self.accept().map_err(|e| io_err("accept", e))?;
            // A connection-level IO failure abandons this client but
            // never the daemon.
            let _ = serve_connection(conn, core);
        }
        // A UDS socket file is not reusable after close; tidy it up.
        if let Endpoint::Uds(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

fn write_lines(conn: &mut Stream, lines: &[String]) -> std::io::Result<()> {
    for line in lines {
        conn.write_all(&encode_frame(line.as_bytes()))?;
    }
    if !lines.is_empty() {
        conn.flush()?;
    }
    Ok(())
}

fn serve_connection(mut conn: Stream, core: &mut ServerCore) -> std::io::Result<()> {
    let mut buf = [0u8; 8192];
    loop {
        let n = conn.read(&mut buf)?;
        if n == 0 {
            let tail = core.finish_input();
            write_lines(&mut conn, &tail)?;
            return Ok(());
        }
        let Some(chunk) = buf.get(..n) else {
            return Ok(());
        };
        let lines = core.ingest_bytes(chunk);
        write_lines(&mut conn, &lines)?;
        if core.is_shutdown() {
            let _ = conn.shutdown_write();
            return Ok(());
        }
    }
}

/// Connects to a daemon, sends every payload as a frame, half-closes the
/// write side, and returns all response lines until the server closes
/// the connection. The write runs on a helper thread so neither side can
/// deadlock on full socket buffers.
pub fn send_frames(endpoint: &Endpoint, payloads: &[Vec<u8>]) -> Result<Vec<String>, RipqError> {
    let stream = match endpoint {
        Endpoint::Tcp(addr) => Stream::Tcp(
            TcpStream::connect(addr).map_err(|e| io_err(&format!("connect {addr}"), e))?,
        ),
        Endpoint::Uds(path) => Stream::Uds(
            UnixStream::connect(path)
                .map_err(|e| io_err(&format!("connect {}", path.display()), e))?,
        ),
    };
    let mut writer = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
    let mut reader = stream;
    let mut wire = Vec::new();
    for payload in payloads {
        wire.extend_from_slice(&encode_frame(payload));
    }
    std::thread::scope(|scope| -> Result<Vec<String>, RipqError> {
        let sender = scope.spawn(move || -> std::io::Result<()> {
            writer.write_all(&wire)?;
            writer.flush()?;
            writer.shutdown_write()
        });
        let mut decoder = FrameDecoder::new();
        let mut lines = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = reader.read(&mut buf).map_err(|e| io_err("read", e))?;
            if n == 0 {
                break;
            }
            if let Some(chunk) = buf.get(..n) {
                decoder.push(chunk);
            }
            while let Some(frame) = decoder.next_frame() {
                match frame {
                    Ok(payload) => lines.push(String::from_utf8_lossy(&payload).into_owned()),
                    Err(e) => return Err(RipqError::Io(format!("response frame: {e}"))),
                }
            }
        }
        match sender.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                // The server may close early after `shutdown`; a broken
                // pipe on the tail of the write is expected then.
                if lines.is_empty() {
                    return Err(io_err("send", e));
                }
            }
            Err(_) => return Err(RipqError::Io("sender thread panicked".to_string())),
        }
        decoder
            .finish()
            .map_err(|e| RipqError::Io(format!("response stream: {e}")))?;
        Ok(lines)
    })
}

fn connect(endpoint: &Endpoint) -> Result<Stream, RipqError> {
    Ok(match endpoint {
        Endpoint::Tcp(addr) => Stream::Tcp(
            TcpStream::connect(addr).map_err(|e| io_err(&format!("connect {addr}"), e))?,
        ),
        Endpoint::Uds(path) => Stream::Uds(
            UnixStream::connect(path)
                .map_err(|e| io_err(&format!("connect {}", path.display()), e))?,
        ),
    })
}

/// `true` when `line` concludes a request's response (acks, busy and
/// error lines; delta/event lines always precede their tick ack).
fn is_terminal_line(line: &str) -> bool {
    line.starts_with("{\"ok\":")
        || line.starts_with("{\"busy\":")
        || line.starts_with("{\"error\":")
        || line.starts_with("{\"counters\"")
        || line.starts_with("{\"dead_letters\"")
}

/// A request/response client over one connection: each frame is sent
/// alone and its response lines are read back before the next frame
/// goes out — the shape the retry protocol needs (a pipelined writer
/// could not react to `busy` lines).
struct InteractiveClient {
    reader: Stream,
    writer: Stream,
    decoder: FrameDecoder,
}

impl InteractiveClient {
    fn connect(endpoint: &Endpoint) -> Result<Self, RipqError> {
        let reader = connect(endpoint)?;
        let writer = reader.try_clone().map_err(|e| io_err("clone stream", e))?;
        Ok(InteractiveClient {
            reader,
            writer,
            decoder: FrameDecoder::new(),
        })
    }

    /// Sends one frame and reads its full response (ending at the
    /// terminal line). An empty vec means the server closed first.
    fn send(&mut self, payload: &[u8]) -> Result<Vec<String>, RipqError> {
        self.writer
            .write_all(&encode_frame(payload))
            .map_err(|e| io_err("send", e))?;
        self.writer.flush().map_err(|e| io_err("send", e))?;
        let mut lines = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            while let Some(frame) = self.decoder.next_frame() {
                match frame {
                    Ok(bytes) => {
                        let line = String::from_utf8_lossy(&bytes).into_owned();
                        let terminal = is_terminal_line(&line);
                        lines.push(line);
                        if terminal {
                            return Ok(lines);
                        }
                    }
                    Err(e) => return Err(RipqError::Io(format!("response frame: {e}"))),
                }
            }
            let n = self.reader.read(&mut buf).map_err(|e| io_err("read", e))?;
            if n == 0 {
                return Ok(lines);
            }
            if let Some(chunk) = buf.get(..n) {
                self.decoder.push(chunk);
            }
        }
    }
}

/// [`send_frames`] with the deterministic retry protocol of
/// [`crate::retry`]: frames are sent one at a time; shed data frames
/// queue and are resent (in order) when the deferred tick invites a
/// retry. Returns the [`RetryOutcome`] whose `lines` are byte-identical
/// to an unthrottled session when retry converged.
pub fn send_frames_with_retry(
    endpoint: &Endpoint,
    payloads: &[Vec<u8>],
    policy: &RetryPolicy,
) -> Result<RetryOutcome, RipqError> {
    let mut client = InteractiveClient::connect(endpoint)?;
    let mut outcome = RetryOutcome::default();
    let mut queued: Vec<Vec<u8>> = Vec::new();
    for payload in payloads {
        let mut lines = client.send(payload)?;
        let Some(op) = lines.last().and_then(|l| busy_op(l)).map(str::to_string) else {
            outcome.lines.append(&mut lines);
            if outcome
                .lines
                .last()
                .is_some_and(|l| l == "{\"ok\":\"shutdown\"}")
            {
                break;
            }
            continue;
        };
        outcome.busy_lines += 1;
        if op != "tick" {
            queued.push(payload.clone());
            continue;
        }
        let mut hint = lines.last().and_then(|l| busy_hint(l)).unwrap_or(1);
        let mut round = 0u32;
        loop {
            round += 1;
            if round > policy.max_rounds.max(1) {
                outcome.gave_up = true;
                break;
            }
            outcome.retry_rounds += 1;
            outcome.backoff_ticks += hint.max(client_backoff_ticks(policy.seed, round));
            let resend = std::mem::take(&mut queued);
            for f in &resend {
                outcome.frames_resent += 1;
                let mut ls = client.send(f)?;
                if ls.last().and_then(|l| busy_op(l)).is_some() {
                    outcome.busy_lines += 1;
                    queued.push(f.clone());
                } else {
                    outcome.lines.append(&mut ls);
                }
            }
            let mut tick_lines = client.send(payload)?;
            match tick_lines.last().and_then(|l| busy_hint(l)) {
                Some(next_hint) => {
                    outcome.busy_lines += 1;
                    hint = next_hint;
                }
                None => {
                    outcome.lines.append(&mut tick_lines);
                    break;
                }
            }
        }
    }
    outcome.frames_abandoned = queued.len() as u64;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServerConfig;
    use ripq_floorplan::{office_building, OfficeParams};

    fn frames() -> Vec<Vec<u8>> {
        vec![
            b"{\"op\":\"subscribe\",\"sub\":1,\"range\":[0,0,12,8]}".to_vec(),
            b"{\"op\":\"reading\",\"second\":0,\"readings\":[[0,1],[1,2]]}".to_vec(),
            b"{\"op\":\"tick\",\"second\":1}".to_vec(),
            b"{\"op\":\"shutdown\"}".to_vec(),
        ]
    }

    fn run_over(endpoint: Endpoint) -> Vec<String> {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut core = ServerCore::new(plan, ServerConfig::default());
        let server = Server::bind(&endpoint).unwrap();
        let bound = server.endpoint();
        let handle = std::thread::spawn(move || {
            server.serve(&mut core).unwrap();
            core.lines_emitted()
        });
        let lines = send_frames(&bound, &frames()).unwrap();
        let emitted = handle.join().unwrap();
        assert_eq!(emitted as usize, lines.len());
        lines
    }

    #[test]
    fn tcp_round_trip_serves_a_full_session() {
        let lines = run_over(Endpoint::Tcp("127.0.0.1:0".to_string()));
        assert_eq!(
            lines.first().map(String::as_str),
            Some("{\"ok\":\"subscribe\",\"sub\":1}")
        );
        assert_eq!(
            lines.last().map(String::as_str),
            Some("{\"ok\":\"shutdown\"}")
        );
    }

    #[test]
    fn uds_round_trip_matches_tcp_byte_for_byte() {
        let path = std::env::temp_dir().join("ripq_net_test.sock");
        let tcp = run_over(Endpoint::Tcp("127.0.0.1:0".to_string()));
        let uds = run_over(Endpoint::Uds(path.clone()));
        assert_eq!(tcp, uds, "transport must not affect output");
        assert!(!path.exists(), "socket file cleaned up after shutdown");
    }

    #[test]
    fn state_survives_across_connections() {
        let plan = office_building(&OfficeParams::default()).unwrap();
        let mut core = ServerCore::new(plan, ServerConfig::default());
        let server = Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
        let bound = server.endpoint();
        let handle = std::thread::spawn(move || {
            server.serve(&mut core).unwrap();
        });
        let first = send_frames(
            &bound,
            &[b"{\"op\":\"subscribe\",\"sub\":9,\"range\":[0,0,4,4]}".to_vec()],
        )
        .unwrap();
        assert_eq!(first, vec!["{\"ok\":\"subscribe\",\"sub\":9}"]);
        let second = send_frames(
            &bound,
            &[
                b"{\"op\":\"unsubscribe\",\"sub\":9}".to_vec(),
                b"{\"op\":\"shutdown\"}".to_vec(),
            ],
        )
        .unwrap();
        assert_eq!(
            second,
            vec![
                "{\"ok\":\"unsubscribe\",\"sub\":9}".to_string(),
                "{\"ok\":\"shutdown\"}".to_string()
            ]
        );
        handle.join().unwrap();
    }

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:4000"),
            Endpoint::Tcp("127.0.0.1:4000".to_string())
        );
        assert_eq!(
            Endpoint::parse("uds:/tmp/x.sock"),
            Endpoint::Uds(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("/tmp/y.sock"),
            Endpoint::Uds(PathBuf::from("/tmp/y.sock"))
        );
        assert_eq!(
            Endpoint::parse("localhost:9"),
            Endpoint::Tcp("localhost:9".to_string())
        );
        assert_eq!(
            Endpoint::parse("plainname"),
            Endpoint::Uds(PathBuf::from("plainname"))
        );
    }
}
