//! Robustness properties of the wire layer: the frame decoder and the
//! request parser must never panic, whatever bytes arrive, and a
//! malformed frame mid-stream must not corrupt the frames after it.

use proptest::prelude::*;
use ripq_server::frame::{encode_frame, FrameDecoder, FrameError, MAX_FRAME_LEN};
use ripq_server::{json, protocol};

/// Drains a decoder into (payloads, errors) — every outcome is typed.
fn drain(dec: &mut FrameDecoder) -> (Vec<Vec<u8>>, Vec<FrameError>) {
    let mut payloads = Vec::new();
    let mut errors = Vec::new();
    while let Some(r) = dec.next_frame() {
        match r {
            Ok(p) => payloads.push(p),
            Err(e) => errors.push(e),
        }
    }
    (payloads, errors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup, fed in arbitrary chunkings: the decoder
    /// never panics and only ever yields typed payloads/errors.
    #[test]
    fn decoder_survives_garbage(
        bytes in proptest::collection::vec(0u8..=255u8, 0..512),
        cuts in proptest::collection::vec(0usize..512, 0..8),
    ) {
        let mut dec = FrameDecoder::new();
        let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.push(bytes.len());
        let mut start = 0;
        for cut in cuts {
            if let Some(chunk) = bytes.get(start..cut) {
                dec.push(chunk);
                let _ = drain(&mut dec);
            }
            start = cut.max(start);
        }
        // End-of-stream verdict is typed, never a panic.
        let _ = dec.finish();
    }

    /// Well-formed frames round-trip unchanged through any chunking.
    #[test]
    fn frames_round_trip_across_chunkings(
        frames in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 1..64), 1..10
        ),
        chunk in 1usize..17,
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut start = 0;
        while start < wire.len() {
            let end = (start + chunk).min(wire.len());
            if let Some(piece) = wire.get(start..end) {
                dec.push(piece);
            }
            let (p, e) = drain(&mut dec);
            prop_assert!(e.is_empty(), "spurious errors: {e:?}");
            got.extend(p);
            start = end;
        }
        prop_assert_eq!(got, frames);
        prop_assert!(dec.finish().is_ok());
    }

    /// A malformed frame mid-stream (truncated header bytes swallowed by
    /// an oversized declaration, an empty frame, or junk payload) yields
    /// a clean typed error and every frame after it still decodes.
    #[test]
    fn malformed_frame_does_not_poison_the_stream(
        before in proptest::collection::vec(0u8..=255u8, 1..32),
        after in proptest::collection::vec(0u8..=255u8, 1..32),
        junk_len in 0usize..64,
        kind in 0u8..3,
    ) {
        let mut wire = encode_frame(&before);
        match kind {
            0 => {
                // Oversized declaration with junk body.
                let declared = MAX_FRAME_LEN + 1 + junk_len;
                wire.extend_from_slice(&(declared as u32).to_be_bytes());
                wire.extend_from_slice(&vec![0xEE; declared]);
            }
            1 => wire.extend_from_slice(&0u32.to_be_bytes()), // empty frame
            _ => wire.extend_from_slice(&encode_frame(&vec![0xEE; junk_len + 1])),
        }
        wire.extend_from_slice(&encode_frame(&after));
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let (payloads, errors) = drain(&mut dec);
        prop_assert!(dec.finish().is_ok());
        match kind {
            0 => {
                prop_assert_eq!(payloads, vec![before, after]);
                prop_assert!(matches!(
                    errors.first(),
                    Some(FrameError::Oversized { .. })
                ));
            }
            1 => {
                prop_assert_eq!(payloads, vec![before, after]);
                prop_assert_eq!(errors, vec![FrameError::Empty]);
            }
            _ => {
                // Junk payload is framing-valid; it decodes, and the
                // protocol layer rejects it without panicking.
                prop_assert_eq!(payloads.len(), 3);
                prop_assert!(errors.is_empty());
                let junk = payloads.get(1).map(Vec::as_slice).unwrap_or(b"");
                prop_assert!(protocol::parse_request(junk).is_err());
            }
        }
    }

    /// The JSON parser and the request parser are total functions over
    /// arbitrary bytes: typed results, no panics.
    #[test]
    fn parsers_are_total(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let _ = json::parse(&bytes);
        let _ = protocol::parse_request(&bytes);
    }

    /// Mutating any single byte of a valid request payload never panics
    /// the parser — it either still parses or fails with a typed error.
    #[test]
    fn single_byte_corruption_is_handled(pos in 0usize..64, val in 0u8..=255u8) {
        let base = b"{\"op\":\"reading\",\"second\":3,\"readings\":[[0,4],[2,11]]}".to_vec();
        let mut bytes = base.clone();
        let idx = pos % bytes.len();
        if let Some(b) = bytes.get_mut(idx) {
            *b = val;
        }
        let _ = protocol::parse_request(&bytes);
        prop_assert!(protocol::parse_request(&base).is_ok());
    }
}
