//! Machine-readable performance trajectory — `BENCH_N.json`.
//!
//! Every PR appends one `BENCH_N.json` snapshot to the repo root so the
//! performance story is diffable across the PR sequence. This module
//! measures the two distance backends ([`DistanceBackend::Dijkstra`]
//! vs [`DistanceBackend::Alt`]) on the same scripted workload and
//! renders a small hand-built JSON document (the vendored `serde` is a
//! no-op marker, so no serializer is available — and none is needed).
//!
//! ## Logical cost units
//!
//! Wall-clock on a shared 1-CPU runner is noise; the headline metric is
//! therefore *logical* distance-computation cost, counted identically
//! under both backends:
//!
//! * one unit per **node settled** by a Dijkstra/ALT search, and
//! * one unit per **anchor candidate** examined by the kNN frontier.
//!
//! Under Dijkstra a standing kNN query costs one full Dijkstra pass at
//! registration (`spcache.misses` × |V| settled nodes) plus a heap seed
//! over *every* anchor on *every* evaluation pass. Under ALT the lazy
//! ascending scan ([`ripq_graph::DistanceOracle::scan`]) settles only
//! the region the Σp ≥ k stop actually required and examines only the
//! anchors it emitted (`oracle.scan_settled` +
//! `oracle.scan_anchor_candidates`). Both backends return bit-identical
//! result sets (pinned by `tests/oracle.rs`), so the ratio is a pure
//! efficiency statement.

use crate::Scale;
use ripq_core::{DistanceBackend, IndoorQuerySystem, SystemConfig};
use ripq_floorplan::{office_building, OfficeParams};
use ripq_geom::Rect;
use ripq_rfid::ObjectId;
use ripq_server::{replay_with_retry, RetryPolicy, ServerConfig, ServerCore};
use std::fmt::Write as _;

/// Which standing query the probe system carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Knn,
    Range,
}

/// Everything measured for one backend.
#[derive(Debug, Clone)]
pub struct BackendProbe {
    /// Backend under measurement.
    pub backend: DistanceBackend,
    /// Mean wall time of the query-evaluation phase, kNN-only system.
    pub wall_ns_knn: u128,
    /// Mean wall time of the query-evaluation phase, range-only system.
    pub wall_ns_range: u128,
    /// Mean wall time of particle-filter preprocessing.
    pub wall_ns_preprocess: u128,
    /// Logical distance-computation cost of the kNN passes (see module
    /// docs for the unit definition).
    pub knn_cost_units: u64,
    /// Full Dijkstra passes charged to the kNN workload
    /// (`spcache.misses`).
    pub dijkstra_runs: u64,
    /// Nodes settled by distance searches during the kNN workload.
    pub settled_nodes: u64,
    /// Anchor candidates examined by the kNN frontier.
    pub anchor_candidates: u64,
    /// Landmarks in the oracle (0 under Dijkstra).
    pub landmarks: u64,
}

/// Evaluation passes measured per probe (after one warm-up pass).
const PASSES: u64 = 5;

fn tracked_objects(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 200,
        Scale::Quick => 50,
    }
}

/// Builds the probe system: office floorplan, `n` objects pinging
/// readers for 20 s, pruning off so the kNN scan is the only network-
/// distance consumer, one standing query.
fn build_probe(
    backend: DistanceBackend,
    observability: bool,
    n: usize,
    probe: Probe,
) -> IndoorQuerySystem {
    let plan = office_building(&OfficeParams::default()).expect("valid office");
    let config = SystemConfig {
        observability,
        prune_candidates: false,
        distance_backend: backend,
        ..SystemConfig::default()
    };
    let mut sys = IndoorQuerySystem::new(plan, config, 17);
    let reader_ids: Vec<_> = sys.readers().iter().map(|r| r.id()).collect();
    for s in 0..20u64 {
        let det: Vec<_> = (0..n as u32)
            .map(|i| {
                let r = (i as usize + s as usize) % reader_ids.len();
                (ObjectId::new(i), reader_ids[r])
            })
            .collect();
        sys.ingest_detections(s, &det);
    }
    let center = sys.plan().bounds().center();
    match probe {
        Probe::Knn => {
            sys.register_knn(center, 3).expect("valid k");
        }
        Probe::Range => {
            sys.register_range(Rect::centered(center, 12.0, 10.0))
                .expect("valid window");
        }
    }
    sys
}

/// Warm-up pass, then `PASSES` timed passes; returns mean
/// (evaluation, preprocessing) wall nanoseconds.
fn timed_passes(sys: &mut IndoorQuerySystem) -> (u128, u128) {
    let _ = sys.evaluate(20);
    let mut eval = std::time::Duration::ZERO;
    let mut pre = std::time::Duration::ZERO;
    for i in 1..=PASSES {
        sys.ingest_detections(20 + i, &[]);
        let report = sys.evaluate(20 + i);
        eval += report.timings.evaluation;
        pre += report.timings.preprocessing;
    }
    (
        eval.as_nanos() / u128::from(PASSES),
        pre.as_nanos() / u128::from(PASSES),
    )
}

/// Measures one backend: wall times from recorder-off systems, logical
/// counters from a recorder-on shadow running the identical workload.
pub fn measure_backend(scale: Scale, backend: DistanceBackend) -> BackendProbe {
    let n = tracked_objects(scale);
    let (wall_ns_knn, wall_ns_preprocess) =
        timed_passes(&mut build_probe(backend, false, n, Probe::Knn));
    let (wall_ns_range, _) = timed_passes(&mut build_probe(backend, false, n, Probe::Range));

    // Shadow system with the recorder on: same kNN workload, warm-up
    // plus PASSES passes, then read the cumulative counters once.
    let mut shadow = build_probe(backend, true, n, Probe::Knn);
    let node_count = shadow.graph().nodes().len() as u64;
    let anchor_count = shadow.anchors().anchors().len() as u64;
    let _ = shadow.evaluate(20);
    let mut last = None;
    for i in 1..=PASSES {
        shadow.ingest_detections(20 + i, &[]);
        last = shadow.evaluate(20 + i).metrics;
    }
    let snap = last.expect("observability on yields a snapshot");
    let gauge = |k: &str| snap.gauges.get(k).copied().unwrap_or(0);

    let dijkstra_runs = gauge("spcache.misses");
    let (settled_nodes, anchor_candidates) = match backend {
        // One full Dijkstra per cache miss settles every node; each
        // pass's heap seed examines every anchor (warm-up included).
        DistanceBackend::Dijkstra => (dijkstra_runs * node_count, (PASSES + 1) * anchor_count),
        // The oracle counts exactly what its searches touched.
        DistanceBackend::Alt => (
            gauge("oracle.scan_settled") + gauge("oracle.p2p_settled"),
            gauge("oracle.scan_anchor_candidates"),
        ),
    };
    BackendProbe {
        backend,
        wall_ns_knn,
        wall_ns_range,
        wall_ns_preprocess,
        knn_cost_units: settled_nodes + anchor_candidates,
        dijkstra_runs,
        settled_nodes,
        anchor_candidates,
        landmarks: gauge("oracle.landmarks"),
    }
}

/// Dijkstra-over-ALT ratio of kNN logical cost (the headline number).
pub fn knn_cost_reduction(dijkstra: &BackendProbe, alt: &BackendProbe) -> f64 {
    dijkstra.knn_cost_units as f64 / alt.knn_cost_units.max(1) as f64
}

/// The shed-path logical costs of one flooded streaming session. The
/// all-zero default (`converged: false`) is the unreachable-error
/// value — a probe that never ran.
#[derive(Debug, Clone, Default)]
pub struct OverloadProbe {
    /// Data frames the client offered.
    pub frames_offered: u64,
    /// `busy` responses the server returned (shed frames + deferred
    /// ticks).
    pub busy_lines: u64,
    /// Retry rounds the backoff client ran.
    pub retry_rounds: u64,
    /// Shed frames the client resent.
    pub frames_resent: u64,
    /// Logical ticks of client backoff accumulated.
    pub backoff_ticks: u64,
    /// Delta lines ultimately delivered.
    pub delta_lines: u64,
    /// Whether the retried session's lines byte-matched the unthrottled
    /// run.
    pub converged: bool,
}

/// Floods a server whose admission budget is below the per-interval
/// frame count and lets the deterministic retry client recover; the
/// unthrottled twin provides the byte-identity reference. Everything is
/// logical (seeded readings, logical ticks), so the row is exactly
/// reproducible.
pub fn measure_overload(scale: Scale) -> OverloadProbe {
    let seconds: u64 = match scale {
        Scale::Paper => 60,
        Scale::Quick => 30,
    };
    let tick_every = 10u64;
    let budget = 6u64; // 10 data frames per interval vs budget 6 → sheds
    let build = |max_frames_per_tick: u64| -> Option<ServerCore> {
        let plan = office_building(&OfficeParams::default()).ok()?;
        Some(ServerCore::new(
            plan,
            ServerConfig {
                max_frames_per_tick,
                ..ServerConfig::default()
            },
        ))
    };
    let Some(mut unthrottled) = build(0) else {
        return OverloadProbe::default();
    };
    let readers = unthrottled.system().readers().len().max(1) as u32;
    let mut frames =
        vec!["{\"op\":\"subscribe\",\"sub\":1,\"range\":[-500,-500,1000,1000]}".to_string()];
    let mut offered = 0u64;
    for second in 0..seconds {
        // Four objects hop across readers on a seeded-free rotation:
        // deterministic by construction.
        let readings: Vec<String> = (0..4u32)
            .map(|o| format!("[{o},{}]", (o + second as u32) % readers))
            .collect();
        frames.push(format!(
            "{{\"op\":\"reading\",\"second\":{second},\"readings\":[{}]}}",
            readings.join(",")
        ));
        offered += 1;
        if (second + 1) % tick_every == 0 {
            frames.push(format!("{{\"op\":\"tick\",\"second\":{second}}}"));
        }
    }
    let mut expected = Vec::new();
    for frame in &frames {
        expected.extend(unthrottled.handle_frame(frame.as_bytes()));
    }
    let Some(mut flooded) = build(budget) else {
        return OverloadProbe::default();
    };
    let outcome = replay_with_retry(&mut flooded, &frames, &RetryPolicy::default());
    OverloadProbe {
        frames_offered: offered,
        busy_lines: outcome.busy_lines,
        retry_rounds: outcome.retry_rounds,
        frames_resent: outcome.frames_resent,
        backoff_ticks: outcome.backoff_ticks,
        delta_lines: outcome
            .lines
            .iter()
            .filter(|l| l.starts_with("{\"delta\":"))
            .count() as u64,
        converged: outcome.lines == expected && !outcome.gave_up,
    }
}

fn render_probe(out: &mut String, p: &BackendProbe) {
    let _ = write!(
        out,
        "    \"{}\": {{\n      \"wall_ns\": {{ \"knn\": {}, \"range\": {}, \"preprocess\": {} }},\n      \
         \"logical\": {{ \"knn_cost_units\": {}, \"dijkstra_runs\": {}, \"settled_nodes\": {}, \
         \"anchor_candidates\": {}, \"landmarks\": {} }}\n    }}",
        p.backend,
        p.wall_ns_knn,
        p.wall_ns_range,
        p.wall_ns_preprocess,
        p.knn_cost_units,
        p.dijkstra_runs,
        p.settled_nodes,
        p.anchor_candidates,
        p.landmarks,
    );
}

/// Runs both backends plus the overload probe and renders the
/// `BENCH_10.json` document.
pub fn render_bench_json(scale: Scale) -> String {
    let dijkstra = measure_backend(scale, DistanceBackend::Dijkstra);
    let alt = measure_backend(scale, DistanceBackend::Alt);
    let reduction = knn_cost_reduction(&dijkstra, &alt);

    let probe = build_probe(DistanceBackend::Dijkstra, false, 1, Probe::Range);
    let scale_name = match scale {
        Scale::Paper => "paper",
        Scale::Quick => "quick",
    };
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"ripq-bench/v1\",\n  \"pr\": 10,\n");
    let _ = writeln!(out, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{ \"objects\": {}, \"passes\": {}, \"k\": 3 }},",
        tracked_objects(scale),
        PASSES
    );
    let _ = writeln!(
        out,
        "  \"graph\": {{ \"nodes\": {}, \"anchors\": {} }},",
        probe.graph().nodes().len(),
        probe.anchors().anchors().len()
    );
    out.push_str("  \"backends\": {\n");
    render_probe(&mut out, &dijkstra);
    out.push_str(",\n");
    render_probe(&mut out, &alt);
    out.push_str("\n  },\n");
    let overload = measure_overload(scale);
    let _ = writeln!(
        out,
        "  \"overload\": {{ \"frames_offered\": {}, \"busy_lines\": {}, \"retry_rounds\": {}, \
         \"frames_resent\": {}, \"backoff_ticks\": {}, \"delta_lines\": {}, \"converged\": {} }},",
        overload.frames_offered,
        overload.busy_lines,
        overload.retry_rounds,
        overload.frames_resent,
        overload.backoff_ticks,
        overload.delta_lines,
        overload.converged,
    );
    let _ = writeln!(
        out,
        "  \"derived\": {{ \"knn_cost_reduction\": {reduction:.2} }}"
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_cost_drops_at_least_2x_under_alt() {
        let dijkstra = measure_backend(Scale::Quick, DistanceBackend::Dijkstra);
        let alt = measure_backend(Scale::Quick, DistanceBackend::Alt);
        assert_eq!(alt.landmarks, ripq_graph::DEFAULT_LANDMARKS as u64);
        assert_eq!(
            alt.dijkstra_runs, 0,
            "ALT kNN must not fall back to full Dijkstra passes"
        );
        assert!(dijkstra.settled_nodes > 0 && dijkstra.anchor_candidates > 0);
        assert!(alt.settled_nodes > 0 && alt.anchor_candidates > 0);
        let r = knn_cost_reduction(&dijkstra, &alt);
        assert!(
            r >= 2.0,
            "acceptance floor: >= 2x logical-cost reduction, got {r:.2} \
             ({} vs {} units)",
            dijkstra.knn_cost_units,
            alt.knn_cost_units
        );
    }

    #[test]
    fn overload_probe_sheds_and_converges() {
        let probe = measure_overload(Scale::Quick);
        assert!(probe.busy_lines > 0, "budget 6 vs 10 frames must shed");
        assert!(probe.retry_rounds > 0 && probe.frames_resent > 0);
        assert!(probe.converged, "retried lines must byte-match unthrottled");
        let again = measure_overload(Scale::Quick);
        assert_eq!(probe.busy_lines, again.busy_lines);
        assert_eq!(probe.backoff_ticks, again.backoff_ticks);
        assert_eq!(probe.delta_lines, again.delta_lines);
    }

    #[test]
    fn bench_json_has_the_contract_fields() {
        let doc = render_bench_json(Scale::Quick);
        for key in [
            "\"schema\": \"ripq-bench/v1\"",
            "\"pr\": 10",
            "\"dijkstra\":",
            "\"alt\":",
            "\"wall_ns\"",
            "\"knn_cost_units\"",
            "\"knn_cost_reduction\"",
            "\"overload\":",
            "\"converged\": true",
        ] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
        // Logical counters are deterministic; only wall times may vary.
        let strip_wall = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("\"wall_ns\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let again = render_bench_json(Scale::Quick);
        assert_eq!(strip_wall(&doc), strip_wall(&again));
    }
}
