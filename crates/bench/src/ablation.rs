//! Ablation studies for the design decisions documented in `DESIGN.md`.
//!
//! Each runner isolates one choice and reports the same accuracy metrics
//! as the figure sweeps, so its effect can be compared against the
//! paper-shape curves directly:
//!
//! * [`negative_evidence`] — Algorithm 2 as printed ignores null readings;
//!   RIPQ uses them (particles inside a silent reader's range are
//!   down-weighted). How much does that buy?
//! * [`resampling_policy`] — the original SIR resamples at every
//!   observation; RIPQ resamples on ESS degeneracy. Diversity vs. fidelity.
//! * [`room_enter_probability`] — the motion-model split between entering
//!   a room and continuing along the hallway (the paper gives no value).
//! * [`kde_bandwidth`] — raw nearest-anchor snapping vs. kernel-smoothed
//!   particle→density conversion.
//! * [`anchor_spacing`] — §4.2 suggests 1 m anchors; coarser grids trade
//!   accuracy for index size.
//! * [`cache`] — §4.5's cache management module: evaluation wall-time with
//!   and without particle-state reuse.
//! * [`fault_severity`] — the `DESIGN.md` §9 fault injector at increasing
//!   severity: how gracefully does accuracy degrade under drops, jitter
//!   and reader outages?

use crate::{FigureRow, Scale};
use ripq_sim::{Experiment, ExperimentParams, SimWorld};
use std::time::Instant;

/// Negative-evidence on/off. Row `x`: 1 = on, 0 = off.
pub fn negative_evidence(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    [true, false]
        .into_iter()
        .map(|on| FigureRow {
            x: f64::from(u8::from(on)),
            report: Experiment::new(ExperimentParams {
                negative_evidence: on,
                ..base
            })
            .run(),
        })
        .collect()
}

/// ESS resampling threshold sweep. `x` = threshold; 1.0 reproduces the
/// paper's resample-every-observation SIR.
pub fn resampling_policy(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    [0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|t| FigureRow {
            x: t,
            report: Experiment::new(ExperimentParams {
                resample_threshold: t,
                ..base
            })
            .run(),
        })
        .collect()
}

/// Room-enter probability sweep. `x` = probability.
pub fn room_enter_probability(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    [0.05, 0.1, 0.2, 0.3, 0.5, 0.67]
        .into_iter()
        .map(|p| FigureRow {
            x: p,
            report: Experiment::new(ExperimentParams {
                room_enter_probability: p,
                ..base
            })
            .run(),
        })
        .collect()
}

/// KDE bandwidth sweep for the particle→anchor density conversion.
/// `x` = bandwidth in meters; 0 is the paper's raw nearest-anchor snap.
pub fn kde_bandwidth(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    [0.0, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|bw| FigureRow {
            x: bw,
            report: Experiment::new(ExperimentParams {
                kde_bandwidth: bw,
                ..base
            })
            .run(),
        })
        .collect()
}

/// KLD-adaptive particle counts vs. the paper's fixed Ns. Row `x`: 1 =
/// adaptive, 0 = fixed.
pub fn kld_adaptive(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    [false, true]
        .into_iter()
        .map(|adaptive| FigureRow {
            x: f64::from(u8::from(adaptive)),
            report: Experiment::new(ExperimentParams {
                kld_adaptive: adaptive,
                ..base
            })
            .run(),
        })
        .collect()
}

/// Anchor-spacing sweep. `x` = spacing in meters.
pub fn anchor_spacing(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    [0.5, 1.0, 2.0, 4.0]
        .into_iter()
        .map(|s| FigureRow {
            x: s,
            report: Experiment::new(ExperimentParams {
                anchor_spacing: s,
                ..base
            })
            .run(),
        })
        .collect()
}

/// Reader-placement strategies: uniform (the paper's), at-doors and
/// random. Returns `(label, report)` rows.
pub fn deployment_strategy(scale: Scale) -> Vec<(&'static str, ripq_sim::AccuracyReport)> {
    use ripq_rfid::DeploymentStrategy;
    let base = scale.base_params();
    [
        ("uniform", DeploymentStrategy::Uniform),
        ("at-doors", DeploymentStrategy::AtDoors),
        ("random", DeploymentStrategy::Random { seed: 1 }),
    ]
    .into_iter()
    .map(|(label, deployment)| {
        (
            label,
            Experiment::new(ExperimentParams {
                deployment,
                // 15 readers: the office has 15 distinct door portals, so
                // every strategy deploys its true layout (at-doors would
                // fall back to uniform at 19).
                reader_count: 15,
                ..base
            })
            .run(),
        )
    })
    .collect()
}

/// Topology generalization: the same experiment on the paper's office,
/// a shopping mall and a subway station (the venues §1 motivates).
/// Returns `(label, report)` rows; the PF should beat the SM baseline in
/// every topology.
pub fn topology(scale: Scale) -> Vec<(&'static str, ripq_sim::AccuracyReport)> {
    use ripq_floorplan::{
        multi_floor_office, office_building, shopping_mall, subway_station, MallParams,
        MultiFloorParams, OfficeParams, SubwayParams,
    };
    let base = scale.base_params();
    let plans: Vec<(&'static str, ripq_floorplan::FloorPlan)> = vec![
        (
            "office",
            office_building(&OfficeParams::default()).expect("valid"),
        ),
        (
            "mall",
            shopping_mall(&MallParams::default()).expect("valid"),
        ),
        (
            "subway",
            subway_station(&SubwayParams::default()).expect("valid"),
        ),
        (
            "tower-3f",
            multi_floor_office(&MultiFloorParams::default()).expect("valid"),
        ),
    ];
    // The 3-floor tower has ~3x the hallway length: scale the reader
    // budget so coverage density matches the single-floor cases.
    let readers_for = |label: &str| {
        if label == "tower-3f" {
            57
        } else {
            base.reader_count
        }
    };
    plans
        .into_iter()
        .map(|(label, plan)| {
            let params = ExperimentParams {
                reader_count: readers_for(label),
                ..base
            };
            let world = SimWorld::build_with_plan(plan, &params);
            (label, Experiment::with_world(params, world).run())
        })
        .collect()
}

/// Sensing-noise sweep: per-sample detection probability and ghost-read
/// rate. `x` encodes the detection probability; rows come in (clean,
/// ghosty) pairs — see the printed output for the exact configuration.
pub fn sensing_noise(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    let mut rows = Vec::new();
    for detection in [0.85, 0.5, 0.2] {
        for fp in [0.0, 0.02] {
            let sensing = ripq_rfid::SensingModel {
                detection_probability: detection,
                false_positive_rate: fp,
                ..Default::default()
            };
            rows.push(FigureRow {
                // Encode both knobs: x = detection + fp (fp ≪ 1 keeps
                // rows distinguishable in the table).
                x: detection + fp,
                report: Experiment::new(ExperimentParams { sensing, ..base }).run(),
            });
        }
    }
    rows
}

/// Fault-severity sweep over the reading-pipeline fault injector
/// (`DESIGN.md` §9): every row doubles down on drops, jitter and reader
/// outages together. `x` = drop probability (0 is the fault-free
/// baseline); duplicates ride along at 0.1 everywhere, since the
/// collector absorbs them exactly. Accuracy should degrade smoothly —
/// the severe cell loses precision, not correctness.
pub fn fault_severity(scale: Scale) -> Vec<FigureRow> {
    use ripq_sim::FaultPlan;
    let base = scale.base_params();
    [
        (0.0, 0, 0.0),
        (0.1, 2, 0.001),
        (0.25, 3, 0.003),
        (0.45, 4, 0.008),
    ]
    .into_iter()
    .map(|(drop, delay, outage)| FigureRow {
        x: drop,
        report: Experiment::new(ExperimentParams {
            faults: FaultPlan {
                drop_probability: drop,
                duplicate_probability: 0.1,
                max_delay_seconds: delay,
                outage_rate: outage,
                ..FaultPlan::none()
            },
            ..base
        })
        .run(),
    })
    .collect()
}

/// Wall-clock effect of the particle cache (§4.5): total experiment time
/// with the cache on vs. off. Returns `(with_cache, without_cache)`
/// durations; accuracy differences between the two runs are expected to be
/// statistical noise only.
pub fn cache(scale: Scale) -> (std::time::Duration, std::time::Duration) {
    // The Experiment always uses the cache internally; emulate "off" by
    // clearing reuse through disjoint seeds per timestamp — instead we
    // time the underlying preprocessing directly.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ripq_pf::{ParticleCache, ParticlePreprocessor, PreprocessorConfig};
    use ripq_rfid::DataCollector;
    use ripq_sim::{ReadingGenerator, SimWorld, TraceGenerator};

    let p = scale.base_params();
    let w = SimWorld::build(&p);
    let mut rng_trace = StdRng::seed_from_u64(p.seed + 1);
    let mut rng_sense = StdRng::seed_from_u64(p.seed + 2);
    let traces = TraceGenerator::new(p.room_dwell_mean).generate(
        &mut rng_trace,
        &w.graph,
        w.plan.rooms().len(),
        p.num_objects,
        p.duration,
    );
    let gen = ReadingGenerator::new(&w.graph, &w.readers, p.sensing);
    let objects: Vec<_> = traces.iter().map(|t| t.object).collect();
    let detections = gen.detections_all(&mut rng_sense, &traces, p.duration);
    let pre = ParticlePreprocessor::new(
        &w.graph,
        &w.anchors,
        &w.readers,
        PreprocessorConfig {
            num_particles: p.num_particles,
            ..Default::default()
        },
    );
    let timestamps = p.timestamps();

    let run = |use_cache: bool| {
        let mut collector = DataCollector::new();
        let mut cache = ParticleCache::new();
        let mut rng = StdRng::seed_from_u64(p.seed + 3);
        let t0 = Instant::now();
        let mut ti = 0;
        for second in 0..=p.duration {
            collector.ingest_second(second, &detections[second as usize]);
            while ti < timestamps.len() && timestamps[ti] == second {
                ti += 1;
                let cache_opt = use_cache.then_some(&mut cache);
                let _ = pre.process(&mut rng, &collector, &objects, second, cache_opt);
            }
        }
        t0.elapsed()
    };
    let with_cache = run(true);
    let without_cache = run(false);
    (with_cache, without_cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end ablation at tiny scale, verifying the expected
    /// directional effects hold.
    #[test]
    fn negative_evidence_helps() {
        let scale = Scale::Quick;
        // Shrink further for test runtime.
        std::env::remove_var("RIPQ_SCALE");
        let rows = {
            let base = ExperimentParams::smoke();
            [true, false]
                .into_iter()
                .map(|on| FigureRow {
                    x: f64::from(u8::from(on)),
                    report: Experiment::new(ExperimentParams {
                        negative_evidence: on,
                        ..base
                    })
                    .run(),
                })
                .collect::<Vec<_>>()
        };
        let on = rows[0].report;
        let off = rows[1].report;
        assert!(
            on.range_kl_pf <= off.range_kl_pf + 0.15,
            "negative evidence should not hurt KL: on={} off={}",
            on.range_kl_pf,
            off.range_kl_pf
        );
        let _ = scale;
    }

    #[test]
    fn faulted_experiment_stays_finite() {
        // The severe end of the fault sweep must still produce a
        // well-formed report: degraded accuracy, never NaNs or panics.
        use ripq_sim::FaultPlan;
        let base = ExperimentParams::smoke();
        let report = Experiment::new(ExperimentParams {
            faults: FaultPlan {
                drop_probability: 0.45,
                duplicate_probability: 0.1,
                max_delay_seconds: 4,
                outage_rate: 0.008,
                ..FaultPlan::none()
            },
            ..base
        })
        .run();
        assert!(report.range_kl_pf.is_finite());
        assert!(report.mean_error_pf.is_finite());
        assert!((0.0..=1.0).contains(&report.top1_success));
    }

    #[test]
    fn cache_speeds_up_preprocessing() {
        // Even at smoke scale, resuming cached particles must not be
        // slower than recomputing every timestamp from scratch.
        std::env::set_var("RIPQ_SCALE", "quick");
        let (with_cache, without_cache) = cache(Scale::Quick);
        assert!(
            with_cache <= without_cache * 2,
            "cache pathologically slow: {with_cache:?} vs {without_cache:?}"
        );
    }
}
