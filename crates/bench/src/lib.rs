//! # ripq-bench — the figure-reproduction harness
//!
//! One runner per result figure of the EDBT 2013 paper (§5.2–§5.6), each
//! sweeping the same parameter the paper sweeps and printing the same
//! series the paper plots:
//!
//! | Paper figure | Runner | Sweep | Series |
//! |---|---|---|---|
//! | Fig. 9 | [`run_fig9`] | query window 1–5 % | range-query KL (PF, SM) |
//! | Fig. 10 | [`run_fig10`] | k = 2…9 | kNN hit rate (PF, SM) |
//! | Fig. 11 | [`run_fig11`] | particles 2…512 | KL, hit rate, top-1/2 |
//! | Fig. 12 | [`run_fig12`] | objects 200…1000 | KL, hit rate, top-1/2 |
//! | Fig. 13 | [`run_fig13`] | range 0.5–2.5 m | KL, hit rate, top-1/2 |
//!
//! Each runner returns structured rows (and [`print_rows`] renders them),
//! so the binary `experiments`, the `figures` bench target, and tests all
//! share one implementation. Ablation runners for the design decisions
//! called out in `DESIGN.md` live in [`ablation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod perf_json;

use ripq_sim::{AccuracyReport, Experiment, ExperimentParams};
use serde::{Deserialize, Serialize};

/// How heavy a sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's counts: 50 timestamps, 100 range windows each, 30 kNN
    /// points, defaults from Table 2. A full figure takes seconds to low
    /// tens of seconds.
    Paper,
    /// Reduced counts for CI / `cargo bench` smoke runs.
    Quick,
}

impl Scale {
    /// Reads `RIPQ_SCALE=quick|paper` from the environment (default:
    /// quick for unattended runs).
    pub fn from_env() -> Scale {
        match std::env::var("RIPQ_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Base experiment parameters at this scale.
    pub fn base_params(self) -> ExperimentParams {
        match self {
            Scale::Paper => ExperimentParams::default(),
            Scale::Quick => ExperimentParams {
                num_objects: 60,
                duration: 240,
                warmup: 60,
                eval_timestamps: 10,
                range_queries_per_timestamp: 40,
                knn_query_points: 12,
                ..Default::default()
            },
        }
    }
}

/// One point of one figure: the swept parameter value plus the measured
/// series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigureRow {
    /// The swept parameter's value (window %, k, particles, objects, or
    /// activation range in meters).
    pub x: f64,
    /// The measured accuracy series at that point.
    pub report: AccuracyReport,
}

/// Renders rows as an aligned console table. `x_label` names the swept
/// parameter; `series` selects which report columns to print.
pub fn print_rows(title: &str, x_label: &str, rows: &[FigureRow], series: &[Series]) {
    println!("\n== {title} ==");
    print!("{x_label:>14}");
    for s in series {
        print!("{:>14}", s.label());
    }
    println!();
    for row in rows {
        print!("{:>14.3}", row.x);
        for s in series {
            print!("{:>14.4}", s.extract(&row.report));
        }
        println!();
    }
}

/// A printable column of an [`AccuracyReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Range-query KL divergence, particle filter.
    KlPf,
    /// Range-query KL divergence, symbolic model.
    KlSm,
    /// kNN hit rate, particle filter.
    HitPf,
    /// kNN hit rate, symbolic model.
    HitSm,
    /// Top-1 success rate.
    Top1,
    /// Top-2 success rate.
    Top2,
    /// Mean localization error (m), particle filter.
    ErrPf,
    /// Mean localization error (m), symbolic model.
    ErrSm,
}

impl Series {
    /// Column header.
    pub fn label(self) -> &'static str {
        match self {
            Series::KlPf => "KL(PF)",
            Series::KlSm => "KL(SM)",
            Series::HitPf => "hit(PF)",
            Series::HitSm => "hit(SM)",
            Series::Top1 => "top-1",
            Series::Top2 => "top-2",
            Series::ErrPf => "err(PF) m",
            Series::ErrSm => "err(SM) m",
        }
    }

    /// Pulls this column out of a report.
    pub fn extract(self, r: &AccuracyReport) -> f64 {
        match self {
            Series::KlPf => r.range_kl_pf,
            Series::KlSm => r.range_kl_sm,
            Series::HitPf => r.knn_hit_pf,
            Series::HitSm => r.knn_hit_sm,
            Series::Top1 => r.top1_success,
            Series::Top2 => r.top2_success,
            Series::ErrPf => r.mean_error_pf,
            Series::ErrSm => r.mean_error_sm,
        }
    }
}

/// All three sub-plot column sets of Figures 11–13, plus the mean
/// localization error (our §6 extra metric).
pub const FULL_SERIES: &[Series] = &[
    Series::KlPf,
    Series::KlSm,
    Series::HitPf,
    Series::HitSm,
    Series::Top1,
    Series::Top2,
    Series::ErrPf,
    Series::ErrSm,
];

fn sweep(params_list: Vec<(f64, ExperimentParams)>) -> Vec<FigureRow> {
    params_list
        .into_iter()
        .map(|(x, params)| FigureRow {
            x,
            report: Experiment::new(params).run(),
        })
        .collect()
}

/// **Figure 9** — effects of query window size (1–5 % of floor area) on
/// range-query KL divergence. Expected shape: both methods ~flat in the
/// window size; PF below SM.
pub fn run_fig9(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    sweep(
        [0.01, 0.02, 0.03, 0.04, 0.05]
            .into_iter()
            .map(|f| {
                (
                    f * 100.0,
                    ExperimentParams {
                        query_window_fraction: f,
                        ..base
                    },
                )
            })
            .collect(),
    )
}

/// **Figure 10** — effects of `k` (2…9) on kNN average hit rate. Expected
/// shape: SM grows slowly with k; PF ~flat and above SM everywhere.
pub fn run_fig10(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    sweep(
        (2..=9)
            .map(|k| (k as f64, ExperimentParams { k, ..base }))
            .collect(),
    )
}

/// **Figure 11** — effects of the number of particles (2…512) on all
/// three metrics. Expected shape: PF below SM accuracy under ~8 particles,
/// above beyond; all curves flatten past ~64.
pub fn run_fig11(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    sweep(
        [2usize, 4, 8, 16, 32, 64, 128, 256, 512]
            .into_iter()
            .map(|n| {
                (
                    n as f64,
                    ExperimentParams {
                        num_particles: n,
                        ..base
                    },
                )
            })
            .collect(),
    )
}

/// **Figure 12** — effects of the number of moving objects (200…1000).
/// Expected shape: KL and top-k stable; kNN hit rate decreases for both
/// methods as density rises.
pub fn run_fig12(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    let counts: &[usize] = match scale {
        Scale::Paper => &[200, 400, 600, 800, 1000],
        Scale::Quick => &[60, 120, 180, 240, 300],
    };
    sweep(
        counts
            .iter()
            .map(|&n| {
                (
                    n as f64,
                    ExperimentParams {
                        num_objects: n,
                        ..base
                    },
                )
            })
            .collect(),
    )
}

/// **Figure 13** — effects of the reader activation range (0.5–2.5 m).
/// Expected shape: both methods improve with range; PF usable already at
/// small ranges.
pub fn run_fig13(scale: Scale) -> Vec<FigureRow> {
    let base = scale.base_params();
    sweep(
        [0.5, 1.0, 1.5, 2.0, 2.5]
            .into_iter()
            .map(|r| {
                (
                    r,
                    ExperimentParams {
                        activation_range: r,
                        ..base
                    },
                )
            })
            .collect(),
    )
}

/// One row of the performance-scaling sweep.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Number of tracked objects.
    pub objects: usize,
    /// Mean wall-clock of one full evaluation pass (pruning +
    /// preprocessing + query evaluation).
    pub evaluate: std::time::Duration,
    /// Portion spent in particle-filter preprocessing.
    pub preprocessing: std::time::Duration,
    /// Candidates preprocessed in the measured pass.
    pub candidates: usize,
    /// Pipeline metrics snapshot from an untimed shadow pass with
    /// observability enabled — the timed passes above run with the
    /// recorder off, so the latency numbers stay free of the (small)
    /// observability tax.
    pub metrics: ripq_obs::MetricsSnapshot,
}

/// Measures end-to-end evaluation latency of the system facade as the
/// population grows — the "efficiently" claim of the paper's abstract,
/// quantified. Each object pings a reader for a few seconds; one range
/// query and one kNN query are registered; we time `evaluate` passes on
/// consecutive seconds (cache warm, as in production).
pub fn run_perf(scale: Scale) -> Vec<PerfRow> {
    use ripq_core::{IndoorQuerySystem, SystemConfig};
    use ripq_floorplan::{office_building, OfficeParams};
    use ripq_geom::Rect;
    use ripq_rfid::ObjectId;
    use std::time::Instant;

    let counts: &[usize] = match scale {
        Scale::Paper => &[200, 400, 600, 800, 1000],
        Scale::Quick => &[50, 100, 200],
    };
    let mut rows = Vec::new();
    for &n in counts {
        let build_system = |observability: bool| {
            let plan = office_building(&OfficeParams::default()).expect("valid");
            let config = SystemConfig {
                observability,
                ..SystemConfig::default()
            };
            let mut sys = IndoorQuerySystem::new(plan, config, 17);
            let reader_ids: Vec<_> = sys.readers().iter().map(|r| r.id()).collect();
            for s in 0..20u64 {
                let det: Vec<_> = (0..n as u32)
                    .map(|i| (ObjectId::new(i), reader_ids[((i + s as u32) % 19) as usize]))
                    .collect();
                sys.ingest_detections(s, &det);
            }
            let center = sys.plan().bounds().center();
            sys.register_range(Rect::centered(center, 12.0, 10.0))
                .expect("valid window");
            sys.register_knn(center, 3).expect("valid k");
            sys
        };

        let mut sys = build_system(false);
        // Warm the cache with one pass, then time a few.
        let _ = sys.evaluate(20);
        let reps = 5u64;
        let mut total = std::time::Duration::ZERO;
        let mut pre = std::time::Duration::ZERO;
        let mut candidates = 0;
        for i in 1..=reps {
            sys.ingest_detections(20 + i, &[]);
            let t0 = Instant::now();
            let report = sys.evaluate(20 + i);
            total += t0.elapsed();
            pre += report.timings.preprocessing;
            candidates = report.candidates_processed;
        }

        // Shadow pass with the recorder on: same workload, untimed, so the
        // snapshot rides along without polluting the latency columns.
        let mut shadow = build_system(true);
        let _ = shadow.evaluate(20);
        shadow.ingest_detections(21, &[]);
        let metrics = shadow
            .evaluate(21)
            .metrics
            .expect("observability on yields a snapshot");

        rows.push(PerfRow {
            objects: n,
            evaluate: total / reps as u32,
            preprocessing: pre / reps as u32,
            candidates,
            metrics,
        });
    }
    rows
}

/// Prints **Table 2** (the default parameters) as the paper lists them.
pub fn print_table2() {
    let p = ExperimentParams::default();
    println!("\n== Table 2: Default values of parameters ==");
    println!("{:<28}{}", "Number of particles", p.num_particles);
    println!(
        "{:<28}{}%",
        "Query window size",
        (p.query_window_fraction * 100.0).round()
    );
    println!("{:<28}{}", "Number of moving objects", p.num_objects);
    println!("{:<28}{}", "k", p.k);
    println!("{:<28}{} meters", "Activation range", p.activation_range);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_labels_and_extraction() {
        let r = AccuracyReport {
            range_kl_pf: 1.0,
            range_kl_sm: 2.0,
            knn_hit_pf: 0.9,
            knn_hit_sm: 0.5,
            top1_success: 0.7,
            top2_success: 0.8,
            ..Default::default()
        };
        assert_eq!(Series::KlPf.extract(&r), 1.0);
        assert_eq!(Series::KlSm.extract(&r), 2.0);
        assert_eq!(Series::HitPf.extract(&r), 0.9);
        assert_eq!(Series::HitSm.extract(&r), 0.5);
        assert_eq!(Series::Top1.extract(&r), 0.7);
        assert_eq!(Series::Top2.extract(&r), 0.8);
        assert_eq!(FULL_SERIES.len(), 8);
        for s in FULL_SERIES {
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn perf_harness_smoke() {
        // Tiny but real: measures actual evaluate passes at quick scale.
        let rows = run_perf(Scale::Quick);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.evaluate.as_nanos() > 0);
            assert!(r.preprocessing <= r.evaluate);
            assert!(r.candidates <= r.objects);
            // The shadow pass delivers a populated snapshot.
            assert!(r.metrics.counters.contains_key("pf.sir_iterations"));
            assert!(r.metrics.spans.contains_key("evaluate"));
        }
        // Latency grows with population (within generous slack).
        assert!(rows[2].evaluate >= rows[0].evaluate / 2);
    }

    #[test]
    fn scale_params() {
        let p = Scale::Paper.base_params();
        assert_eq!(p.num_objects, 200);
        let q = Scale::Quick.base_params();
        assert!(q.num_objects < p.num_objects);
    }
}
