//! Command-line harness regenerating every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p ripq-bench --bin experiments -- all
//! cargo run --release -p ripq-bench --bin experiments -- fig11
//! RIPQ_SCALE=paper cargo run --release -p ripq-bench --bin experiments -- all
//! ```
//!
//! Subcommands: `table2`, `fig9`, `fig10`, `fig11`, `fig12`, `fig13`,
//! `ablations`, `all`. Scale via `RIPQ_SCALE=quick|paper` (default quick)
//! or a `--paper` flag.

use ripq_bench::{
    ablation, print_rows, print_table2, run_fig10, run_fig11, run_fig12, run_fig13, run_fig9,
    run_perf, Scale, Series, FULL_SERIES,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_flag = args.iter().any(|a| a == "--paper");
    let scale = if paper_flag {
        Scale::Paper
    } else {
        Scale::from_env()
    };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    eprintln!("# scale: {scale:?} (RIPQ_SCALE=paper or --paper for the full sweep)");

    let kl_series = [Series::KlPf, Series::KlSm];
    let hit_series = [Series::HitPf, Series::HitSm];

    let run_one = |name: &str| match name {
        "table2" => print_table2(),
        "fig9" => print_rows(
            "Figure 9: effects of query window size (range query KL divergence)",
            "window %",
            &run_fig9(scale),
            &kl_series,
        ),
        "fig10" => print_rows(
            "Figure 10: effects of k (kNN average hit rate)",
            "k",
            &run_fig10(scale),
            &hit_series,
        ),
        "fig11" => print_rows(
            "Figure 11: impact of the number of particles",
            "particles",
            &run_fig11(scale),
            FULL_SERIES,
        ),
        "fig12" => print_rows(
            "Figure 12: impact of the number of moving objects",
            "objects",
            &run_fig12(scale),
            FULL_SERIES,
        ),
        "fig13" => print_rows(
            "Figure 13: impact of the activation range",
            "range (m)",
            &run_fig13(scale),
            FULL_SERIES,
        ),
        "perf" => {
            println!("\n== Performance: evaluation latency vs population ==");
            println!(
                "{:>10}{:>16}{:>16}{:>12}{:>12}{:>12}",
                "objects", "evaluate", "preprocess", "candidates", "SIR iters", "sp hits"
            );
            let rows = run_perf(scale);
            for r in &rows {
                let sir = r.metrics.counters.get("pf.sir_iterations").copied();
                let sp_hits = r.metrics.gauges.get("spcache.memo_hits").copied();
                println!(
                    "{:>10}{:>16}{:>16}{:>12}{:>12}{:>12}",
                    r.objects,
                    format!("{:.2?}", r.evaluate),
                    format!("{:.2?}", r.preprocessing),
                    r.candidates,
                    sir.unwrap_or(0),
                    sp_hits.unwrap_or(0),
                );
            }
            if let Some(last) = rows.last() {
                println!(
                    "\n-- metrics snapshot at {} objects (shadow pass) --",
                    last.objects
                );
                println!("{}", last.metrics.to_json());
            }
        }
        "ablations" => {
            print_rows(
                "Ablation: negative evidence (1 = on, 0 = off)",
                "enabled",
                &ablation::negative_evidence(scale),
                FULL_SERIES,
            );
            print_rows(
                "Ablation: ESS resampling threshold (1.0 = paper SIR)",
                "threshold",
                &ablation::resampling_policy(scale),
                FULL_SERIES,
            );
            print_rows(
                "Ablation: room-enter probability",
                "probability",
                &ablation::room_enter_probability(scale),
                FULL_SERIES,
            );
            print_rows(
                "Ablation: KDE bandwidth (0 = raw anchor snap)",
                "bandwidth (m)",
                &ablation::kde_bandwidth(scale),
                FULL_SERIES,
            );
            print_rows(
                "Ablation: anchor spacing",
                "spacing (m)",
                &ablation::anchor_spacing(scale),
                FULL_SERIES,
            );
            print_rows(
                "Ablation: KLD-adaptive particles (1 = adaptive, 0 = fixed Ns)",
                "adaptive",
                &ablation::kld_adaptive(scale),
                FULL_SERIES,
            );
            print_rows(
                "Ablation: sensing noise (x = detection prob + ghost rate)",
                "detect+fp",
                &ablation::sensing_noise(scale),
                FULL_SERIES,
            );
            print_rows(
                "Ablation: fault severity (x = drop prob; jitter+outages scale with it)",
                "drop prob",
                &ablation::fault_severity(scale),
                FULL_SERIES,
            );
            println!("\n== Ablation: reader deployment strategy ==");
            for (label, r) in ablation::deployment_strategy(scale) {
                println!(
                    "{label:>10}: KL pf={:.3} sm={:.3} | hit pf={:.3} sm={:.3} | top1={:.3} top2={:.3}",
                    r.range_kl_pf, r.range_kl_sm, r.knn_hit_pf, r.knn_hit_sm,
                    r.top1_success, r.top2_success
                );
            }
            println!("\n== Generalization: other indoor topologies ==");
            for (label, r) in ablation::topology(scale) {
                println!(
                    "{label:>10}: KL pf={:.3} sm={:.3} | hit pf={:.3} sm={:.3} | top1={:.3} top2={:.3}",
                    r.range_kl_pf, r.range_kl_sm, r.knn_hit_pf, r.knn_hit_sm,
                    r.top1_success, r.top2_success
                );
            }
            let (with_cache, without_cache) = ablation::cache(scale);
            println!("\n== Ablation: particle cache (§4.5) ==");
            println!("preprocessing, cache ON : {with_cache:?}");
            println!("preprocessing, cache OFF: {without_cache:?}");
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiments [--paper] [table2|fig9|fig10|fig11|fig12|fig13|perf|ablations|all]"
            );
            std::process::exit(2);
        }
    };

    if what == "all" {
        for name in [
            "table2",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "perf",
            "ablations",
        ] {
            run_one(name);
        }
    } else {
        run_one(what);
    }
}
