//! `bench_json` — emits the machine-readable `BENCH_N.json` perf
//! snapshot comparing the `dijkstra` and `alt` distance backends.
//!
//! ```text
//! bench_json [--out <path>]     write the document (default: stdout)
//! ```
//!
//! Scale comes from `RIPQ_SCALE=quick|paper` (default quick), as for
//! every other bench entry point. Normally invoked through
//! `cargo xtask bench-json`, which writes `BENCH_10.json` at the
//! workspace root.

use ripq_bench::perf_json::render_bench_json;
use ripq_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--out" => Some(path.clone()),
        _ => {
            eprintln!("usage: bench_json [--out <path>]");
            std::process::exit(2);
        }
    };
    let doc = render_bench_json(Scale::from_env());
    match out {
        None => print!("{doc}"),
        Some(path) => {
            if let Err(e) = ripq_persist::write_atomic(std::path::Path::new(&path), doc.as_bytes())
            {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }
}
