//! `cargo bench` target that regenerates every figure of the paper.
//!
//! Runs the sweeps at quick scale by default so a plain
//! `cargo bench --workspace` prints all five figures' series; set
//! `RIPQ_SCALE=paper` for the full Table-2-scale sweep (the numbers
//! recorded in `EXPERIMENTS.md`).

use ripq_bench::{
    print_rows, print_table2, run_fig10, run_fig11, run_fig12, run_fig13, run_fig9, Scale, Series,
    FULL_SERIES,
};

fn main() {
    // Ignore the --bench argument cargo passes to harness=false targets.
    let scale = Scale::from_env();
    eprintln!("# figure reproduction at {scale:?} scale (RIPQ_SCALE=paper for full)");

    print_table2();
    print_rows(
        "Figure 9: effects of query window size (range query KL divergence)",
        "window %",
        &run_fig9(scale),
        &[Series::KlPf, Series::KlSm],
    );
    print_rows(
        "Figure 10: effects of k (kNN average hit rate)",
        "k",
        &run_fig10(scale),
        &[Series::HitPf, Series::HitSm],
    );
    print_rows(
        "Figure 11: impact of the number of particles",
        "particles",
        &run_fig11(scale),
        FULL_SERIES,
    );
    print_rows(
        "Figure 12: impact of the number of moving objects",
        "objects",
        &run_fig12(scale),
        FULL_SERIES,
    );
    print_rows(
        "Figure 13: impact of the activation range",
        "range (m)",
        &run_fig13(scale),
        FULL_SERIES,
    );
}
